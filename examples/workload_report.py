"""Workload observability: the query journal, analyzer and store inspector.

Every query a session executes appends one structured record to its journal —
a constant-stripped template fingerprint, the manifest epoch it ran against,
phase timings, scanned tables, the planner's estimate error and runtime
counters.  For a stored dataset the journal persists under
``<dataset>/journal/`` and accumulates across sessions.  This example:

1. saves a small social graph as a stored dataset and runs a mixed workload
   (three query shapes, many instantiations, across two manifest epochs);
2. prints the workload analyzer's report: hot templates, per-table reuse,
   the q-error histogram and materialization advice;
3. prints the store health inspector's report for the same dataset
   (``python -m repro.tools.inspect <dataset>`` gives the same from a shell).

Run with:  python examples/workload_report.py [--dataset-dir DIR]
"""

import argparse
import tempfile
from pathlib import Path

from repro import Graph, S2RDFSession, Triple
from repro.obs.workload import analyze_dataset
from repro.tools.inspect import inspect_dataset


def build_graph() -> Graph:
    """A follows/likes/purchased social graph: 60 users, a few products."""
    triples = []
    for i in range(60):
        triples.append(Triple.of(f"u{i}", "follows", f"u{(i * 7) % 30}"))
    for i in range(0, 60, 2):
        triples.append(Triple.of(f"u{i}", "likes", f"p{i % 6}"))
    for i in range(0, 60, 5):
        triples.append(Triple.of(f"u{i}", "purchased", f"p{i % 4}"))
    return Graph(triples, name="social")


# Three parameterized query shapes — each runs with several different
# constants, and the journal collapses every instantiation into one template
# fingerprint — plus a constant-free dashboard query whose repeats against a
# fixed manifest epoch make it a result-cache candidate.
FRIENDS_LIKES = "SELECT ?f ?p WHERE {{ <{user}> <follows> ?f . ?f <likes> ?p }}"
WHO_LIKES = "SELECT ?u WHERE {{ ?u <likes> <{product}> }}"
PURCHASE_PATH = "SELECT ?u ?f WHERE {{ ?u <follows> ?f . ?f <purchased> <{product}> }}"
DASHBOARD = "SELECT ?u ?f WHERE { ?u <purchased> ?p . ?u <follows> ?f }"


def run_workload(session: S2RDFSession) -> None:
    for i in range(8):
        session.query(FRIENDS_LIKES.format(user=f"u{i}"))
    for i in range(5):
        session.query(WHO_LIKES.format(product=f"p{i % 6}"))
    for i in range(3):
        session.query(PURCHASE_PATH.format(product=f"p{i % 4}"))
    for _ in range(4):
        session.query(DASHBOARD)


def main() -> None:
    parser = argparse.ArgumentParser(description="Workload observability demo")
    parser.add_argument(
        "--dataset-dir",
        type=Path,
        default=None,
        help="where to store the dataset (default: a temporary directory)",
    )
    args = parser.parse_args()
    if args.dataset_dir is not None:
        run(args.dataset_dir / "social-dataset")
    else:
        with tempfile.TemporaryDirectory() as scratch:
            run(Path(scratch) / "social-dataset")


def run(dataset_path: Path) -> None:
    print("=== 1. Build, persist, and run a mixed workload ===")
    session = S2RDFSession.from_graph(build_graph(), num_partitions=2)
    session.save_dataset(str(dataset_path))
    run_workload(session)

    # Grow the dataset by one append epoch and query again: the journal
    # records which manifest epoch every query actually saw.
    session.append_triples(
        [Triple.of(f"u{60 + i}", "follows", f"u{i}") for i in range(10)]
    )
    run_workload(session)
    print(f"  dataset at {dataset_path}")
    print(f"  journal records: {session.journal.record_count()}")
    session.close()

    print()
    print("=== 2. Workload analyzer ===")
    analysis = analyze_dataset(str(dataset_path), top_k=5)
    print(analysis.render_text())

    print()
    print("=== 3. Store health inspector ===")
    report = inspect_dataset(str(dataset_path))
    print(report.render_text(top_tables=5))


if __name__ == "__main__":
    main()
