"""Vectorized id-column execution: batches of raw dictionary ids end to end.

The dataset store keeps every column as RLE-compressed integer ids.  With
``vectorized_enabled=True`` a stored session scans those pages straight into
``ColumnBatch``es — flat ``array('q')`` id columns plus a selection vector —
and filters, joins and deduplicates on raw ids, decoding terms only for the
rows a query actually returns.  This example persists a small graph, runs the
same queries through the row-dict executor and the vectorized path, verifies
they agree bag for bag, and shows what the batch representation looks like
from the inside (including the 3x exchange-byte shrink of shipping ids).

Run with:  python examples/vectorized_kernel.py
"""

import tempfile

from repro import Graph, S2RDFSession, Triple


def build_graph() -> Graph:
    triples = []
    for i in range(60):
        triples.append(Triple.of(f"user{i}", "follows", f"user{(i * 7 + 1) % 60}"))
        triples.append(Triple.of(f"user{i}", "likes", f"item{i % 12}"))
    return Graph(triples, name="social")


QUERIES = {
    "scan+join": "SELECT * WHERE { ?a <follows> ?b . ?b <likes> ?w }",
    "pushdown": "SELECT ?a WHERE { ?a <likes> <item3> }",
    "distinct": "SELECT DISTINCT ?w WHERE { ?a <likes> ?w }",
    "filter": "SELECT * WHERE { ?a <likes> ?w . FILTER(?w != <item3>) }",
}


def bag(relation):
    return sorted(map(repr, relation.rows))


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        path = f"{root}/dataset"
        builder = S2RDFSession.from_graph(build_graph(), num_partitions=4)
        builder.save_dataset(path)
        builder.close()

        rows = S2RDFSession.open_dataset(path, num_partitions=4)
        vec = S2RDFSession.open_dataset(path, num_partitions=4, vectorized_enabled=True)

        # --- the batch representation, from the inside ------------------- #
        scan = vec.layout.catalog.scan_batch("vp_likes")
        batch = scan.batch
        print(f"scan_batch(vp_likes): columns={batch.columns} rows={len(batch)}")
        print(f"  raw ids of 's' column (first 8): {list(batch.ids[0][:8])}")
        filtered = batch.filter_equal("o", batch.ids[1][0])
        print(
            f"  filter_equal on one id keeps {len(filtered)} rows by replacing the"
            f" selection vector; the id columns are shared, not copied"
        )
        print(f"  estimated exchange bytes: {batch.estimated_bytes()} "
              f"(ids at 8 B/value; term rows would cost 3x)")

        # --- identical answers, fewer decoded terms ---------------------- #
        for name, query in QUERIES.items():
            row_result = rows.query(query)
            vec_result = vec.query(query)
            assert bag(row_result.relation) == bag(vec_result.relation), name
            metrics = vec_result.metrics
            print(
                f"{name:<10} rows={len(vec_result.relation):<4} "
                f"vectorized_batches={metrics.vectorized_batches} "
                f"vectorized_rows={metrics.vectorized_rows}"
            )

        # --- explain_analyze marks batch-executed operators -------------- #
        explained = vec.explain_analyze(QUERIES["scan+join"])
        print("\nexplain_analyze (note the 'vectorized' markers):")
        print(explained.text)

        rows.close()
        vec.close()


if __name__ == "__main__":
    main()
