"""Persistence roundtrip: save a dataset once, reopen it cold, query it.

S2RDF pays the ExtVP materialisation cost once and serves every later session
from the persisted columnar tables.  This example walks that exact lifecycle
on the reproduction's dataset store:

1. build a session from a WatDiv-like graph (VP + ExtVP semi-joins),
2. ``save_dataset`` — hash-bucketed, dictionary + RLE encoded column
   segments with zone maps, plus a manifest holding every statistic,
3. ``open_dataset`` — a cold session that never parses N-Triples nor
   rebuilds ExtVP; tables stay on disk until a query scans them,
4. run the same query on both sessions and compare,
5. show a pushdown scan pruning segments via zone maps / hash buckets.

Run with:  python examples/persistence_roundtrip.py
"""

import os
import tempfile
import time

from repro import S2RDFSession
from repro.watdiv.generator import generate_dataset

QUERY = """
SELECT * WHERE {
  ?user <http://db.uwaterloo.ca/~galuc/wsdbm/follows> ?friend .
  ?friend <http://db.uwaterloo.ca/~galuc/wsdbm/likes> ?product .
}
"""


def main() -> None:
    dataset = generate_dataset(scale_factor=1.0, seed=7)
    print(f"Generated WatDiv-like graph: {len(dataset.graph)} triples")

    # 1. The expensive part: build VP and every ExtVP semi-join reduction.
    start = time.perf_counter()
    session = S2RDFSession.from_graph(dataset.graph, num_partitions=4)
    build_seconds = time.perf_counter() - start
    print(f"Built in-memory layout in {build_seconds:.3f}s "
          f"({session.layout.report.table_count} tables)")

    # 2. Persist once.
    path = os.path.join(tempfile.mkdtemp(prefix="s2rdf-"), "dataset")
    write = session.save_dataset(path)
    print(f"Saved dataset to {path}: {write.segment_count} segments, "
          f"{write.dictionary_terms} dictionary terms, {write.total_bytes} bytes")

    # 3. Cold start: manifest + dictionary only; no parse, no rebuild.
    start = time.perf_counter()
    cold = S2RDFSession.open_dataset(path)
    open_seconds = time.perf_counter() - start
    report = cold.load_report
    print(f"Cold open in {open_seconds:.3f}s — {report.table_count} stored tables, "
          f"{report.statistics_only_count} statistics-only entries, "
          f"ntriples_parsed={report.ntriples_parsed}, extvp_rebuilt={report.extvp_rebuilt}")
    if open_seconds > 0:
        print(f"Cold open vs. rebuild speedup: {build_seconds / open_seconds:.1f}x")

    # 4. Same answers, warm or cold.
    warm_result = session.query(QUERY)
    cold_result = cold.query(QUERY)
    assert sorted(map(repr, warm_result.relation.rows)) == sorted(
        map(repr, cold_result.relation.rows)
    )
    print(f"Query agreement: {len(cold_result)} rows from both sessions")
    print(f"Cold scan metrics: {cold_result.metrics.store_segments_scanned} segments read, "
          f"{cold_result.metrics.store_segments_pruned} pruned")

    # 5. A selective query: the bound subject hashes to one bucket, so the
    #    other segment files are pruned without ever being opened.
    user = next(iter(cold_result.values("user")))
    selective = cold.query(
        f"SELECT ?friend WHERE {{ {user.n3()} "
        f"<http://db.uwaterloo.ca/~galuc/wsdbm/follows> ?friend }}"
    )
    print(f"Selective scan for {user.n3()}: {len(selective)} rows, "
          f"{selective.metrics.store_segments_scanned} segments read, "
          f"{selective.metrics.store_segments_pruned} pruned")

    session.close()
    cold.close()


if __name__ == "__main__":
    main()
