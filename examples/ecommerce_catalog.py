"""E-commerce catalogue exploration: star and snowflake queries across engines.

WatDiv models an online retailer: offers include products, products carry
descriptive attributes and reviews.  This example runs a star query (all
attributes of a retailer's offers) and a snowflake query (offers joined with
product metadata) on S2RDF and two of the competitor baselines, showing how
each system's architecture shapes its simulated runtime.

Run with:  python examples/ecommerce_catalog.py
"""

import numpy as np

from repro.baselines import H2RDFPlusEngine, S2RDFExtVPEngine, SempalaEngine
from repro.bench.scaling import paper_work_scale
from repro.watdiv import generate_dataset
from repro.watdiv.basic_queries import basic_template
from repro.watdiv.template import instantiate_template


def main() -> None:
    dataset = generate_dataset(scale_factor=2.0, seed=13)
    print(f"Generated catalogue graph with {len(dataset.graph)} triples")

    # Extrapolate execution counters to the paper's billion-triple scale so the
    # simulated runtimes are comparable with the paper's Table 4.
    work_scale = paper_work_scale(dataset.graph)
    engines = [
        S2RDFExtVPEngine(selectivity_threshold=0.25, work_scale=work_scale),
        SempalaEngine(work_scale=work_scale),
        H2RDFPlusEngine(work_scale=work_scale),
    ]
    for engine in engines:
        report = engine.load(dataset.graph)
        print(
            f"  loaded {engine.name}: {report.tuples_stored} tuples in "
            f"{report.table_count} tables ({report.hdfs_bytes / 1024:.0f} KB simulated)"
        )

    rng = np.random.default_rng(5)
    star_query = instantiate_template(basic_template("S1"), dataset, rng)
    snowflake_query = instantiate_template(basic_template("F5"), dataset, rng)

    for name, query in (("star S1 (offer attributes)", star_query), ("snowflake F5 (offers + products)", snowflake_query)):
        print(f"\n{name}:")
        for engine in engines:
            result = engine.query(query)
            print(
                f"  {engine.name:<14} {len(result):>4} results   "
                f"{result.simulated_runtime_ms:>10.1f} ms simulated   mode={result.execution_mode}"
            )


if __name__ == "__main__":
    main()
