"""Social-network analysis on a WatDiv-like dataset.

The paper motivates S2RDF with friend-of-a-friend style workloads: linear
(path) queries that most RDF stores handle poorly.  This example generates a
WatDiv-like social/e-commerce graph, then answers increasingly long path
queries and a recommendation-style query, comparing ExtVP against plain VP.

Run with:  python examples/social_network_analysis.py
"""

from repro import S2RDFSession
from repro.watdiv import generate_dataset

FOAF_CHAIN = """
PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
PREFIX rev: <http://purl.org/stuff/rev#>
SELECT ?user ?friend ?product WHERE {{
  ?user wsdbm:follows ?middle .
  ?middle wsdbm:friendOf ?friend .
  ?friend wsdbm:likes ?product .
}}
"""

RECOMMENDATION = """
PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
PREFIX rev: <http://purl.org/stuff/rev#>
SELECT DISTINCT ?user ?product WHERE {
  ?user wsdbm:friendOf ?friend .
  ?friend wsdbm:likes ?product .
  ?product rev:hasReview ?review .
  ?review rev:reviewer ?friend .
}
"""

INFLUENCERS = """
PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
PREFIX sorg: <http://schema.org/>
SELECT ?user ?email WHERE {
  ?follower wsdbm:follows ?user .
  ?user wsdbm:friendOf ?other .
  ?user sorg:email ?email .
}
LIMIT 10
"""


def main() -> None:
    dataset = generate_dataset(scale_factor=2.0, seed=7)
    print(f"Generated WatDiv-like graph with {len(dataset.graph)} triples")

    extvp = S2RDFSession.from_graph(dataset.graph, selectivity_threshold=0.25)
    vp = S2RDFSession.from_graph(dataset.graph, use_extvp=False)
    print("Built ExtVP (threshold 0.25) and plain VP sessions\n")

    for name, query in (
        ("friend-of-a-friend likes", FOAF_CHAIN),
        ("recommendation (friends who reviewed what they like)", RECOMMENDATION),
        ("influencers with public email", INFLUENCERS),
    ):
        extvp_result = extvp.query(query)
        vp_result = vp.query(query)
        reduction = (
            extvp_result.metrics.input_tuples / vp_result.metrics.input_tuples
            if vp_result.metrics.input_tuples
            else 0.0
        )
        print(f"{name}:")
        print(f"  results: {len(extvp_result)}")
        print(
            f"  input tuples: ExtVP {extvp_result.metrics.input_tuples} vs "
            f"VP {vp_result.metrics.input_tuples} (reduction factor {reduction:.2f})"
        )
        print(f"  tables used: {', '.join(extvp_result.selected_tables)}")
        print()

    print("Sample of the influencer result:")
    print(extvp.query(INFLUENCERS).as_table(limit=5))


if __name__ == "__main__":
    main()
