"""Quickstart: load the paper's running-example graph and run query Q1.

This walks through the exact example used throughout the paper (Fig. 1/2 and
Fig. 8-12): the 7-triple social graph G1, the friend-of-a-friend query Q1, the
ExtVP tables S2RDF builds for it, the generated SQL and the execution metrics.

Run with:  python examples/quickstart.py
"""

from repro import Graph, S2RDFSession, Triple


def build_example_graph() -> Graph:
    """The RDF graph G1 of the paper (Fig. 1), in simplified notation."""
    return Graph(
        [
            Triple.of("A", "follows", "B"),
            Triple.of("B", "follows", "C"),
            Triple.of("B", "follows", "D"),
            Triple.of("C", "follows", "D"),
            Triple.of("A", "likes", "I1"),
            Triple.of("A", "likes", "I2"),
            Triple.of("C", "likes", "I2"),
        ],
        name="G1",
    )


QUERY_Q1 = """
SELECT * WHERE {
  ?x <likes> ?w .
  ?x <follows> ?y .
  ?y <follows> ?z .
  ?z <likes> ?w .
}
"""


def main() -> None:
    graph = build_example_graph()
    print(f"Loaded graph {graph.name} with {len(graph)} triples")

    # Building a session materialises VP and all ExtVP semi-join reductions.
    session = S2RDFSession.from_graph(graph, selectivity_threshold=1.0)
    summary = session.storage_summary()
    print(
        f"Layout: {summary['table_counts']['vp']} VP tables, "
        f"{summary['table_counts']['extvp']} ExtVP tables, "
        f"{summary['total_tuples']} stored tuples"
    )

    print("\nGenerated Spark-SQL-style query plan for Q1:")
    print(session.explain(QUERY_Q1))

    result = session.query(QUERY_Q1)
    print("\nSelected tables (statistics-driven, Algorithm 1):")
    for table in result.selected_tables:
        print(f"  {table}")

    # The runtime's physical-planning step annotates every join with a
    # Spark-style strategy: broadcast when one side is small enough, shuffle
    # otherwise.  Tune with num_partitions / broadcast_threshold.
    print("\nPhysical join strategies (Spark-style shuffle vs. broadcast):")
    for strategy in result.join_strategies:
        print(f"  {strategy}")

    print("\nSolutions:")
    print(result.as_table())

    print("\nExecution metrics:", result.metrics.as_dict())
    print(f"Simulated cluster runtime: {result.simulated_runtime_ms:.1f} ms")

    # A query whose predicate correlation does not exist in the data is
    # answered from statistics alone, without touching any table.
    empty = session.query("SELECT * WHERE { ?a <likes> ?b . ?b <likes> ?c }")
    print(
        f"\nEmpty-correlation query: {len(empty)} results, "
        f"statically empty = {empty.statically_empty}, "
        f"input tuples read = {empty.metrics.input_tuples}"
    )

    # The same query on a partitioned session: joins run per-partition on a
    # worker pool and the metrics report observed exchange volume in bytes.
    parallel = S2RDFSession.from_graph(graph, num_partitions=4, broadcast_threshold=0)
    parallel_result = parallel.query(QUERY_Q1)
    print(
        f"\nPartitioned run (4 partitions, shuffle-only): {len(parallel_result)} results, "
        f"{parallel_result.metrics.parallel_tasks} partition tasks, "
        f"{parallel_result.metrics.shuffled_bytes} shuffled bytes"
    )
    # Executed strategies can differ from the plan: adaptive execution (on by
    # default) replans joins from observed sizes — see examples/adaptive_execution.py.
    for strategy in parallel_result.executed_join_strategies:
        print(f"  {strategy}")


if __name__ == "__main__":
    main()
