"""Observability: query tracing, EXPLAIN ANALYZE and the metrics registry.

A session built with ``tracing_enabled=True`` records the whole query
lifecycle — parse, compile (with table selection), physical planning,
execution with per-scan/per-join/per-task spans — on a low-overhead tracer.
This example:

1. runs a two-join query on a traced session and prints the span tree
   summary;
2. stales the catalog statistics and shows ``explain_analyze``: estimated
   vs. observed rows per operator, and the join strategy the adaptive
   runtime actually executed (with the revision reason) when the static
   plan was wrong;
3. exports the trace as Chrome trace-event JSON — load it in
   https://ui.perfetto.dev or chrome://tracing;
4. prints the session's metrics registry in Prometheus text format.

Run with:  python examples/observability_trace.py
"""

import json
import tempfile

from repro import Graph, S2RDFSession, Triple


def build_graph() -> Graph:
    """A follows/likes social graph: 80 users, a few products."""
    triples = []
    for i in range(80):
        triples.append(Triple.of(f"u{i}", "follows", f"u{(i * 7) % 40}"))
    for i in range(0, 80, 2):
        triples.append(Triple.of(f"u{i}", "likes", f"p{i % 6}"))
    return Graph(triples, name="social")


QUERY = "SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?z }"


def stale_statistics(session: S2RDFSession, factor: int = 1_000_000) -> None:
    """Make every table look ``factor``x bigger than it is.

    This is the failure mode AQE exists for: the static planner shuffles
    joins whose inputs would comfortably fit a broadcast.
    """
    catalog = session.layout.catalog
    for name in list(catalog.statistics_names()):
        statistics = catalog.statistics(name)
        if name in catalog and statistics.row_count > 0:
            catalog.register_statistics_only(
                name, statistics.row_count * factor, statistics.selectivity
            )


def main() -> None:
    session = S2RDFSession.from_graph(build_graph(), num_partitions=4, tracing_enabled=True)

    print("=== 1. Traced query ===")
    result = session.query(QUERY)
    print(f"  {len(result)} rows; phases:", {k: round(v, 2) for k, v in result.phase_ms.items()})
    summary = session.tracer.summary()
    print(f"  spans recorded: {summary['spans']} ({summary['spans_by_category']})")

    print("\n=== 2. EXPLAIN ANALYZE under stale statistics ===")
    stale_statistics(session)
    explained = session.explain_analyze(QUERY)
    print(explained)

    print("\n=== 3. Chrome trace export ===")
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", prefix="s2rdf-trace-", delete=False
    ) as handle:
        path = handle.name
    session.tracer.write_chrome_trace(path)
    with open(path, encoding="utf-8") as handle:
        trace = json.load(handle)
    assert "traceEvents" in trace and trace["traceEvents"], "trace must hold events"
    assert all("ph" in event and "ts" in event for event in trace["traceEvents"])
    print(f"  wrote {len(trace['traceEvents'])} trace events to {path}")
    print("  load it in https://ui.perfetto.dev or chrome://tracing")

    print("\n=== 4. Metrics registry (Prometheus text format, excerpt) ===")
    exposition = session.metrics.render_prometheus()
    for line in exposition.splitlines():
        if line.startswith(("s2rdf_queries_total", "s2rdf_aqe_replans_total")) or (
            line.startswith("s2rdf_query_wall_ms") and "_bucket" not in line
        ):
            print(f"  {line}")

    session.close()


if __name__ == "__main__":
    main()
