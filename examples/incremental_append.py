"""Incremental updates & compaction: grow a persisted dataset in place.

PR 2's store could only materialise a dataset with a full ``save_dataset``
rewrite.  This example walks the incremental lifecycle that replaces it:

1. build and persist a base dataset once,
2. ``append_triples`` — new triples land as *delta segments* (hash-bucketed,
   RLE-encoded, zone-mapped) without rewriting a single existing segment or
   dictionary line; VP tables, the triples table and every affected ExtVP
   correlation are maintained incrementally,
3. query — scans merge base + delta segments transparently (pruning included),
4. ``compact()`` — folds the accumulated deltas back into full base segments
   with tightened zone maps; same answers, fewer segments scanned.

Run with:  python examples/incremental_append.py
"""

import os
import tempfile

from repro import S2RDFSession
from repro.rdf.terms import IRI
from repro.rdf.triple import Triple
from repro.watdiv.generator import generate_dataset
from repro.watdiv.schema import FOLLOWS, LIKES, EntityClass, entity_iri

QUERY = """
SELECT * WHERE {
  ?user <http://db.uwaterloo.ca/~galuc/wsdbm/follows> ?friend .
  ?friend <http://db.uwaterloo.ca/~galuc/wsdbm/likes> ?product .
}
"""


def main() -> None:
    dataset = generate_dataset(scale_factor=1.0, seed=7)
    print(f"Generated WatDiv-like graph: {len(dataset.graph)} triples")

    # 1. Persist the base dataset once.
    base = S2RDFSession.from_graph(dataset.graph, num_partitions=4)
    path = os.path.join(tempfile.mkdtemp(prefix="s2rdf-"), "dataset")
    write = base.save_dataset(path)
    base.close()
    print(f"Saved base dataset: {write.segment_count} segments, {write.total_bytes} bytes")

    session = S2RDFSession.open_dataset(path)
    before = len(session.query(QUERY))
    print(f"Cold session answers the follows->likes query with {before} rows")

    # 2. Updates arrive: new users follow user 0, who likes new products.
    hub = entity_iri(EntityClass.USER, 0)
    updates = [
        Triple(IRI(f"http://example.org/newUser{i}"), FOLLOWS, hub) for i in range(25)
    ] + [Triple(hub, LIKES, IRI(f"http://example.org/newProduct{i}")) for i in range(5)]
    report = session.append_triples(updates)
    print(
        f"Appended {report.triples_appended} triples in {report.append_seconds:.3f}s: "
        f"{report.delta_segments} delta segments, {report.extvp_pairs_updated} ExtVP pairs "
        f"maintained, {report.dictionary_terms_added} dictionary terms added "
        f"(epoch {report.epoch}, no existing segment rewritten)"
    )

    # 3. The very next query sees base + delta merged, pruning included.
    result = session.query(QUERY)
    print(
        f"Query now returns {len(result)} rows "
        f"({result.metrics.store_segments_scanned} segments scanned, "
        f"{result.metrics.store_segments_pruned} pruned)"
    )
    assert len(result) > before

    # 4. Compaction folds the deltas back into base segments.
    compaction = session.compact()
    after = session.query(QUERY)
    print(
        f"compact() merged {compaction.delta_rows_merged} delta rows across "
        f"{compaction.tables_compacted} tables: {compaction.segments_before} -> "
        f"{compaction.segments_after} segments on disk; query returns {len(after)} rows "
        f"({after.metrics.store_segments_scanned} segments scanned)"
    )
    assert sorted(map(repr, after.relation.rows)) == sorted(map(repr, result.relation.rows))
    assert after.metrics.store_segments_scanned <= result.metrics.store_segments_scanned

    # A cold reopen sees the compacted state.
    session.close()
    reopened = S2RDFSession.open_dataset(path)
    assert len(reopened.query(QUERY)) == len(after)
    reopened.close()
    print("Reopened cold: same answers. Incremental lifecycle complete.")


if __name__ == "__main__":
    main()
