"""Plan IR and the sqlite backend: one plan tree, two executable engines.

The compiler produces a backend-neutral plan IR (``repro.engine.ops``).  The
native engine walks it with in-process operators; the sqlite backend lowers
the same tree to one parameterized SQL statement and lets sqlite3 execute it.
This example runs identical queries — a join, a FILTER and a grouped
aggregate — on both engines, shows the lowered SQL, and checks that the
answers agree row for row.

Run with:  python examples/sql_backend.py
"""

from repro import Graph, S2RDFSession, Triple
from repro.engine.sql import to_sqlite_sql


def build_graph() -> Graph:
    return Graph(
        [
            Triple.of("A", "follows", "B"),
            Triple.of("B", "follows", "C"),
            Triple.of("B", "follows", "D"),
            Triple.of("C", "follows", "D"),
            Triple.of("A", "likes", "I1"),
            Triple.of("A", "likes", "I2"),
            Triple.of("C", "likes", "I2"),
        ],
        name="G1",
    )


QUERIES = {
    "join": "SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?w }",
    "filter": "SELECT * WHERE { ?x <follows> ?y . FILTER(?y != <D>) }",
    "aggregate": (
        "SELECT ?x (COUNT(?y) AS ?followed) WHERE { ?x <follows> ?y } GROUP BY ?x"
    ),
}


def bag(relation):
    return sorted(map(repr, relation.rows))


def main() -> None:
    graph = build_graph()
    native = S2RDFSession.from_graph(graph, selectivity_threshold=1.0)
    sqlite = S2RDFSession.from_graph(graph, selectivity_threshold=1.0, engine="sqlite")

    for name, query in QUERIES.items():
        print(f"== {name} ==")
        print(query)

        # Both sessions compile through the same parser/algebra/compiler —
        # the plan IR is engine-neutral; only execution differs.
        plan = sqlite.compile(query).plan
        sql, params = to_sqlite_sql(plan)
        print("\nLowered sqlite statement:")
        print(f"  {sql}")
        if params:
            print(f"  parameters: {params}")

        native_result = native.query(query)
        sqlite_result = sqlite.query(query)
        assert native_result.engine == "native"
        assert sqlite_result.engine == "sqlite"
        assert bag(native_result.relation) == bag(sqlite_result.relation), name
        print(f"\nBoth engines agree ({len(native_result)} rows):")
        print(sqlite_result.as_table())
        print()

    print("Executing engine as recorded in each session's journal:")
    for record in list(native.journal.records()) + list(sqlite.journal.records()):
        print(f"  {record.engine:>7}  {record.fingerprint}")

    native.close()
    sqlite.close()


if __name__ == "__main__":
    main()
