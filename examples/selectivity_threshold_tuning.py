"""Tuning the ExtVP selectivity-factor threshold (the paper's Sec. 7.4).

The SF threshold trades storage for query speed: threshold 0 is plain VP,
threshold 1 materialises every useful semi-join reduction, and the paper finds
0.25 to be the sweet spot (≈95 % of the benefit at ≈25 % of the tuples).
This example sweeps the threshold on a generated dataset and prints the
storage/runtime trade-off so you can pick a threshold for your own data.

Run with:  python examples/selectivity_threshold_tuning.py
"""

from repro.bench import run_table6_threshold
from repro.watdiv import generate_dataset


def main() -> None:
    dataset = generate_dataset(scale_factor=2.0, seed=21)
    print(f"Generated graph with {len(dataset.graph)} triples")
    print("Sweeping SF thresholds (this builds one layout per threshold)...\n")

    report = run_table6_threshold(dataset=dataset, thresholds=(0.0, 0.1, 0.25, 0.5, 1.0))
    print(report.to_text())

    vp_runtime = report.row_for(threshold=0.0)["runtime_ms"]
    full_runtime = report.row_for(threshold=1.0)["runtime_ms"]
    print("\nInterpretation:")
    for row in report.rows:
        if vp_runtime > full_runtime:
            captured = (vp_runtime - row["runtime_ms"]) / (vp_runtime - full_runtime)
        else:
            captured = 1.0
        print(
            f"  threshold {row['threshold']:>4}: {row['tuples']:>8} tuples stored, "
            f"{100 * captured:5.1f} % of the full-ExtVP runtime benefit"
        )


if __name__ == "__main__":
    main()
