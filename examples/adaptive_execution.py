"""Adaptive query execution: recovering from stale statistics at run time.

The static planner picks a shuffle or broadcast strategy per join from
catalog statistics.  When the statistics lie (collected on yesterday's data,
or never collected at all), the plan is wrong — and on a real cluster a wrong
plan means shuffling gigabytes that a broadcast would have avoided, or
broadcasting a table that does not fit in memory.

This example deletes the statistics after building the layout, runs the same
query with ``adaptive_enabled`` off and on, and prints the planned vs.
executed strategies: the adaptive session demotes the mis-planned shuffle to
a broadcast from the *observed* input sizes, records the replan in the
metrics, and caches the observed cardinalities so the next query plans
correctly upfront.

Run with:  python examples/adaptive_execution.py
"""

from repro import Graph, S2RDFSession, Triple


def build_graph() -> Graph:
    """A follows/likes social graph: 60 users, a handful of products."""
    triples = []
    for i in range(60):
        triples.append(Triple.of(f"u{i}", "follows", f"u{(i * 7) % 30}"))
    for i in range(0, 60, 2):
        triples.append(Triple.of(f"u{i}", "likes", f"p{i % 6}"))
    return Graph(triples, name="social")


QUERY = "SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?z }"


def delete_statistics(session: S2RDFSession) -> None:
    """Simulate a catalog whose statistics were never collected."""
    catalog = session.layout.catalog
    for name in list(catalog.statistics_names()):
        catalog.remove_statistics(name)


def main() -> None:
    graph = build_graph()

    print("=== Static session (adaptive_enabled=False) ===")
    static = S2RDFSession.from_graph(graph, num_partitions=4, adaptive_enabled=False)
    delete_statistics(static)
    result = static.query(QUERY)
    # Unknown sizes are conservative: the planner shuffles rather than risking
    # a broadcast of a potentially huge table (the old code broadcast "0 rows").
    for strategy in result.executed_join_strategies:
        print(f"  executed: {strategy}")
    print(f"  critical path: {result.metrics.critical_path_ms:.2f} ms, replans: {result.metrics.aqe_replans}")
    static.close()

    print("\n=== Adaptive session (the default) ===")
    adaptive = S2RDFSession.from_graph(graph, num_partitions=4)
    delete_statistics(adaptive)
    result = adaptive.query(QUERY)
    print("  planned vs. executed:")
    for planned, executed in zip(result.join_strategies, result.executed_join_strategies):
        print(f"    planned:  {planned}")
        print(f"    executed: {executed}")
    for replan in result.replanned_joins:
        print(f"  replan: {replan}")
    print(
        f"  critical path: {result.metrics.critical_path_ms:.2f} ms, "
        f"replans: {result.metrics.aqe_replans}, skew splits: {result.metrics.aqe_skew_splits}"
    )

    # The adaptive run fed observed cardinalities back into the catalog, so
    # the second query's *static* plan is already right — no replans needed.
    again = adaptive.query(QUERY)
    print("\n=== Same session, second run (plans from observed truth) ===")
    for strategy in again.join_strategies:
        print(f"  planned: {strategy}")
    print(f"  replans: {again.metrics.aqe_replans}")
    catalog = adaptive.layout.catalog
    observed = {name: catalog.observed_rows(name) for name in again.selected_tables}
    print(f"  observed cardinalities cached in catalog: {observed}")
    adaptive.close()


if __name__ == "__main__":
    main()
