"""Concurrent serving: one dataset, many in-flight queries, one scheduler.

A persisted dataset can serve many clients at once.  ``session.serve()``
returns a :class:`~repro.serve.scheduler.QueryScheduler`: submissions get a
handle immediately, run on a bounded number of dispatchers (process workers
when the session was opened with ``execution_mode="process"``), and identical
in-flight queries share one execution.  This example persists a small graph,
submits a burst of queries — some duplicated, one marked high priority —
and prints per-query latency percentiles from the scheduler's stats.

Run with:  python examples/concurrent_serving.py
"""

import tempfile

import repro


def build_graph() -> repro.Graph:
    triples = []
    for i in range(40):
        triples.append(repro.Triple.of(f"user{i}", "follows", f"user{(i * 3 + 1) % 40}"))
        triples.append(repro.Triple.of(f"user{i}", "likes", f"item{i % 8}"))
    return repro.Graph(triples, name="social")


QUERIES = [
    "SELECT * WHERE { ?a <follows> ?b . ?b <likes> ?w }",
    "SELECT ?a WHERE { ?a <likes> <item3> }",
    "SELECT ?a ?c WHERE { ?a <follows> ?b . ?b <follows> ?c }",
    "SELECT ?w WHERE { <user5> <follows> ?b . ?b <likes> ?w }",
]


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        path = f"{root}/social"
        repro.create(build_graph(), path=path, num_partitions=2).close()

        # Thread-pool execution keeps the example instant; open with
        # execution_mode="process" to serve queries on separate cores.
        with repro.connect(path, journal_enabled=False) as session:
            with session.serve() as scheduler:
                # Submit a burst: 20 queries, duplicates included.  Handles
                # come back immediately; execution overlaps behind the scenes.
                handles = [
                    scheduler.submit(QUERIES[i % len(QUERIES)]) for i in range(19)
                ]
                # A high-priority submission jumps the admission queue.
                urgent = scheduler.submit(QUERIES[0], priority=10)
                handles.append(urgent)

                for i, handle in enumerate(handles):
                    result = handle.result(timeout=60)
                    marker = " (shared execution)" if handle.shared else ""
                    print(f"query {i:2d}: {len(result):3d} rows{marker}")

                stats = scheduler.stats()
                print(
                    f"\ncompleted {stats['completed']} queries: "
                    f"p50 {stats['p50_ms']:.2f} ms, p99 {stats['p99_ms']:.2f} ms"
                )
                assert stats["completed"] > 0
                # Duplicate texts at the same dataset epoch coalesced.
                assert any(handle.shared for handle in handles)
    print("\nOK: burst served; duplicate in-flight queries shared one execution")


if __name__ == "__main__":
    main()
