"""Setup shim.

The offline evaluation environment has no ``wheel`` package, so PEP 660
editable installs fail.  This shim lets ``pip install -e . --no-use-pep517``
(legacy ``setup.py develop``) work without network access.
"""

from setuptools import setup

setup()
