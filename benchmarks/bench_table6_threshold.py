"""Benchmark for Table 6 / Fig. 16: the ExtVP selectivity-factor threshold."""

import pytest

from repro.bench import run_table6_threshold
from repro.mappings.extvp import ExtVPLayout


@pytest.mark.benchmark(group="table6-threshold")
def test_table6_report(benchmark, bench_dataset, report_sink):
    """Regenerate the threshold sweep and check the paper's trade-off."""
    report = benchmark.pedantic(
        run_table6_threshold,
        kwargs={"dataset": bench_dataset, "thresholds": (0.0, 0.1, 0.25, 0.5, 1.0)},
        rounds=1,
        iterations=1,
    )
    report_sink("table6_threshold", report)
    tuples = report.column("tuples")
    assert tuples == sorted(tuples)
    vp = report.row_for(threshold=0.0)["runtime_ms"]
    mid = report.row_for(threshold=0.25)["runtime_ms"]
    full = report.row_for(threshold=1.0)["runtime_ms"]
    assert full <= vp
    if vp > full:
        assert (vp - mid) / (vp - full) > 0.5


@pytest.mark.benchmark(group="table6-threshold")
@pytest.mark.parametrize("threshold", [0.1, 0.25, 1.0])
def test_threshold_build_wallclock(benchmark, bench_dataset, threshold):
    """Build cost of the ExtVP layout at different thresholds."""
    def build():
        layout = ExtVPLayout(selectivity_threshold=threshold)
        layout.build(bench_dataset.graph)
        return layout

    layout = benchmark.pedantic(build, rounds=1, iterations=1)
    assert all(info.selectivity < threshold or not info.materialized for info in layout.statistics.tables.values())
