"""Benchmark for Table 5 / Fig. 15: Incremental Linear Testing."""

import pytest

from repro.bench import run_table5_incremental
from repro.bench.scaling import paper_work_scale
from repro.core.session import S2RDFSession
from repro.watdiv.incremental_queries import incremental_template
from repro.watdiv.template import instantiate_template


@pytest.mark.benchmark(group="table5-incremental")
def test_table5_report(benchmark, bench_dataset, report_sink):
    """Regenerate the IL comparison (diameters 5-8 to keep the run short)."""
    report = benchmark.pedantic(
        run_table5_incremental,
        kwargs={"dataset": bench_dataset, "instantiations": 1, "max_diameter": 8},
        rounds=1,
        iterations=1,
    )
    report_sink("table5_incremental", report)
    for query_type in ("AM-IL-1", "AM-IL-2", "AM-IL-3"):
        row = report.row_for(query=query_type)
        assert row["S2RDF ExtVP"] < row["SHARD"]
        assert row["S2RDF ExtVP"] < row["PigSPARQL"]


@pytest.fixture(scope="module")
def extvp_session(bench_dataset):
    return S2RDFSession.from_graph(
        bench_dataset.graph, work_scale=paper_work_scale(bench_dataset.graph)
    )


@pytest.mark.benchmark(group="table5-incremental")
@pytest.mark.parametrize("diameter", [5, 6, 7, 8, 9, 10])
def test_unbound_linear_wallclock(benchmark, bench_dataset, extvp_session, diameter):
    """Wall-clock growth of the unbound IL-3 chain with increasing diameter."""
    query = instantiate_template(incremental_template(f"IL-3-{diameter}"), bench_dataset)
    result = benchmark(extvp_session.query, query)
    assert result.metrics.joins == diameter - 1 or result.statically_empty
