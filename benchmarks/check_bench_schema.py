#!/usr/bin/env python
"""Validate machine-readable benchmark output files (BENCH_*.json).

Every ``BENCH_*.json`` under ``benchmarks/output/`` (or the paths given on
the command line) must follow the ``s2rdf-bench/v1`` schema written by
:func:`repro.bench.reporting.write_bench_json`:

* top-level keys: schema, name, description, columns, rows, notes,
  counters, timings, stash;
* ``rows`` is a list of dicts whose keys are all listed in ``columns``;
* ``counters`` / ``timings`` map column names to numbers;
* the file parses as *strict* JSON (no Infinity/NaN).

Exit code 0 when every file validates, 1 otherwise.  Used by CI after the
smoke benchmarks run with ``--json``.

Usage::

    PYTHONPATH=src python benchmarks/check_bench_schema.py [files...]
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import List

EXPECTED_SCHEMA = "s2rdf-bench/v1"
REQUIRED_KEYS = {
    "schema",
    "name",
    "description",
    "columns",
    "rows",
    "notes",
    "counters",
    "timings",
    "stash",
}


def check_file(path: pathlib.Path) -> List[str]:
    """Return a list of problems with ``path`` (empty = valid)."""
    problems: List[str] = []
    try:
        # parse_constant rejects Infinity/-Infinity/NaN, which json.loads
        # would otherwise accept despite being invalid strict JSON.
        payload = json.loads(
            path.read_text(encoding="utf-8"),
            parse_constant=lambda token: (_ for _ in ()).throw(ValueError(token)),
        )
    except (ValueError, OSError) as error:
        return [f"not strict JSON: {error}"]

    if not isinstance(payload, dict):
        return ["top level is not an object"]
    missing = REQUIRED_KEYS - payload.keys()
    if missing:
        problems.append(f"missing keys: {sorted(missing)}")
        return problems
    if payload["schema"] != EXPECTED_SCHEMA:
        problems.append(f"schema is {payload['schema']!r}, expected {EXPECTED_SCHEMA!r}")
    if not isinstance(payload["name"], str) or not payload["name"]:
        problems.append("name must be a non-empty string")
    columns = payload["columns"]
    if not isinstance(columns, list) or not all(isinstance(c, str) for c in columns):
        problems.append("columns must be a list of strings")
        columns = []
    rows = payload["rows"]
    if not isinstance(rows, list):
        problems.append("rows must be a list")
        rows = []
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"row {index} is not an object")
            continue
        unknown = set(row) - set(columns)
        if unknown:
            problems.append(f"row {index} has keys outside columns: {sorted(unknown)}")
    for section in ("counters", "timings"):
        mapping = payload[section]
        if not isinstance(mapping, dict):
            problems.append(f"{section} must be an object")
            continue
        for key, value in mapping.items():
            if key not in columns:
                problems.append(f"{section} key {key!r} is not a column")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{section}[{key!r}] is not a number")
    if not isinstance(payload["notes"], list):
        problems.append("notes must be a list")
    return problems


def main(argv: List[str]) -> int:
    if argv:
        paths = [pathlib.Path(arg) for arg in argv]
    else:
        output_dir = pathlib.Path(__file__).parent / "output"
        paths = sorted(output_dir.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        problems = check_file(path)
        if problems:
            failures += 1
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
