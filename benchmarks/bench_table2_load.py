"""Benchmark for Table 2: layout build (load) times and store sizes."""

import pytest

from repro.bench import run_table2_load
from repro.mappings.extvp import ExtVPLayout
from repro.mappings.vertical import VerticalPartitioningLayout


@pytest.mark.benchmark(group="table2-load")
def test_table2_report(benchmark, bench_scale, bench_seed, report_sink):
    """Regenerate the full Table 2 report (all systems, one scale factor)."""
    report = benchmark.pedantic(
        run_table2_load,
        kwargs={"scale_factors": (bench_scale,), "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report_sink("table2_load", report)
    extvp = report.row_for(system="S2RDF ExtVP")
    vp = report.row_for(system="S2RDF VP")
    assert extvp["tuples"] > vp["tuples"]
    assert extvp["simulated_load_s"] > vp["simulated_load_s"]


@pytest.mark.benchmark(group="table2-load")
def test_vp_build_wallclock(benchmark, bench_dataset):
    """Wall-clock cost of building the plain VP layout."""
    def build():
        layout = VerticalPartitioningLayout()
        layout.build(bench_dataset.graph)
        return layout

    layout = benchmark(build)
    assert layout.total_tuples() == len(bench_dataset.graph)


@pytest.mark.benchmark(group="table2-load")
def test_extvp_build_wallclock(benchmark, bench_dataset):
    """Wall-clock cost of building the full ExtVP layout (the paper's slow load)."""
    def build():
        layout = ExtVPLayout()
        layout.build(bench_dataset.graph)
        return layout

    layout = benchmark.pedantic(build, rounds=1, iterations=1)
    assert layout.statistics.total_materialized_tuples() > 0
