"""Ablation benchmarks: join-order optimisation and OO correlation tables."""

import pytest

from repro.bench import run_join_order_ablation, run_oo_correlation_ablation


@pytest.mark.benchmark(group="ablations")
def test_join_order_ablation(benchmark, bench_dataset, report_sink):
    """Algorithm 4 vs Algorithm 3: intermediate-result reduction."""
    report = benchmark.pedantic(
        run_join_order_ablation,
        kwargs={"dataset": bench_dataset},
        rounds=1,
        iterations=1,
    )
    report_sink("ablation_join_order", report)
    # The size-based ordering is a heuristic: it must win clearly in aggregate,
    # even if an individual query can be marginally worse.
    optimized_total = sum(row["optimized_intermediate"] for row in report.rows)
    unoptimized_total = sum(row["unoptimized_intermediate"] for row in report.rows)
    assert optimized_total <= unoptimized_total


@pytest.mark.benchmark(group="ablations")
def test_oo_correlation_ablation(benchmark, bench_dataset, report_sink):
    """Materialising OO tables: how much would they reduce?"""
    report = benchmark.pedantic(
        run_oo_correlation_ablation,
        kwargs={"dataset": bench_dataset},
        rounds=1,
        iterations=1,
    )
    report_sink("ablation_oo_correlations", report)
    assert report.row_for(kind="OO") is not None
