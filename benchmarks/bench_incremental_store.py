"""Benchmark for incremental dataset updates: append + query vs. full rebuild."""

import pytest

from repro.bench import run_incremental_store


@pytest.mark.benchmark(group="incremental_store")
def test_incremental_store_report(benchmark, bench_dataset, report_sink, tmp_path):
    """Appends must beat full rebuilds and compaction must shrink scans."""
    report = benchmark.pedantic(
        run_incremental_store,
        kwargs={"dataset": bench_dataset, "path": str(tmp_path)},
        rounds=1,
        iterations=1,
    )
    report_sink("incremental_store", report)

    total = report.row_for(step="total maintenance")
    assert total is not None and "0 bag mismatches" in total["detail"]
    # Wall clock is noisy at benchmark scale; the deterministic signal is the
    # write amplification the append path avoids (reported in the detail).
    assert total["incremental_s"] < total["rebuild_s"] * 1.25
    assert "write amplification avoided" in total["detail"]

    compaction = report.row_for(step="compact()")
    assert compaction is not None and "0 bag mismatches" in compaction["detail"]
