"""Benchmark for adaptive query execution: stale statistics + skewed joins."""

import pytest

from repro.bench import run_aqe


@pytest.mark.benchmark(group="aqe")
def test_aqe_report(benchmark, bench_dataset, report_sink):
    """Adaptive must replan mis-planned shuffles and beat the static critical path."""
    report = benchmark.pedantic(
        run_aqe,
        kwargs={"dataset": bench_dataset, "num_partitions": 8},
        rounds=1,
        iterations=1,
    )
    report_sink("aqe", report)
    static = report.row_for(mode="static")
    adaptive = report.row_for(mode="adaptive")
    warm = report.row_for(mode="adaptive_warm")
    shuffle_only = report.row_for(mode="adaptive_shuffle_only")

    # Every mode computes the same bag of answers.
    assert len({row["result_tuples"] for row in report.rows}) == 1
    # The stale statistics mis-planned shuffles, and AQE demoted at least one.
    assert static["shuffle_joins"] > 0
    assert adaptive["replans"] >= 1
    assert adaptive["broadcast_joins"] > 0
    # Acceptance bar: the adaptive run beats the static plan's critical path.
    assert adaptive["critical_path_ms"] < static["critical_path_ms"]
    # The observed-cardinality cache makes the second run plan correctly upfront.
    assert warm["replans"] == 0
    # With broadcasts disabled, skew splitting is the remaining lever.
    assert shuffle_only["skew_splits"] > 0
