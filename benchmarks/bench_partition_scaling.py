"""Benchmark for the partitioned parallel runtime: join scaling vs. partitions."""

import pytest

from repro.bench import run_partition_scaling


@pytest.mark.benchmark(group="partition-scaling")
def test_partition_scaling_report(benchmark, bench_dataset, report_sink):
    """Critical-path speedup must exceed 1.3x at 8 partitions (acceptance bar)."""
    report = benchmark.pedantic(
        run_partition_scaling,
        kwargs={"dataset": bench_dataset, "partition_counts": (1, 2, 4, 8)},
        rounds=1,
        iterations=1,
    )
    report_sink("partition_scaling", report)
    serial = report.row_for(partitions=1)
    eight = report.row_for(partitions=8)
    assert serial["speedup"] == 1
    assert eight["speedup"] > 1.3
    assert eight["shuffled_bytes"] > 0
