"""Benchmark for Table 4 / Fig. 14: WatDiv Basic Testing across all systems."""

import pytest

from repro.bench import run_table4_basic
from repro.bench.scaling import paper_work_scale
from repro.bench.table4_basic import default_engines
from repro.watdiv.basic_queries import basic_template
from repro.watdiv.template import instantiate_template


@pytest.mark.benchmark(group="table4-basic")
def test_table4_report(benchmark, bench_dataset, report_sink):
    """Regenerate the Basic Testing comparison and check the system ordering."""
    report = benchmark.pedantic(
        run_table4_basic,
        kwargs={"dataset": bench_dataset, "instantiations": 1},
        rounds=1,
        iterations=1,
    )
    report_sink("table4_basic", report)
    total = report.row_for(query="AM-T")
    assert total["S2RDF ExtVP"] <= total["S2RDF VP"]
    assert total["S2RDF ExtVP"] < total["PigSPARQL"]
    assert total["S2RDF ExtVP"] < total["SHARD"]


@pytest.fixture(scope="module")
def loaded_engines(bench_dataset):
    engines = default_engines(paper_work_scale(bench_dataset.graph))
    for engine in engines:
        engine.load(bench_dataset.graph)
    return {engine.name: engine for engine in engines}


@pytest.mark.benchmark(group="table4-basic")
@pytest.mark.parametrize("template_name", ["L3", "S3", "F5", "C3"])
def test_s2rdf_extvp_wallclock(benchmark, bench_dataset, loaded_engines, template_name):
    """Wall-clock execution of one query per shape on S2RDF ExtVP."""
    query = instantiate_template(basic_template(template_name), bench_dataset)
    result = benchmark(loaded_engines["S2RDF ExtVP"].query, query)
    assert not result.failed


@pytest.mark.benchmark(group="table4-basic")
@pytest.mark.parametrize("engine_name", ["Sempala", "H2RDF+", "Virtuoso"])
def test_competitor_wallclock(benchmark, bench_dataset, loaded_engines, engine_name):
    """Wall-clock execution of the snowflake query F5 on the other engines."""
    query = instantiate_template(basic_template("F5"), bench_dataset)
    result = benchmark(loaded_engines[engine_name].query, query)
    assert not result.failed
