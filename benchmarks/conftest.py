"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section via :mod:`repro.bench` and writes the resulting report to
``benchmarks/output/``.  Scale factors are chosen so the whole suite finishes
in a few minutes on a laptop; pass ``--bench-scale`` to rerun at a larger
scale.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.watdiv.generator import generate_dataset

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="2.0",
        help="WatDiv-like scale factor used by the benchmark datasets",
    )
    parser.addoption(
        "--bench-seed",
        action="store",
        default="42",
        help="random seed for the benchmark datasets",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> float:
    return float(request.config.getoption("--bench-scale"))


@pytest.fixture(scope="session")
def bench_seed(request) -> int:
    return int(request.config.getoption("--bench-seed"))


@pytest.fixture(scope="session")
def bench_dataset(bench_scale, bench_seed):
    """One shared dataset for all query benchmarks."""
    return generate_dataset(scale_factor=bench_scale, seed=bench_seed)


@pytest.fixture(scope="session")
def report_sink():
    """Write reports to benchmarks/output/: <name>.txt + BENCH_<name>.json."""
    from repro.bench.reporting import write_bench_json

    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, report) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(report.to_text() + "\n", encoding="utf-8")
        write_bench_json(report, name, output_dir=OUTPUT_DIR)

    return write
