"""Benchmark for Table 3 / Fig. 13: Selectivity Testing (ExtVP vs VP)."""

import pytest

from repro.bench import run_table3_selectivity
from repro.bench.scaling import paper_work_scale
from repro.core.session import S2RDFSession
from repro.watdiv.selectivity_queries import selectivity_template
from repro.watdiv.template import instantiate_template


@pytest.mark.benchmark(group="table3-selectivity")
def test_table3_report(benchmark, bench_dataset, report_sink):
    """Regenerate the full ST comparison and check the paper's shape."""
    report = benchmark.pedantic(run_table3_selectivity, kwargs={"dataset": bench_dataset}, rounds=1, iterations=1)
    report_sink("table3_selectivity", report)
    assert report.row_for(query="ST-1-3")["speedup"] > report.row_for(query="ST-1-1")["speedup"]
    assert report.row_for(query="ST-8-2")["extvp_input_tuples"] == 0


@pytest.fixture(scope="module")
def sessions(bench_dataset):
    scale = paper_work_scale(bench_dataset.graph)
    extvp = S2RDFSession.from_graph(bench_dataset.graph, use_extvp=True, work_scale=scale)
    vp = S2RDFSession.from_graph(bench_dataset.graph, use_extvp=False, work_scale=scale)
    return extvp, vp


@pytest.mark.benchmark(group="table3-selectivity")
@pytest.mark.parametrize("query_name", ["ST-1-3", "ST-3-3", "ST-6-1", "ST-8-2"])
def test_extvp_query_wallclock(benchmark, bench_dataset, sessions, query_name):
    """Wall-clock execution of representative ST queries on ExtVP."""
    extvp, _ = sessions
    query = instantiate_template(selectivity_template(query_name), bench_dataset)
    result = benchmark(extvp.query, query)
    # ST-8-x queries are answered from statistics alone (zero stages).
    assert result.statically_empty or result.metrics.stages >= 1


@pytest.mark.benchmark(group="table3-selectivity")
@pytest.mark.parametrize("query_name", ["ST-1-3", "ST-3-3"])
def test_vp_query_wallclock(benchmark, bench_dataset, sessions, query_name):
    """The same queries on plain VP (reads more input tuples)."""
    _, vp = sessions
    query = instantiate_template(selectivity_template(query_name), bench_dataset)
    result = benchmark(vp.query, query)
    assert result.metrics.input_tuples > 0
