"""Benchmark for concurrent serving: closed-loop clients on process workers."""

import pytest

from repro.bench.serving import run_serving


@pytest.mark.benchmark(group="serving")
def test_serving_report(benchmark, bench_dataset, report_sink):
    """Concurrency must scale QPS without changing a single answer."""
    report = benchmark.pedantic(
        run_serving,
        kwargs={
            "dataset": bench_dataset,
            "client_levels": (1, 4, 16),
            # The gate itself is asserted in full standalone runs; the pytest
            # wrapper runs at --bench-scale (default 2.0) where query wall
            # time is too small for reliable scaling ratios.
            "require_scaling": None,
        },
        rounds=1,
        iterations=1,
    )
    report_sink("serving", report)

    # run_serving asserted bag-equality against serial execution internally.
    assert report.stash["mismatches"] == 0
    # Closed-loop accounting: every client ran the whole mix at every level.
    per_client = report.stash["queries_per_client"]
    for row in report.rows:
        assert row["queries"] == row["clients"] * per_client
        assert float(row["p99_ms"]) >= float(row["p50_ms"])
    # More clients never reduce throughput to below the single-client level
    # by more than noise allows; the >=2x bar is enforced by the standalone
    # full-mode run (python -m-style invocation without --smoke).
    assert report.stash["qps"]["16"] > 0
