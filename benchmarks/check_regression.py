#!/usr/bin/env python
"""Bench regression gate CLI — thin wrapper over :mod:`repro.bench.regression`.

Compares freshly produced ``BENCH_*.json`` smoke outputs against committed
baselines with per-metric-kind tolerances (counters: symmetric relative
deviation; timings: growth-ratio only) and exits non-zero on any violation,
so CI fails the build when the perf contract breaks.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \\
        --baseline-dir /tmp/bench-baselines --current-dir benchmarks/output
"""

from __future__ import annotations

import sys

from repro.bench.regression import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
