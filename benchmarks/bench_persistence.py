"""Benchmark for the persistent dataset store: cold open vs. rebuild."""

import pytest

from repro.bench import run_persistence


@pytest.mark.benchmark(group="persistence")
def test_persistence_report(benchmark, bench_dataset, report_sink, tmp_path):
    """Cold open must skip the rebuild and prune at least one segment."""
    report = benchmark.pedantic(
        run_persistence,
        kwargs={"dataset": bench_dataset, "path": str(tmp_path / "dataset")},
        rounds=1,
        iterations=1,
    )
    report_sink("persistence", report)

    equivalence = report.row_for(step="result equivalence")
    assert equivalence is not None and "0 mismatches" in equivalence["detail"]

    cold = report.row_for(step="cold open_dataset")
    assert cold is not None and "no parse/rebuild" in cold["detail"]

    pruned = report.row_for(step="zone-map-pruned scan")
    assert pruned is not None and "segments pruned" in pruned["detail"]

    aligned = report.row_for(step="partition-aligned joins")
    assert aligned is not None and not aligned["detail"].startswith("0 join inputs")
