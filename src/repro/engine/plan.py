"""Logical query plans with a SQL renderer and an executor.

The S2RDF compiler maps SPARQL algebra to these plan nodes.  ``to_sql()``
renders the plan as the Spark SQL text the paper shows (Fig. 6, Fig. 11),
while :class:`PlanExecutor` runs it against a :class:`~repro.engine.catalog.Catalog`
and records :class:`~repro.engine.metrics.ExecutionMetrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.catalog import Catalog
from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sparql.expressions import Expression


class PlanNode:
    """Base class of all logical plan operators."""

    def to_sql(self, indent: int = 0) -> str:
        raise NotImplementedError

    def output_columns(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def children(self) -> Sequence["PlanNode"]:
        return ()


def _indent(text: str, indent: int) -> str:
    prefix = "  " * indent
    return "\n".join(prefix + line for line in text.splitlines())


@dataclass(frozen=True)
class TableScanNode(PlanNode):
    """Scan a whole catalog table."""

    table_name: str
    columns: Tuple[str, ...]

    def to_sql(self, indent: int = 0) -> str:
        return _indent(f"SELECT {', '.join(self.columns)} FROM {self.table_name}", indent)

    def output_columns(self) -> Tuple[str, ...]:
        return self.columns


@dataclass(frozen=True)
class SubqueryNode(PlanNode):
    """The TP2SQL building block: project/rename + equality selections.

    ``projections`` maps physical column names (``s``/``o``/``p``) to variable
    names; ``conditions`` are equality selections on physical columns.
    """

    table_name: str
    projections: Tuple[Tuple[str, str], ...]
    conditions: Tuple[Tuple[str, Any], ...] = ()

    def to_sql(self, indent: int = 0) -> str:
        select_list = ", ".join(f"{column} AS {alias}" for column, alias in self.projections)
        sql = f"SELECT {select_list} FROM {self.table_name}"
        if self.conditions:
            rendered = " AND ".join(f"{column} = {_sql_value(value)}" for column, value in self.conditions)
            sql += f" WHERE {rendered}"
        return _indent(sql, indent)

    def output_columns(self) -> Tuple[str, ...]:
        return tuple(alias for _, alias in self.projections)


@dataclass(frozen=True)
class EmptyNode(PlanNode):
    """A node known to produce no rows (statistics short-circuit)."""

    columns: Tuple[str, ...] = ()

    def to_sql(self, indent: int = 0) -> str:
        return _indent("SELECT * FROM (VALUES ) AS empty -- statically empty", indent)

    def output_columns(self) -> Tuple[str, ...]:
        return self.columns


@dataclass(frozen=True)
class NaturalJoinNode(PlanNode):
    left: PlanNode
    right: PlanNode

    def to_sql(self, indent: int = 0) -> str:
        shared = [c for c in self.left.output_columns() if c in self.right.output_columns()]
        using = f" USING ({', '.join(shared)})" if shared else " -- cross join"
        return (
            _indent("SELECT * FROM (", indent)
            + "\n"
            + self.left.to_sql(indent + 1)
            + "\n"
            + _indent(") AS lhs JOIN (", indent)
            + "\n"
            + self.right.to_sql(indent + 1)
            + "\n"
            + _indent(f") AS rhs{using}", indent)
        )

    def output_columns(self) -> Tuple[str, ...]:
        left = self.left.output_columns()
        right = [c for c in self.right.output_columns() if c not in left]
        return tuple(list(left) + right)

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


@dataclass(frozen=True)
class LeftOuterJoinNode(PlanNode):
    left: PlanNode
    right: PlanNode
    expression: Optional[Expression] = None

    def to_sql(self, indent: int = 0) -> str:
        shared = [c for c in self.left.output_columns() if c in self.right.output_columns()]
        using = f" USING ({', '.join(shared)})" if shared else ""
        condition = f" -- filter: {self.expression.to_sql()}" if self.expression is not None else ""
        return (
            _indent("SELECT * FROM (", indent)
            + "\n"
            + self.left.to_sql(indent + 1)
            + "\n"
            + _indent(") AS lhs LEFT OUTER JOIN (", indent)
            + "\n"
            + self.right.to_sql(indent + 1)
            + "\n"
            + _indent(f") AS rhs{using}{condition}", indent)
        )

    def output_columns(self) -> Tuple[str, ...]:
        left = self.left.output_columns()
        right = [c for c in self.right.output_columns() if c not in left]
        return tuple(list(left) + right)

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnionNode(PlanNode):
    left: PlanNode
    right: PlanNode

    def to_sql(self, indent: int = 0) -> str:
        return (
            self.left.to_sql(indent)
            + "\n"
            + _indent("UNION ALL", indent)
            + "\n"
            + self.right.to_sql(indent)
        )

    def output_columns(self) -> Tuple[str, ...]:
        left = self.left.output_columns()
        right = [c for c in self.right.output_columns() if c not in left]
        return tuple(list(left) + right)

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


@dataclass(frozen=True)
class FilterNode(PlanNode):
    child: PlanNode
    expression: Expression

    def to_sql(self, indent: int = 0) -> str:
        return (
            _indent("SELECT * FROM (", indent)
            + "\n"
            + self.child.to_sql(indent + 1)
            + "\n"
            + _indent(f") AS filtered WHERE {self.expression.to_sql()}", indent)
        )

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    child: PlanNode
    columns: Tuple[str, ...]

    def to_sql(self, indent: int = 0) -> str:
        return (
            _indent(f"SELECT {', '.join(self.columns)} FROM (", indent)
            + "\n"
            + self.child.to_sql(indent + 1)
            + "\n"
            + _indent(") AS projected", indent)
        )

    def output_columns(self) -> Tuple[str, ...]:
        return self.columns

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass(frozen=True)
class DistinctNode(PlanNode):
    child: PlanNode

    def to_sql(self, indent: int = 0) -> str:
        return (
            _indent("SELECT DISTINCT * FROM (", indent)
            + "\n"
            + self.child.to_sql(indent + 1)
            + "\n"
            + _indent(") AS dedup", indent)
        )

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass(frozen=True)
class OrderByNode(PlanNode):
    child: PlanNode
    keys: Tuple[Tuple[str, bool], ...]

    def to_sql(self, indent: int = 0) -> str:
        rendered = ", ".join(f"{column} {'ASC' if ascending else 'DESC'}" for column, ascending in self.keys)
        return (
            _indent("SELECT * FROM (", indent)
            + "\n"
            + self.child.to_sql(indent + 1)
            + "\n"
            + _indent(f") AS ordered ORDER BY {rendered}", indent)
        )

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass(frozen=True)
class LimitNode(PlanNode):
    child: PlanNode
    limit: Optional[int]
    offset: int = 0

    def to_sql(self, indent: int = 0) -> str:
        clause = ""
        if self.limit is not None:
            clause += f" LIMIT {self.limit}"
        if self.offset:
            clause += f" OFFSET {self.offset}"
        return (
            _indent("SELECT * FROM (", indent)
            + "\n"
            + self.child.to_sql(indent + 1)
            + "\n"
            + _indent(f") AS sliced{clause}", indent)
        )

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


def _sql_value(value: Any) -> str:
    if hasattr(value, "n3"):
        return "'" + value.n3().replace("'", "''") + "'"
    if isinstance(value, (int, float)):
        return str(value)
    return "'" + str(value).replace("'", "''") + "'"


def plan_depth(node: PlanNode) -> int:
    """Height of the plan tree (used in tests and ablation reporting)."""
    children = node.children()
    if not children:
        return 1
    return 1 + max(plan_depth(child) for child in children)


def count_joins(node: PlanNode) -> int:
    """Number of join operators in a plan."""
    own = 1 if isinstance(node, (NaturalJoinNode, LeftOuterJoinNode)) else 0
    return own + sum(count_joins(child) for child in node.children())


@dataclass
class NodeExecution:
    """Observed execution of one plan node (keyed by ``id(node)``).

    ``elapsed_ms`` is *cumulative*: it includes the node's children, because
    operators materialize bottom-up inside their parent's frame.  Renderers
    (``explain_analyze``) subtract child times for self-time displays.
    """

    rows: int
    elapsed_ms: float


def _node_span_name(plan: PlanNode) -> str:
    if isinstance(plan, (TableScanNode, SubqueryNode)):
        return f"scan {plan.table_name}"
    return type(plan).__name__.removesuffix("Node")


class PlanExecutor:
    """Executes logical plans against a catalog.

    Every operator is wrapped in a tracer span (no-op unless the tracer is
    enabled) and records a :class:`NodeExecution` into ``last_node_stats``,
    which ``explain_analyze`` reads to annotate the plan with observed rows
    and elapsed time per operator.
    """

    def __init__(
        self,
        catalog: Catalog,
        tracer: Optional[Tracer] = None,
        metrics_registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.catalog = catalog
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = metrics_registry
        #: Per-node observations of the most recently executed plan.
        self.last_node_stats: Dict[int, NodeExecution] = {}

    def execute(self, plan: PlanNode, metrics: Optional[ExecutionMetrics] = None) -> Relation:
        metrics = metrics if metrics is not None else ExecutionMetrics()
        self.last_node_stats = {}
        result = self._execute(plan, metrics)
        metrics.output_tuples = len(result)
        return result

    def _observe(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.observe(name, value)

    def _record_scan(self, table_name: str, scan, metrics: ExecutionMetrics) -> None:
        """Record a scan; store-backed scans also report segment pruning.

        An instance method (not static) so the adaptive runtime can override
        it to feed observed table cardinalities back into the catalog.
        """
        metrics.record_scan(table_name, scan.rows_scanned)
        if scan.segments_scanned or scan.segments_pruned:
            metrics.record_segment_scan(scan.segments_scanned, scan.segments_pruned)
            if scan.segments_pruned:
                # Pruning decision, visible on the scan's span timeline.
                self.tracer.current().event(
                    "segment-pruning",
                    table=table_name,
                    segments_scanned=scan.segments_scanned,
                    segments_pruned=scan.segments_pruned,
                )

    # ------------------------------------------------------------------ #
    def _execute(self, plan: PlanNode, metrics: ExecutionMetrics) -> Relation:
        """Execute ``plan`` inside a span, recording per-node observations."""
        with self.tracer.span(_node_span_name(plan), category="operator") as span:
            start = time.perf_counter()
            result = self._execute_node(plan, metrics)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            span.set(rows=len(result))
        self.last_node_stats[id(plan)] = NodeExecution(rows=len(result), elapsed_ms=elapsed_ms)
        return result

    def _execute_node(self, plan: PlanNode, metrics: ExecutionMetrics) -> Relation:
        if isinstance(plan, EmptyNode):
            return Relation.empty(plan.columns)
        if isinstance(plan, TableScanNode):
            scan = self.catalog.scan(plan.table_name, columns=plan.columns)
            self._record_scan(plan.table_name, scan, metrics)
            relation = scan.relation
            return relation.project(plan.columns) if plan.columns != relation.columns else relation
        if isinstance(plan, SubqueryNode):
            columns = [column for column, _ in plan.projections]
            scan = self.catalog.scan(
                plan.table_name,
                columns=columns,
                conditions=dict(plan.conditions) if plan.conditions else None,
            )
            self._record_scan(plan.table_name, scan, metrics)
            aliases = {column: alias for column, alias in plan.projections}
            return scan.relation.project(columns).rename(aliases)
        if isinstance(plan, NaturalJoinNode):
            left = self._execute(plan.left, metrics)
            right = self._execute(plan.right, metrics)
            return self._natural_join(plan, left, right, metrics)
        if isinstance(plan, LeftOuterJoinNode):
            left = self._execute(plan.left, metrics)
            right = self._execute(plan.right, metrics)
            joined = self._left_outer_join(plan, left, right, metrics)
            if plan.expression is not None:
                right_only = set(plan.right.output_columns()) - set(plan.left.output_columns())

                def keep(row: Dict[str, Any]) -> bool:
                    # The OPTIONAL filter only applies when the optional part matched.
                    if all(row.get(c) is None for c in right_only):
                        return True
                    mapping = {k: v for k, v in row.items() if v is not None}
                    return plan.expression.evaluate_truth(mapping)

                joined = joined.select(keep)
            return joined
        if isinstance(plan, UnionNode):
            left = self._execute(plan.left, metrics)
            right = self._execute(plan.right, metrics)
            return left.union(right)
        if isinstance(plan, FilterNode):
            child = self._execute(plan.child, metrics)
            return child.select(lambda row: plan.expression.evaluate_truth({k: v for k, v in row.items() if v is not None}))
        if isinstance(plan, ProjectNode):
            child = self._execute(plan.child, metrics)
            missing = [c for c in plan.columns if c not in child.columns]
            if missing:
                padded_columns = list(child.columns) + missing
                child = Relation(
                    padded_columns,
                    (row + tuple(None for _ in missing) for row in child.rows),
                )
            return child.project(plan.columns)
        if isinstance(plan, DistinctNode):
            return self._execute(plan.child, metrics).distinct()
        if isinstance(plan, OrderByNode):
            return self._execute(plan.child, metrics).order_by(plan.keys)
        if isinstance(plan, LimitNode):
            return self._execute(plan.child, metrics).limit(plan.limit, plan.offset)
        raise TypeError(f"unknown plan node {type(plan).__name__}")

    # ------------------------------------------------------------------ #
    # Physical join hooks.  The serial executor joins in-process; the
    # partitioned runtime (repro.engine.runtime) overrides these to apply a
    # shuffle or broadcast strategy across a worker pool.
    # ------------------------------------------------------------------ #
    def _natural_join(
        self, plan: NaturalJoinNode, left: Relation, right: Relation, metrics: ExecutionMetrics
    ) -> Relation:
        start = time.perf_counter()
        result = left.natural_join(right, metrics)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        metrics.record_critical_path(elapsed_ms)
        self._observe("s2rdf_join_critical_path_ms", elapsed_ms)
        return result

    def _left_outer_join(
        self, plan: LeftOuterJoinNode, left: Relation, right: Relation, metrics: ExecutionMetrics
    ) -> Relation:
        start = time.perf_counter()
        result = left.left_outer_join(right, metrics)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        metrics.record_critical_path(elapsed_ms)
        self._observe("s2rdf_join_critical_path_ms", elapsed_ms)
        return result
