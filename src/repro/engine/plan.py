"""Plan execution against a catalog (the native in-process engine).

The plan IR itself lives in :mod:`repro.engine.ops` (and is re-exported here
for backwards compatibility).  :class:`PlanExecutor` is the serial engine: an
:class:`~repro.engine.ops.OperationVisitor` whose ``visit_*`` hooks evaluate
each operator against a :class:`~repro.engine.catalog.Catalog`, recording
:class:`~repro.engine.metrics.ExecutionMetrics` and per-node observations for
``explain_analyze``.  The partitioned runtime subclasses it and overrides the
physical join hooks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.engine.catalog import Catalog
from repro.engine.metrics import ExecutionMetrics
from repro.engine.ops import (  # noqa: F401  (re-exported compatibility surface)
    AggregateNode,
    AggregateSpec,
    BinaryOperation,
    DistinctNode,
    EmptyNode,
    FilterNode,
    LeafOperation,
    LeftOuterJoinNode,
    LimitNode,
    NaturalJoinNode,
    Operation,
    OperationVisitor,
    OrderByNode,
    PlanNode,
    ProjectNode,
    SubqueryNode,
    TableScanNode,
    UnaryOperation,
    UnionNode,
    _indent,
    _sql_value,
    count_joins,
    plan_depth,
)
from repro.engine.relation import Relation
from repro.engine.storage import NULL_ID
from repro.engine.vectorized import ColumnBatch
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass
class NodeExecution:
    """Observed execution of one plan node (keyed by ``id(node)``).

    ``elapsed_ms`` is *cumulative*: it includes the node's children, because
    operators materialize bottom-up inside their parent's frame.  Renderers
    (``explain_analyze``) subtract child times for self-time displays.
    """

    rows: int
    elapsed_ms: float
    #: True when the node produced an id :class:`ColumnBatch` (no row dicts).
    vectorized: bool = False


def _node_span_name(plan: Operation) -> str:
    if plan.is_scan:
        return f"scan {plan.table_name}"
    return type(plan).__name__.removesuffix("Node")


class PlanExecutor(OperationVisitor):
    """Executes logical plans against a catalog.

    Every operator is wrapped in a tracer span (no-op unless the tracer is
    enabled) and records a :class:`NodeExecution` into ``last_node_stats``,
    which ``explain_analyze`` reads to annotate the plan with observed rows
    and elapsed time per operator.
    """

    def __init__(
        self,
        catalog: Catalog,
        tracer: Optional[Tracer] = None,
        metrics_registry: Optional[MetricsRegistry] = None,
        vectorized: bool = False,
    ) -> None:
        self.catalog = catalog
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = metrics_registry
        #: When True, store-backed scans emit id :class:`ColumnBatch`es and
        #: batch-capable operators stay on ids; operators without a kernel
        #: (OPTIONAL, aggregates, ORDER BY) lower batch -> rows at a single
        #: boundary and continue on the row path.
        self.vectorized = vectorized
        #: Per-node observations of the most recently executed plan.
        self.last_node_stats: Dict[int, NodeExecution] = {}

    def execute(self, plan: Operation, metrics: Optional[ExecutionMetrics] = None) -> Relation:
        metrics = metrics if metrics is not None else ExecutionMetrics()
        self.last_node_stats = {}
        # A batch surviving to the root is decoded here — the single
        # deferred-decoding boundary before result rendering.
        result = self._lower(self._execute(plan, metrics))
        metrics.output_tuples = len(result)
        return result

    @staticmethod
    def _lower(result: Any) -> Relation:
        """Decode an id batch to rows; row relations pass through untouched."""
        if isinstance(result, ColumnBatch):
            return result.to_relation()
        return result

    def _observe(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.observe(name, value)

    def _record_scan(self, table_name: str, scan, metrics: ExecutionMetrics) -> None:
        """Record a scan; store-backed scans also report segment pruning.

        An instance method (not static) so the adaptive runtime can override
        it to feed observed table cardinalities back into the catalog.
        """
        metrics.record_scan(table_name, scan.rows_scanned)
        if scan.segments_scanned or scan.segments_pruned:
            metrics.record_segment_scan(scan.segments_scanned, scan.segments_pruned)
            if scan.segments_pruned:
                # Pruning decision, visible on the scan's span timeline.
                self.tracer.current().event(
                    "segment-pruning",
                    table=table_name,
                    segments_scanned=scan.segments_scanned,
                    segments_pruned=scan.segments_pruned,
                )

    # ------------------------------------------------------------------ #
    def _execute(self, plan: Operation, metrics: ExecutionMetrics) -> Any:
        """Execute ``plan`` inside a span, recording per-node observations.

        Returns a :class:`Relation` or — on the vectorized path — a
        :class:`ColumnBatch`; both answer ``len``.
        """
        with self.tracer.span(_node_span_name(plan), category="operator") as span:
            start = time.perf_counter()
            result = self.visit(plan, metrics)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            span.set(rows=len(result))
        is_batch = isinstance(result, ColumnBatch)
        if is_batch:
            metrics.record_vectorized(len(result))
        self.last_node_stats[id(plan)] = NodeExecution(
            rows=len(result), elapsed_ms=elapsed_ms, vectorized=is_batch
        )
        return result

    # ------------------------------------------------------------------ #
    # Operator evaluation: one visitor hook per IR node.
    # ------------------------------------------------------------------ #
    def visit_empty(self, plan: EmptyNode, metrics: ExecutionMetrics) -> Relation:
        return Relation.empty(plan.columns)

    def visit_table_scan(self, plan: TableScanNode, metrics: ExecutionMetrics) -> Any:
        if self.vectorized:
            scan = self.catalog.scan_batch(plan.table_name, columns=plan.columns)
            if scan is not None:
                self._record_scan(plan.table_name, scan, metrics)
                batch = scan.batch
                return batch.project(plan.columns) if plan.columns != batch.columns else batch
        scan = self.catalog.scan(plan.table_name, columns=plan.columns)
        self._record_scan(plan.table_name, scan, metrics)
        relation = scan.relation
        return relation.project(plan.columns) if plan.columns != relation.columns else relation

    def visit_subquery(self, plan: SubqueryNode, metrics: ExecutionMetrics) -> Any:
        columns = [column for column, _ in plan.projections]
        conditions = dict(plan.conditions) if plan.conditions else None
        aliases = {column: alias for column, alias in plan.projections}
        if self.vectorized:
            scan = self.catalog.scan_batch(plan.table_name, columns=columns, conditions=conditions)
            if scan is not None:
                self._record_scan(plan.table_name, scan, metrics)
                return scan.batch.project(columns).rename(aliases)
        scan = self.catalog.scan(plan.table_name, columns=columns, conditions=conditions)
        self._record_scan(plan.table_name, scan, metrics)
        return scan.relation.project(columns).rename(aliases)

    def visit_natural_join(self, plan: NaturalJoinNode, metrics: ExecutionMetrics) -> Any:
        left = self._execute(plan.left, metrics)
        right = self._execute(plan.right, metrics)
        left, right = self._align_join_inputs(left, right)
        return self._natural_join(plan, left, right, metrics)

    @staticmethod
    def _align_join_inputs(left: Any, right: Any) -> Any:
        """Keep both join inputs batches only when they can join on raw ids.

        A batch can only id-join another batch from the *same* dictionary;
        any mixed or cross-dictionary pair lowers to row relations so the
        join compares decoded terms.
        """
        left_batch = isinstance(left, ColumnBatch)
        right_batch = isinstance(right, ColumnBatch)
        # ``==`` not ``is``: decoders are bound methods, recreated per scan
        # but equal whenever they wrap the same dictionary instance.
        if left_batch and right_batch and left.decode == right.decode:
            return left, right
        if left_batch:
            left = left.to_relation()
        if right_batch:
            right = right.to_relation()
        return left, right

    def visit_left_outer_join(self, plan: LeftOuterJoinNode, metrics: ExecutionMetrics) -> Relation:
        left = self._lower(self._execute(plan.left, metrics))
        right = self._lower(self._execute(plan.right, metrics))
        joined = self._left_outer_join(plan, left, right, metrics)
        if plan.expression is not None:
            right_only = set(plan.right.output_columns()) - set(plan.left.output_columns())

            def keep(row: Dict[str, Any]) -> bool:
                # The OPTIONAL filter only applies when the optional part matched.
                if all(row.get(c) is None for c in right_only):
                    return True
                mapping = {k: v for k, v in row.items() if v is not None}
                return plan.expression.evaluate_truth(mapping)

            joined = joined.select(keep)
        return joined

    def visit_union(self, plan: UnionNode, metrics: ExecutionMetrics) -> Any:
        left = self._execute(plan.left, metrics)
        right = self._execute(plan.right, metrics)
        left, right = self._align_join_inputs(left, right)
        return left.union(right)

    def visit_filter(self, plan: FilterNode, metrics: ExecutionMetrics) -> Any:
        child = self._execute(plan.child, metrics)
        if isinstance(child, ColumnBatch):
            batch = self._filter_batch(plan, child)
            if batch is not None:
                return batch
            child = child.to_relation()
        return child.select(
            lambda row: plan.expression.evaluate_truth({k: v for k, v in row.items() if v is not None})
        )

    @staticmethod
    def _filter_batch(plan: FilterNode, child: ColumnBatch) -> Optional[ColumnBatch]:
        """Run a single-variable filter on ids, memoised per distinct id.

        Multi-variable expressions (``?x < ?y``) have no batch kernel yet and
        return ``None``, telling the caller to lower to the row path.
        """
        variables = {variable.name for variable in plan.expression.variables()}
        if len(variables) != 1:
            return None
        name = next(iter(variables))
        if name not in child.columns:
            return None
        decode = child.decode
        expression = plan.expression

        def verdict(term_id: int) -> bool:
            # NULL_ID = unbound: evaluated against the empty mapping, exactly
            # like the row path omitting None values.
            mapping = {} if term_id == NULL_ID else {name: decode(term_id)}
            return expression.evaluate_truth(mapping)

        return child.select_ids(name, verdict)

    def visit_project(self, plan: ProjectNode, metrics: ExecutionMetrics) -> Any:
        child = self._execute(plan.child, metrics)
        if isinstance(child, ColumnBatch):
            return child.pad_to(plan.columns).project(plan.columns)
        return self._pad_columns(child, plan.columns).project(plan.columns)

    def visit_distinct(self, plan: DistinctNode, metrics: ExecutionMetrics) -> Any:
        return self._execute(plan.child, metrics).distinct()

    def visit_order_by(self, plan: OrderByNode, metrics: ExecutionMetrics) -> Relation:
        return self._lower(self._execute(plan.child, metrics)).order_by(plan.keys)

    def visit_limit(self, plan: LimitNode, metrics: ExecutionMetrics) -> Any:
        child = plan.child
        if child.is_sort and plan.limit is not None:
            # ORDER BY + LIMIT fuse into a heap-based top-k: the sort node is
            # skipped entirely and only ``limit + offset`` rows are kept.
            start = time.perf_counter()
            rows = self._lower(self._execute(child.child, metrics))
            result = rows.top_k(child.keys, plan.limit, plan.offset)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self.last_node_stats[id(child)] = NodeExecution(
                rows=len(result), elapsed_ms=elapsed_ms
            )
            return result
        return self._execute(child, metrics).limit(plan.limit, plan.offset)

    def visit_aggregate(self, plan: AggregateNode, metrics: ExecutionMetrics) -> Relation:
        child = self._lower(self._execute(plan.child, metrics))
        needed = list(plan.group_keys) + [
            spec.column for spec in plan.aggregates if spec.column is not None
        ]
        return self._pad_columns(child, needed).aggregate(plan.group_keys, plan.aggregates)

    @staticmethod
    def _pad_columns(relation: Relation, columns) -> Relation:
        """Add missing columns as all-``None`` (unbound variables)."""
        missing = [c for c in columns if c not in relation.columns]
        if not missing:
            return relation
        padded_columns = list(relation.columns) + missing
        return Relation(
            padded_columns,
            (row + tuple(None for _ in missing) for row in relation.rows),
        )

    # ------------------------------------------------------------------ #
    # Physical join hooks.  The serial executor joins in-process; the
    # partitioned runtime (repro.engine.runtime) overrides these to apply a
    # shuffle or broadcast strategy across a worker pool.
    # ------------------------------------------------------------------ #
    def _natural_join(
        self, plan: NaturalJoinNode, left: Relation, right: Relation, metrics: ExecutionMetrics
    ) -> Relation:
        start = time.perf_counter()
        result = left.natural_join(right, metrics)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        metrics.record_critical_path(elapsed_ms)
        self._observe("s2rdf_join_critical_path_ms", elapsed_ms)
        return result

    def _left_outer_join(
        self, plan: LeftOuterJoinNode, left: Relation, right: Relation, metrics: ExecutionMetrics
    ) -> Relation:
        start = time.perf_counter()
        result = left.left_outer_join(right, metrics)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        metrics.record_critical_path(elapsed_ms)
        self._observe("s2rdf_join_critical_path_ms", elapsed_ms)
        return result
