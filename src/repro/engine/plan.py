"""Plan execution against a catalog (the native in-process engine).

The plan IR itself lives in :mod:`repro.engine.ops` (and is re-exported here
for backwards compatibility).  :class:`PlanExecutor` is the serial engine: an
:class:`~repro.engine.ops.OperationVisitor` whose ``visit_*`` hooks evaluate
each operator against a :class:`~repro.engine.catalog.Catalog`, recording
:class:`~repro.engine.metrics.ExecutionMetrics` and per-node observations for
``explain_analyze``.  The partitioned runtime subclasses it and overrides the
physical join hooks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.engine.catalog import Catalog
from repro.engine.metrics import ExecutionMetrics
from repro.engine.ops import (  # noqa: F401  (re-exported compatibility surface)
    AggregateNode,
    AggregateSpec,
    BinaryOperation,
    DistinctNode,
    EmptyNode,
    FilterNode,
    LeafOperation,
    LeftOuterJoinNode,
    LimitNode,
    NaturalJoinNode,
    Operation,
    OperationVisitor,
    OrderByNode,
    PlanNode,
    ProjectNode,
    SubqueryNode,
    TableScanNode,
    UnaryOperation,
    UnionNode,
    _indent,
    _sql_value,
    count_joins,
    plan_depth,
)
from repro.engine.relation import Relation
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass
class NodeExecution:
    """Observed execution of one plan node (keyed by ``id(node)``).

    ``elapsed_ms`` is *cumulative*: it includes the node's children, because
    operators materialize bottom-up inside their parent's frame.  Renderers
    (``explain_analyze``) subtract child times for self-time displays.
    """

    rows: int
    elapsed_ms: float


def _node_span_name(plan: Operation) -> str:
    if plan.is_scan:
        return f"scan {plan.table_name}"
    return type(plan).__name__.removesuffix("Node")


class PlanExecutor(OperationVisitor):
    """Executes logical plans against a catalog.

    Every operator is wrapped in a tracer span (no-op unless the tracer is
    enabled) and records a :class:`NodeExecution` into ``last_node_stats``,
    which ``explain_analyze`` reads to annotate the plan with observed rows
    and elapsed time per operator.
    """

    def __init__(
        self,
        catalog: Catalog,
        tracer: Optional[Tracer] = None,
        metrics_registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.catalog = catalog
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = metrics_registry
        #: Per-node observations of the most recently executed plan.
        self.last_node_stats: Dict[int, NodeExecution] = {}

    def execute(self, plan: Operation, metrics: Optional[ExecutionMetrics] = None) -> Relation:
        metrics = metrics if metrics is not None else ExecutionMetrics()
        self.last_node_stats = {}
        result = self._execute(plan, metrics)
        metrics.output_tuples = len(result)
        return result

    def _observe(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.observe(name, value)

    def _record_scan(self, table_name: str, scan, metrics: ExecutionMetrics) -> None:
        """Record a scan; store-backed scans also report segment pruning.

        An instance method (not static) so the adaptive runtime can override
        it to feed observed table cardinalities back into the catalog.
        """
        metrics.record_scan(table_name, scan.rows_scanned)
        if scan.segments_scanned or scan.segments_pruned:
            metrics.record_segment_scan(scan.segments_scanned, scan.segments_pruned)
            if scan.segments_pruned:
                # Pruning decision, visible on the scan's span timeline.
                self.tracer.current().event(
                    "segment-pruning",
                    table=table_name,
                    segments_scanned=scan.segments_scanned,
                    segments_pruned=scan.segments_pruned,
                )

    # ------------------------------------------------------------------ #
    def _execute(self, plan: Operation, metrics: ExecutionMetrics) -> Relation:
        """Execute ``plan`` inside a span, recording per-node observations."""
        with self.tracer.span(_node_span_name(plan), category="operator") as span:
            start = time.perf_counter()
            result = self.visit(plan, metrics)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            span.set(rows=len(result))
        self.last_node_stats[id(plan)] = NodeExecution(rows=len(result), elapsed_ms=elapsed_ms)
        return result

    # ------------------------------------------------------------------ #
    # Operator evaluation: one visitor hook per IR node.
    # ------------------------------------------------------------------ #
    def visit_empty(self, plan: EmptyNode, metrics: ExecutionMetrics) -> Relation:
        return Relation.empty(plan.columns)

    def visit_table_scan(self, plan: TableScanNode, metrics: ExecutionMetrics) -> Relation:
        scan = self.catalog.scan(plan.table_name, columns=plan.columns)
        self._record_scan(plan.table_name, scan, metrics)
        relation = scan.relation
        return relation.project(plan.columns) if plan.columns != relation.columns else relation

    def visit_subquery(self, plan: SubqueryNode, metrics: ExecutionMetrics) -> Relation:
        columns = [column for column, _ in plan.projections]
        scan = self.catalog.scan(
            plan.table_name,
            columns=columns,
            conditions=dict(plan.conditions) if plan.conditions else None,
        )
        self._record_scan(plan.table_name, scan, metrics)
        aliases = {column: alias for column, alias in plan.projections}
        return scan.relation.project(columns).rename(aliases)

    def visit_natural_join(self, plan: NaturalJoinNode, metrics: ExecutionMetrics) -> Relation:
        left = self._execute(plan.left, metrics)
        right = self._execute(plan.right, metrics)
        return self._natural_join(plan, left, right, metrics)

    def visit_left_outer_join(self, plan: LeftOuterJoinNode, metrics: ExecutionMetrics) -> Relation:
        left = self._execute(plan.left, metrics)
        right = self._execute(plan.right, metrics)
        joined = self._left_outer_join(plan, left, right, metrics)
        if plan.expression is not None:
            right_only = set(plan.right.output_columns()) - set(plan.left.output_columns())

            def keep(row: Dict[str, Any]) -> bool:
                # The OPTIONAL filter only applies when the optional part matched.
                if all(row.get(c) is None for c in right_only):
                    return True
                mapping = {k: v for k, v in row.items() if v is not None}
                return plan.expression.evaluate_truth(mapping)

            joined = joined.select(keep)
        return joined

    def visit_union(self, plan: UnionNode, metrics: ExecutionMetrics) -> Relation:
        left = self._execute(plan.left, metrics)
        right = self._execute(plan.right, metrics)
        return left.union(right)

    def visit_filter(self, plan: FilterNode, metrics: ExecutionMetrics) -> Relation:
        child = self._execute(plan.child, metrics)
        return child.select(
            lambda row: plan.expression.evaluate_truth({k: v for k, v in row.items() if v is not None})
        )

    def visit_project(self, plan: ProjectNode, metrics: ExecutionMetrics) -> Relation:
        child = self._execute(plan.child, metrics)
        return self._pad_columns(child, plan.columns).project(plan.columns)

    def visit_distinct(self, plan: DistinctNode, metrics: ExecutionMetrics) -> Relation:
        return self._execute(plan.child, metrics).distinct()

    def visit_order_by(self, plan: OrderByNode, metrics: ExecutionMetrics) -> Relation:
        return self._execute(plan.child, metrics).order_by(plan.keys)

    def visit_limit(self, plan: LimitNode, metrics: ExecutionMetrics) -> Relation:
        return self._execute(plan.child, metrics).limit(plan.limit, plan.offset)

    def visit_aggregate(self, plan: AggregateNode, metrics: ExecutionMetrics) -> Relation:
        child = self._execute(plan.child, metrics)
        needed = list(plan.group_keys) + [
            spec.column for spec in plan.aggregates if spec.column is not None
        ]
        return self._pad_columns(child, needed).aggregate(plan.group_keys, plan.aggregates)

    @staticmethod
    def _pad_columns(relation: Relation, columns) -> Relation:
        """Add missing columns as all-``None`` (unbound variables)."""
        missing = [c for c in columns if c not in relation.columns]
        if not missing:
            return relation
        padded_columns = list(relation.columns) + missing
        return Relation(
            padded_columns,
            (row + tuple(None for _ in missing) for row in relation.rows),
        )

    # ------------------------------------------------------------------ #
    # Physical join hooks.  The serial executor joins in-process; the
    # partitioned runtime (repro.engine.runtime) overrides these to apply a
    # shuffle or broadcast strategy across a worker pool.
    # ------------------------------------------------------------------ #
    def _natural_join(
        self, plan: NaturalJoinNode, left: Relation, right: Relation, metrics: ExecutionMetrics
    ) -> Relation:
        start = time.perf_counter()
        result = left.natural_join(right, metrics)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        metrics.record_critical_path(elapsed_ms)
        self._observe("s2rdf_join_critical_path_ms", elapsed_ms)
        return result

    def _left_outer_join(
        self, plan: LeftOuterJoinNode, left: Relation, right: Relation, metrics: ExecutionMetrics
    ) -> Relation:
        start = time.perf_counter()
        result = left.left_outer_join(right, metrics)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        metrics.record_critical_path(elapsed_ms)
        self._observe("s2rdf_join_critical_path_ms", elapsed_ms)
        return result
