"""Executable SQLite backend: lowers plan IR trees to parameterized SQL.

The native engine (:mod:`repro.engine.plan`) evaluates plans in-process over
:class:`~repro.engine.relation.Relation` objects.  This module is the second
engine over the same IR: a :class:`~repro.engine.ops.OperationVisitor` that
lowers each operator to a SQL fragment, plus a :class:`SqliteExecutor` that
loads the referenced catalog tables into an in-memory ``sqlite3`` database
and runs the lowered statement.  It exists to *cross-check* the native
operators — the differential harness asserts bag-equality between both
engines on generated workloads — so fidelity to native semantics trumps SQL
elegance throughout.

Encoding
--------
RDF terms are stored as their N3 surface text (``IRI.n3()`` is injective, so
SQL equality/grouping/DISTINCT on the text column coincides with term
identity), unbound variables as ``NULL``.  Result cells are decoded back via
:func:`~repro.rdf.terms.term_from_string`; aggregate outputs are plain
numbers in both engines and pass through unchanged.

Expression semantics
--------------------
SPARQL filter evaluation errors (unbound variable, type mismatch, division
by zero) must reject the row, exactly like
:meth:`~repro.sparql.expressions.Expression.evaluate_truth`.  The lowering
maps "error" to SQL ``NULL``: registered UDFs (``rdf_value``, ``rdf_cmp``,
``rdf_arith``, ...) return ``NULL`` on any error or ``NULL`` input, and every
truth position is wrapped in ``COALESCE(rdf_ebv(...), 0)`` so errors become
``FALSE``.  Ordering matches :meth:`Relation.order_by`: each key is rendered
as ``(col IS NULL) dir, col dir`` — N3 text sorts like the native
``_sortable`` key (numbers first, then terms by their N3 text) because
SQLite orders numbers before text and compares text bytewise (UTF-8 byte
order is code-point order).
"""

from __future__ import annotations

import re
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.catalog import Catalog
from repro.engine.metrics import ExecutionMetrics
from repro.engine.ops import (
    AggregateNode,
    AggregateSpec,
    DistinctNode,
    EmptyNode,
    FilterNode,
    LeftOuterJoinNode,
    LimitNode,
    NaturalJoinNode,
    Operation,
    OperationVisitor,
    OrderByNode,
    ProjectNode,
    SubqueryNode,
    TableScanNode,
    UnionNode,
)
from repro.engine.plan import NodeExecution
from repro.engine.relation import Relation, aggregate_value
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.rdf.terms import Term, term_from_string
from repro.sparql.expressions import (
    Arithmetic,
    And,
    Bound,
    Comparison,
    Expression,
    ExpressionVisitor,
    FunctionCall,
    Not,
    Or,
    TermExpression,
    VariableExpression,
    _ARITHMETIC_OPS,
    _COMPARISON_OPS,
    _term_value,
)

__all__ = ["SqliteExecutor", "register_rdf_functions", "to_sqlite_sql"]


def _quote(name: str) -> str:
    """Quote an identifier for SQLite (tables, columns, aliases)."""
    return '"' + str(name).replace('"', '""') + '"'


def _encode(value: Any) -> Any:
    """Encode a relation cell for storage: terms as N3 text, None as NULL."""
    if value is None:
        return None
    if isinstance(value, Term):
        return value.n3()
    return value


def _decode(value: Any) -> Any:
    """Decode a result cell: N3 text back to a term, numbers unchanged."""
    if isinstance(value, str):
        return term_from_string(value)
    return value


# ---------------------------------------------------------------------- #
# Registered SQL functions.  Scalar UDFs receive already-evaluated SQL
# values; ``NULL`` stands for "evaluation error" and is propagated.
# ---------------------------------------------------------------------- #
def _udf_value(encoded: Any) -> Any:
    """``rdf_value(col)``: the comparable Python value of a stored term."""
    if encoded is None:
        return None
    decoded = _decode(encoded)
    if isinstance(decoded, Term):
        return _term_value(decoded)
    return decoded


def _udf_ebv(value: Any) -> Optional[int]:
    """Effective boolean value; idempotent on 0/1/NULL truth renders."""
    if value is None:
        return None
    return int(bool(value))


def _udf_cmp(operator: str, left: Any, right: Any) -> Optional[int]:
    if left is None or right is None:
        return None
    try:
        return int(_COMPARISON_OPS[operator](left, right))
    except TypeError:
        return None  # mixed-type order comparison errors, as in evaluate()


def _udf_arith(operator: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    try:
        return _ARITHMETIC_OPS[operator](left, right)
    except (TypeError, ZeroDivisionError):
        return None


def _udf_regex(*args: Any) -> Optional[int]:
    if len(args) < 2 or any(argument is None for argument in args):
        return None
    flags = 0
    if len(args) > 2 and "i" in str(args[2]):
        flags = re.IGNORECASE
    return int(re.search(str(args[1]), str(args[0]), flags) is not None)


def _udf_str(value: Any) -> Optional[str]:
    if value is None:
        return None
    return str(value)


class _RdfAggregate:
    """Base of the custom aggregates; defers to :func:`aggregate_value`.

    ``NULL`` arguments are skipped in ``step`` (native aggregation excludes
    ``None`` cells) and ``DISTINCT`` is left to SQLite, which dedups the
    encoded N3 text — the same equivalence classes as native term identity.
    """

    function = ""

    def __init__(self) -> None:
        self._values: List[Any] = []

    def step(self, value: Any) -> None:
        if value is not None:
            self._values.append(value)

    def finalize(self) -> Any:
        decoded = [_decode(value) for value in self._values]
        return _encode(aggregate_value(self.function, decoded, False))


class _RdfSum(_RdfAggregate):
    function = "sum"


class _RdfAvg(_RdfAggregate):
    function = "avg"


class _RdfMin(_RdfAggregate):
    function = "min"


class _RdfMax(_RdfAggregate):
    function = "max"


class _RdfCountDistinctRows:
    """``COUNT(DISTINCT *)``: distinct full rows, ``NULL`` cells included."""

    def __init__(self) -> None:
        self._rows: Set[Tuple[Any, ...]] = set()

    def step(self, *values: Any) -> None:
        self._rows.add(values)

    def finalize(self) -> int:
        return len(self._rows)


def register_rdf_functions(connection: sqlite3.Connection) -> None:
    """Install the RDF helper functions on a SQLite connection."""
    connection.create_function("rdf_value", 1, _udf_value, deterministic=True)
    connection.create_function("rdf_ebv", 1, _udf_ebv, deterministic=True)
    connection.create_function("rdf_cmp", 3, _udf_cmp, deterministic=True)
    connection.create_function("rdf_arith", 3, _udf_arith, deterministic=True)
    connection.create_function("rdf_regex", -1, _udf_regex, deterministic=True)
    connection.create_function("rdf_str", 1, _udf_str, deterministic=True)
    connection.create_aggregate("rdf_sum", 1, _RdfSum)
    connection.create_aggregate("rdf_avg", 1, _RdfAvg)
    connection.create_aggregate("rdf_min", 1, _RdfMin)
    connection.create_aggregate("rdf_max", 1, _RdfMax)
    connection.create_aggregate("rdf_count_distinct_rows", -1, _RdfCountDistinctRows)


# ---------------------------------------------------------------------- #
# Expression lowering.
# ---------------------------------------------------------------------- #
class _SqliteExpression(ExpressionVisitor):
    """Renders a filter expression as a SQL *value* (term-value domain).

    Every render yields the same Python value ``evaluate()`` would produce,
    or ``NULL`` where ``evaluate()`` would raise.  Truth positions wrap the
    value in ``COALESCE(rdf_ebv(...), 0)`` — since ``rdf_ebv`` is idempotent
    on 0/1/NULL, one value renderer covers both value and truth contexts.
    """

    def __init__(self, columns: Sequence[str], params: List[Any]) -> None:
        self.columns = set(columns)
        self.params = params

    def value(self, expression: Expression) -> str:
        return self.visit(expression)

    def truth(self, expression: Expression) -> str:
        return f"COALESCE(rdf_ebv({self.value(expression)}), 0)"

    # -- leaves ---------------------------------------------------------- #
    def visit_variable(self, expression: VariableExpression) -> str:
        name = expression.variable.name
        if name in self.columns:
            return f"rdf_value({_quote(name)})"
        return "NULL"  # unbound variable: evaluation error

    def visit_term(self, expression: TermExpression) -> str:
        self.params.append(_term_value(expression.term))
        return "?"

    # -- operators ------------------------------------------------------- #
    def visit_comparison(self, expression: Comparison) -> str:
        left = self.value(expression.left)
        right = self.value(expression.right)
        return f"rdf_cmp('{expression.operator}', {left}, {right})"

    def visit_arithmetic(self, expression: Arithmetic) -> str:
        left = self.value(expression.left)
        right = self.value(expression.right)
        return f"rdf_arith('{expression.operator}', {left}, {right})"

    def visit_and(self, expression: And) -> str:
        return f"({self.truth(expression.left)} AND {self.truth(expression.right)})"

    def visit_or(self, expression: Or) -> str:
        return f"({self.truth(expression.left)} OR {self.truth(expression.right)})"

    def visit_not(self, expression: Not) -> str:
        return f"(NOT {self.truth(expression.operand)})"

    def visit_bound(self, expression: Bound) -> str:
        name = expression.variable.name
        if name in self.columns:
            return f"({_quote(name)} IS NOT NULL)"
        return "0"

    def visit_function_call(self, expression: FunctionCall) -> str:
        name = expression.name.lower()
        if name == "regex" and len(expression.arguments) >= 2:
            rendered = ", ".join(self.value(a) for a in expression.arguments[:3])
            return f"rdf_regex({rendered})"
        if name == "str" and expression.arguments:
            return f"rdf_str({self.value(expression.arguments[0])})"
        if name == "bound" and expression.arguments:
            argument = expression.arguments[0]
            if isinstance(argument, VariableExpression):
                return self.visit_bound(Bound(argument.variable))
        return "NULL"  # unsupported function: evaluation error


# ---------------------------------------------------------------------- #
# Plan lowering.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _Fragment:
    """A lowered subtree: SQL text, bind parameters, output schema.

    ``order`` is the *pending* sort: ``ORDER BY`` inside a subquery does not
    survive SQL operators above it (``SELECT DISTINCT`` in particular), so
    sort keys propagate up the fragments and are applied where they matter —
    at the first ``LIMIT`` above them, and once more at the statement root.
    """

    sql: str
    params: Tuple[Any, ...]
    columns: Tuple[str, ...]
    order: Tuple[Tuple[str, bool], ...] = ()


def _render_order(keys: Sequence[Tuple[str, bool]]) -> str:
    if not keys:
        return ""
    rendered = []
    for column, ascending in keys:
        direction = "ASC" if ascending else "DESC"
        # Mirrors Relation.order_by's (value is None, _sortable(value)) key:
        # NULLs last ascending, first descending.
        rendered.append(f"({_quote(column)} IS NULL) {direction}, {_quote(column)} {direction}")
    return " ORDER BY " + ", ".join(rendered)


class _SqliteLowering(OperationVisitor):
    """Lowers an operation tree to a :class:`_Fragment` bottom-up."""

    # -- leaves ---------------------------------------------------------- #
    def visit_table_scan(self, node: TableScanNode) -> _Fragment:
        select = ", ".join(_quote(c) for c in node.columns) or "NULL"
        return _Fragment(
            f"SELECT {select} FROM {_quote(node.table_name)}", (), node.columns
        )

    def visit_subquery(self, node: SubqueryNode) -> _Fragment:
        select = ", ".join(
            f"{_quote(column)} AS {_quote(alias)}" for column, alias in node.projections
        )
        sql = f"SELECT {select} FROM {_quote(node.table_name)}"
        params: List[Any] = []
        if node.conditions:
            predicates = []
            for column, value in node.conditions:
                predicates.append(f"{_quote(column)} = ?")
                params.append(_encode(value))
            sql += " WHERE " + " AND ".join(predicates)
        return _Fragment(sql, tuple(params), node.output_columns())

    def visit_empty(self, node: EmptyNode) -> _Fragment:
        select = ", ".join(f"NULL AS {_quote(c)}" for c in node.columns) or "NULL"
        return _Fragment(f"SELECT {select} WHERE 0", (), node.columns)

    # -- joins ----------------------------------------------------------- #
    def _join(self, node, keyword: str) -> Tuple[_Fragment, Tuple[str, ...]]:
        left = self.visit(node.left)
        right = self.visit(node.right)
        shared = tuple(c for c in left.columns if c in right.columns)
        select = [f"l.{_quote(c)} AS {_quote(c)}" for c in left.columns]
        select += [
            f"r.{_quote(c)} AS {_quote(c)}" for c in right.columns if c not in shared
        ]
        # IS is SQLite's null-safe equality; the native hash join matches
        # None keys against None keys, so plain = would diverge.
        on = " AND ".join(f"l.{_quote(c)} IS r.{_quote(c)}" for c in shared) or "1"
        columns = left.columns + tuple(c for c in right.columns if c not in shared)
        sql = (
            f"SELECT {', '.join(select)} FROM ({left.sql}) AS l "
            f"{keyword} ({right.sql}) AS r ON {on}"
        )
        fragment = _Fragment(sql, left.params + right.params, columns)
        return fragment, tuple(c for c in right.columns if c not in left.columns)

    def visit_natural_join(self, node: NaturalJoinNode) -> _Fragment:
        fragment, _ = self._join(node, "JOIN")
        return fragment

    def visit_left_outer_join(self, node: LeftOuterJoinNode) -> _Fragment:
        fragment, right_only = self._join(node, "LEFT JOIN")
        if node.expression is None or not right_only:
            # With no right-only column the native filter keeps every row
            # (it cannot distinguish matched from unmatched rows).
            return fragment
        expression_params: List[Any] = []
        renderer = _SqliteExpression(fragment.columns, expression_params)
        predicate = renderer.truth(node.expression)
        null_test = " AND ".join(f"{_quote(c)} IS NULL" for c in right_only)
        sql = (
            f"SELECT * FROM ({fragment.sql}) AS t "
            f"WHERE ({null_test}) OR {predicate}"
        )
        return _Fragment(sql, fragment.params + tuple(expression_params), fragment.columns)

    def visit_union(self, node: UnionNode) -> _Fragment:
        left = self.visit(node.left)
        right = self.visit(node.right)
        columns = left.columns + tuple(c for c in right.columns if c not in left.columns)

        def side(fragment: _Fragment) -> str:
            items = [
                f"{_quote(c)} AS {_quote(c)}" if c in fragment.columns else f"NULL AS {_quote(c)}"
                for c in columns
            ]
            select = ", ".join(items) or "NULL"
            return f"SELECT {select} FROM ({fragment.sql}) AS t"

        sql = f"{side(left)} UNION ALL {side(right)}"
        return _Fragment(sql, left.params + right.params, columns)

    # -- unary operators -------------------------------------------------- #
    def visit_filter(self, node: FilterNode) -> _Fragment:
        child = self.visit(node.child)
        expression_params: List[Any] = []
        renderer = _SqliteExpression(child.columns, expression_params)
        predicate = renderer.truth(node.expression)
        sql = f"SELECT * FROM ({child.sql}) AS t WHERE {predicate}"
        return _Fragment(sql, child.params + tuple(expression_params), child.columns, child.order)

    def visit_project(self, node: ProjectNode) -> _Fragment:
        child = self.visit(node.child)
        unique: List[str] = []
        for column in node.columns:
            if column not in unique:
                unique.append(column)
        items = [
            f"{_quote(c)} AS {_quote(c)}" if c in child.columns else f"NULL AS {_quote(c)}"
            for c in unique
        ]
        select = ", ".join(items) or "NULL"
        # Sort keys survive only while their columns do; truncate at the
        # first dropped key, as any key after it can no longer break ties
        # the same way.
        order: List[Tuple[str, bool]] = []
        for column, ascending in child.order:
            if column not in unique:
                break
            order.append((column, ascending))
        sql = f"SELECT {select} FROM ({child.sql}) AS t"
        return _Fragment(sql, child.params, tuple(unique), tuple(order))

    def visit_distinct(self, node: DistinctNode) -> _Fragment:
        child = self.visit(node.child)
        sql = f"SELECT DISTINCT * FROM ({child.sql}) AS t"
        return _Fragment(sql, child.params, child.columns, child.order)

    def visit_order_by(self, node: OrderByNode) -> _Fragment:
        # Pure pass-through: the sort becomes pending and is rendered where
        # it is observable (LIMIT and the statement root).
        child = self.visit(node.child)
        return _Fragment(child.sql, child.params, child.columns, tuple(node.keys) + child.order)

    def visit_limit(self, node: LimitNode) -> _Fragment:
        child = self.visit(node.child)
        order_clause = _render_order(child.order)
        sql = f"SELECT * FROM ({child.sql}) AS t{order_clause} LIMIT ? OFFSET ?"
        limit = -1 if node.limit is None else node.limit
        return _Fragment(
            sql, child.params + (limit, node.offset), child.columns, child.order
        )

    def visit_aggregate(self, node: AggregateNode) -> _Fragment:
        child = self.visit(node.child)
        items = []
        for key in node.group_keys:
            reference = _quote(key) if key in child.columns else "NULL"
            items.append(f"{reference} AS {_quote(key)}")
        for spec in node.aggregates:
            items.append(f"{self._aggregate_call(spec, child.columns)} AS {_quote(spec.alias)}")
        select = ", ".join(items) or "NULL"
        group = ""
        if node.group_keys:
            group = " GROUP BY " + ", ".join(_quote(k) for k in node.group_keys)
        sql = f"SELECT {select} FROM ({child.sql}) AS t{group}"
        return _Fragment(sql, child.params, node.output_columns())

    @staticmethod
    def _aggregate_call(spec: AggregateSpec, columns: Tuple[str, ...]) -> str:
        if spec.function == "count" and spec.column is None and spec.distinct:
            references = ", ".join(_quote(c) for c in columns) or "NULL"
            call = f"rdf_count_distinct_rows({references})"
            # Custom aggregates yield NULL over zero rows (finalize is never
            # consulted); the implicit empty group must still count 0.
            return f"CASE WHEN COUNT(*) = 0 THEN 0 ELSE {call} END"
        reference = "NULL"
        if spec.column is not None and spec.column in columns:
            reference = _quote(spec.column)
        if spec.function == "count":
            if spec.column is None:
                return "COUNT(*)"
            return f"COUNT(DISTINCT {reference})" if spec.distinct else f"COUNT({reference})"
        argument = f"DISTINCT {reference}" if spec.distinct else reference
        call = f"rdf_{spec.function}({argument})"
        if spec.function in ("sum", "avg"):
            # SPARQL sums/averages the empty group to 0, never NULL.
            return f"CASE WHEN COUNT(*) = 0 THEN 0 ELSE {call} END"
        return call


_LOWERING = _SqliteLowering()


def to_sqlite_sql(plan: Operation) -> Tuple[str, Tuple[Any, ...]]:
    """Lower a plan to one executable SQLite statement plus bind parameters."""
    fragment = _LOWERING.visit(plan)
    sql = fragment.sql
    if fragment.order:
        sql = f"SELECT * FROM ({sql}) AS t{_render_order(fragment.order)}"
    return sql, fragment.params


# ---------------------------------------------------------------------- #
# The executor.
# ---------------------------------------------------------------------- #
class SqliteExecutor:
    """Executes logical plans by lowering them to SQL on in-memory SQLite.

    Catalog tables referenced by a plan's scan nodes are loaded lazily on
    first use (terms encoded as N3 text) and cached for the lifetime of the
    connection; :meth:`invalidate` drops the cache after dataset updates.
    The public surface mirrors :class:`~repro.engine.plan.PlanExecutor`
    (``execute``/``last_node_stats``) so the session can swap engines.
    """

    def __init__(
        self,
        catalog: Catalog,
        tracer: Optional[Tracer] = None,
        metrics_registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.catalog = catalog
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = metrics_registry
        self._connection: Optional[sqlite3.Connection] = None
        self._loaded: Dict[str, int] = {}
        #: Observations of the most recent statement, keyed by ``id(node)``.
        #: SQLite executes the whole statement at once, so only the root
        #: node carries an observation.
        self.last_node_stats: Dict[int, NodeExecution] = {}
        #: The last lowered statement, for EXPLAIN-style introspection.
        self.last_sql: Optional[str] = None

    # ------------------------------------------------------------------ #
    def connection(self) -> sqlite3.Connection:
        if self._connection is None:
            # ``check_same_thread=False``: each executor instance serves one
            # thread's queries, but the owning session invalidates and closes
            # every instance from whichever thread mutates or closes the
            # store (always with no query in flight on this connection).
            self._connection = sqlite3.connect(":memory:", check_same_thread=False)
            register_rdf_functions(self._connection)
        return self._connection

    def invalidate(self) -> None:
        """Drop all loaded tables (call after the underlying store changed)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None
        self._loaded.clear()

    def close(self) -> None:
        self.invalidate()

    # ------------------------------------------------------------------ #
    def _ensure_table(self, name: str) -> None:
        if name in self._loaded:
            return
        relation = self.catalog.table(name)
        connection = self.connection()
        # Untyped columns get no affinity, so N3 text is stored verbatim.
        columns = ", ".join(_quote(c) for c in relation.columns) or _quote("__void")
        connection.execute(f"CREATE TABLE {_quote(name)} ({columns})")
        if relation.columns:
            placeholders = ", ".join("?" for _ in relation.columns)
            connection.executemany(
                f"INSERT INTO {_quote(name)} VALUES ({placeholders})",
                (tuple(_encode(value) for value in row) for row in relation.rows),
            )
        self._loaded[name] = len(relation)

    def execute(self, plan: Operation, metrics: Optional[ExecutionMetrics] = None) -> Relation:
        metrics = metrics if metrics is not None else ExecutionMetrics()
        self.last_node_stats = {}
        scans = [node for node in plan.walk() if node.is_scan]
        with self.tracer.span("sqlite-load", category="operator", tables=len(scans)):
            for node in scans:
                self._ensure_table(node.table_name)
        fragment = _LOWERING.visit(plan)
        sql = fragment.sql
        if fragment.order:
            sql = f"SELECT * FROM ({sql}) AS t{_render_order(fragment.order)}"
        self.last_sql = sql
        start = time.perf_counter()
        with self.tracer.span("sqlite-execute", category="operator") as span:
            cursor = self.connection().execute(sql, fragment.params)
            columns = fragment.columns
            width = len(columns)
            rows = [tuple(_decode(value) for value in row[:width]) for row in cursor.fetchall()]
            span.set(rows=len(rows))
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        for node in scans:
            metrics.record_scan(node.table_name, self._loaded[node.table_name])
        relation = Relation(columns, rows)
        metrics.output_tuples = len(relation)
        self.last_node_stats[id(plan)] = NodeExecution(rows=len(relation), elapsed_ms=elapsed_ms)
        if self.registry is not None:
            self.registry.observe("s2rdf_sqlite_statement_ms", elapsed_ms)
        return relation
