"""Cluster cost models.

The evaluation compares systems whose *architectures* differ: in-memory MPP
execution (Spark SQL, Impala), batch MapReduce execution (SHARD, PigSPARQL),
adaptive centralized/distributed execution over HBase (H2RDF+) and a
centralized single-node store (Virtuoso).  The paper attributes the runtime
differences to the architectural constants — per-job latencies, scan and
shuffle throughput, single-node limits — on top of how much data each system
has to read, shuffle and compare.

Each cost model converts :class:`~repro.engine.metrics.ExecutionMetrics` into
a simulated runtime in milliseconds.  Absolute values are calibrated to be in
the same ballpark as the paper's cluster, but the point of the models is to
preserve the *shape* of the comparison: which system wins, by roughly what
factor, and where crossovers happen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.metrics import ExecutionMetrics


@dataclass(frozen=True)
class ClusterConfig:
    """Shared description of the simulated cluster (paper Sec. 7 setup)."""

    worker_nodes: int = 9
    cores_per_node: int = 6
    memory_per_executor_gb: int = 20
    network_gbit: float = 1.0

    @property
    def total_cores(self) -> int:
        return self.worker_nodes * self.cores_per_node


class CostModel:
    """Base class: converts execution metrics to a simulated runtime."""

    name = "abstract"

    def runtime_ms(self, metrics: ExecutionMetrics) -> float:
        raise NotImplementedError


@dataclass
class SparkCostModel(CostModel):
    """In-memory MPP execution (Spark SQL; also used for Impala-like engines).

    Work is spread across all cores; the dominant costs are scanning input
    tuples (columnar, in memory), shuffling tuples across the network for
    joins and probing hash tables.  A per-query driver overhead plus a small
    per-stage scheduling latency provide the latency floor the paper observes
    (a few hundred milliseconds even for tiny queries).
    """

    cluster: ClusterConfig = ClusterConfig()
    query_overhead_ms: float = 90.0
    stage_overhead_ms: float = 18.0
    scan_ns_per_tuple: float = 220.0
    shuffle_ns_per_tuple: float = 900.0
    compare_ns: float = 65.0
    result_ns_per_tuple: float = 120.0
    name: str = "spark"

    def shuffle_ns(self, metrics: ExecutionMetrics) -> float:
        """Network time spent exchanging data for joins.

        When the partitioned runtime ran, it records the *observed* exchange
        volume in bytes (shuffled plus broadcast); that volume is pushed
        through the cluster's per-node network links.  Without observed bytes
        (serial execution) the model falls back to the historical per-tuple
        shuffle estimate.
        """
        observed_bytes = metrics.shuffled_bytes + metrics.broadcast_bytes
        if observed_bytes:
            wire_ns_per_byte = 8.0 / max(self.cluster.network_gbit, 1e-6)
            return observed_bytes * wire_ns_per_byte / max(1, self.cluster.worker_nodes)
        return metrics.shuffled_tuples * self.shuffle_ns_per_tuple / max(1, self.cluster.total_cores)

    def runtime_ms(self, metrics: ExecutionMetrics) -> float:
        cores = max(1, self.cluster.total_cores)
        parallel_work_ns = (
            metrics.input_tuples * self.scan_ns_per_tuple
            + metrics.join_comparisons * self.compare_ns
            + metrics.intermediate_tuples * self.result_ns_per_tuple
        ) / cores
        serial_ns = metrics.output_tuples * self.result_ns_per_tuple / cores
        stages = metrics.stages
        return (
            self.query_overhead_ms
            + stages * self.stage_overhead_ms
            + (parallel_work_ns + self.shuffle_ns(metrics) + serial_ns) / 1e6
        )


@dataclass
class MapReduceCostModel(CostModel):
    """Batch MapReduce execution (SHARD, PigSPARQL).

    Every job pays a fixed scheduling/JVM-startup latency and all intermediate
    data is written to and read back from disk, which is why these systems
    "cannot provide interactive query runtimes" (Sec. 1) regardless of how
    little data a query touches.
    """

    cluster: ClusterConfig = ClusterConfig()
    job_overhead_ms: float = 16000.0
    scan_ns_per_tuple: float = 1500.0
    shuffle_ns_per_tuple: float = 6000.0
    compare_ns: float = 65.0
    materialize_ns_per_tuple: float = 2500.0
    name: str = "mapreduce"

    def runtime_ms(self, metrics: ExecutionMetrics, jobs: Optional[int] = None) -> float:
        cores = max(1, self.cluster.total_cores)
        job_count = jobs if jobs is not None else max(1, metrics.joins)
        work_ns = (
            metrics.input_tuples * self.scan_ns_per_tuple
            + metrics.shuffled_tuples * self.shuffle_ns_per_tuple
            + metrics.join_comparisons * self.compare_ns
            + metrics.intermediate_tuples * self.materialize_ns_per_tuple
        ) / cores
        return job_count * self.job_overhead_ms + work_ns / 1e6


@dataclass
class CentralizedCostModel(CostModel):
    """Single-node index-based execution (Virtuoso-like / H2RDF+ central mode).

    Sophisticated indexes make selective lookups cheap (no cluster latency at
    all), but all work runs on the cores of one machine and large intermediate
    or final results dominate the runtime.  A ``timeout_ms`` mirrors the
    paper's 10-hour timeout for the unbound IL-3 queries.
    """

    cores: int = 4
    query_overhead_ms: float = 4.0
    lookup_ns_per_tuple: float = 700.0
    compare_ns: float = 150.0
    result_ns_per_tuple: float = 1500.0
    warm_cache_factor: float = 0.35
    timeout_ms: Optional[float] = 36_000_000.0
    name: str = "centralized"

    def runtime_ms(self, metrics: ExecutionMetrics, warm: bool = False) -> float:
        cores = max(1, self.cores)
        work_ns = (
            metrics.input_tuples * self.lookup_ns_per_tuple
            + metrics.join_comparisons * self.compare_ns
            + (metrics.intermediate_tuples + metrics.output_tuples) * self.result_ns_per_tuple
        ) / cores
        runtime = self.query_overhead_ms + work_ns / 1e6
        if warm:
            runtime *= self.warm_cache_factor
        if self.timeout_ms is not None and runtime > self.timeout_ms:
            return float("inf")
        return runtime


@dataclass
class HBaseCostModel(CostModel):
    """Adaptive HBase execution (H2RDF+).

    Selective queries are answered by centralized merge joins over HBase range
    scans; non-selective queries fall back to MapReduce jobs.  The decision is
    made from the estimated input size, mirroring H2RDF+'s cost-based
    adaptive execution.
    """

    centralized_threshold_tuples: int = 200_000
    central: CentralizedCostModel = None  # type: ignore[assignment]
    distributed: MapReduceCostModel = None  # type: ignore[assignment]
    name: str = "hbase-adaptive"

    def __post_init__(self) -> None:
        if self.central is None:
            self.central = CentralizedCostModel(query_overhead_ms=40.0, lookup_ns_per_tuple=1200.0)
        if self.distributed is None:
            self.distributed = MapReduceCostModel(job_overhead_ms=12000.0)

    def is_centralized(self, metrics: ExecutionMetrics) -> bool:
        return metrics.input_tuples <= self.centralized_threshold_tuples

    def runtime_ms(self, metrics: ExecutionMetrics) -> float:
        if self.is_centralized(metrics):
            return self.central.runtime_ms(metrics)
        return self.distributed.runtime_ms(metrics)
