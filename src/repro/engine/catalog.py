"""Table catalog with statistics.

S2RDF "collects statistics about all tables in ExtVP during the initial
creation process, most notably the selectivities (SF values) and actual sizes"
(Sec. 6.1).  The :class:`Catalog` is the shared table store: mapping builders
register tables here, the compiler consults the statistics, and the plan
executor reads the relations.

Tables come in two physical flavours: *materialised* relations held in
memory, and *stored* tables backed by the persistent columnar dataset store
(:mod:`repro.store`).  Stored tables are registered with a handle and decoded
lazily; :meth:`Catalog.scan` is the single scan entry point the plan executor
uses, so projection and equality predicates push down into the store (zone-map
and hash-bucket segment pruning) while in-memory tables keep the exact
semantics they always had.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.engine.relation import Relation


@dataclass
class ScanResult:
    """Outcome of one :meth:`Catalog.scan` call."""

    #: The scanned rows, restricted to the requested columns for store-backed
    #: tables (in-memory tables return their full schema; the executor
    #: projects, exactly as before the store existed).
    relation: Relation
    #: Rows actually read from the physical table before filtering — for a
    #: pruned store scan this is the post-pruning row count, which is the
    #: whole point of zone maps.
    rows_scanned: int
    #: Column segments decoded (store-backed scans only).
    segments_scanned: int = 0
    #: Column segments skipped via zone maps / bucket pruning.
    segments_pruned: int = 0


class StoredTableProvider:
    """Interface of a lazily-decoded table backing a catalog entry."""

    def read(self) -> Relation:  # pragma: no cover - interface
        """Decode and return the full relation."""
        raise NotImplementedError

    def scan(
        self,
        columns: Optional[Sequence[str]] = None,
        conditions: Optional[Mapping[str, Any]] = None,
    ) -> ScanResult:  # pragma: no cover - interface
        """Scan with projection and equality-predicate pushdown."""
        raise NotImplementedError

    def scan_batch(
        self,
        columns: Optional[Sequence[str]] = None,
        conditions: Optional[Mapping[str, Any]] = None,
    ) -> Optional[Any]:
        """Vectorized scan returning a ``BatchScanResult``, or ``None``.

        Providers without a batch path inherit this default; the executor
        falls back to the row :meth:`scan` when it gets ``None``.
        """
        return None


@dataclass
class TableStatistics:
    """Per-table statistics used by table selection and join ordering."""

    name: str
    row_count: int
    #: Selectivity factor relative to the underlying VP table (1.0 for VP and
    #: base tables, |ExtVP| / |VP| for ExtVP tables, 0.0 for empty tables).
    selectivity: float = 1.0
    #: Distinct subjects/objects — handy for cardinality estimates.
    distinct_subjects: int = 0
    distinct_objects: int = 0

    @property
    def is_empty(self) -> bool:
        return self.row_count == 0


class TableNotFoundError(KeyError):
    """Raised when a plan references a table the catalog does not contain."""


class Catalog:
    """Named relations plus their statistics.

    Statistics can exist without a materialised relation: the paper notes that
    S2RDF "also stores statistics about empty tables (which do not physically
    exist)" so the compiler can answer queries without running them.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Relation] = {}
        self._statistics: Dict[str, TableStatistics] = {}
        self._stored: Dict[str, StoredTableProvider] = {}
        #: Session-level observed cardinalities fed back by adaptive
        #: execution; they override static statistics during planning.
        self._observed: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        relation: Relation,
        selectivity: float = 1.0,
        materialize: bool = True,
    ) -> TableStatistics:
        """Register a relation (and derive its statistics)."""
        subjects = relation.distinct_count(relation.columns[0]) if relation.columns and relation.rows else 0
        objects = (
            relation.distinct_count(relation.columns[1])
            if len(relation.columns) > 1 and relation.rows
            else 0
        )
        statistics = TableStatistics(
            name=name,
            row_count=len(relation),
            selectivity=selectivity,
            distinct_subjects=subjects,
            distinct_objects=objects,
        )
        if materialize:
            self._tables[name] = relation
        self._statistics[name] = statistics
        # Fresh statistics are derived from the actual rows: an older
        # observation must not override them (it may describe previous data).
        self._observed.pop(name, None)
        return statistics

    def register_statistics_only(self, name: str, row_count: int, selectivity: float) -> TableStatistics:
        """Record statistics for a table that is not materialised (e.g. empty ExtVP tables)."""
        statistics = TableStatistics(name=name, row_count=row_count, selectivity=selectivity)
        self._statistics[name] = statistics
        # Like the other registration paths: newly declared statistics
        # supersede observations made against the previous incarnation.
        self._observed.pop(name, None)
        return statistics

    def register_stored(
        self, name: str, provider: StoredTableProvider, statistics: TableStatistics
    ) -> TableStatistics:
        """Register a lazily-decoded table backed by the dataset store.

        The statistics come from the store's manifest (zone-map aggregates),
        so the compiler can plan without ever decoding the table.

        Re-registration (after an incremental append or a compaction) must
        leave no trace of the previous incarnation: both the decoded-rows
        cache and the adaptive runtime's observed-cardinality cache are
        dropped here, otherwise ``table()`` would keep serving pre-append
        rows and AQE would keep planning from pre-append row counts.
        """
        self._stored[name] = provider
        self._statistics[name] = statistics
        self._tables.pop(name, None)
        self._observed.pop(name, None)
        return statistics

    def drop(self, name: str) -> None:
        self._tables.pop(name, None)
        self._statistics.pop(name, None)
        self._stored.pop(name, None)
        self._observed.pop(name, None)

    def remove_statistics(self, name: str) -> None:
        """Forget the statistics for ``name`` (the table itself survives).

        After this, planners estimate the table as *unknown* — which forces
        shuffle joins — rather than as empty.  Used by tests and benchmarks to
        simulate a catalog whose statistics were never collected; any cached
        observation is dropped too, otherwise the simulation would silently
        keep planning from the observed size.
        """
        self._statistics.pop(name, None)
        self._observed.pop(name, None)

    # ------------------------------------------------------------------ #
    # Observed cardinalities (adaptive execution feedback)
    # ------------------------------------------------------------------ #
    def record_observed(self, name: str, row_count: int) -> None:
        """Cache an observed full-table cardinality for this session.

        Adaptive execution records what scans actually returned; planners
        prefer these observations over (possibly stale) static statistics,
        so repeated queries plan from truth without a statistics rebuild.
        """
        self._observed[name] = row_count

    def observed_rows(self, name: str) -> Optional[int]:
        """The observed cardinality of ``name``, if any query scanned it."""
        return self._observed.get(name)

    def clear_observed(self) -> None:
        """Drop all observed cardinalities (e.g. after a data refresh)."""
        self._observed.clear()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._tables or name in self._stored

    def has_statistics(self, name: str) -> bool:
        return name in self._statistics

    def is_loaded(self, name: str) -> bool:
        """True when the table's rows are materialised in memory."""
        return name in self._tables

    def is_stored(self, name: str) -> bool:
        """True when the table is backed by the persistent dataset store."""
        return name in self._stored

    def table(self, name: str) -> Relation:
        relation = self._tables.get(name)
        if relation is not None:
            return relation
        provider = self._stored.get(name)
        if provider is not None:
            relation = provider.read()
            self._tables[name] = relation
            return relation
        raise TableNotFoundError(name)

    def scan(
        self,
        name: str,
        columns: Optional[Sequence[str]] = None,
        conditions: Optional[Mapping[str, Any]] = None,
    ) -> ScanResult:
        """Scan ``name`` with optional projection and equality predicates.

        Store-backed tables always answer from their column segments (the
        provider caches decoded pages), pruning whole segments via zone maps
        and — when a predicate binds the partition key — hash-bucket
        arithmetic; the reported scan counters are *logical*, so repeated
        queries see stable metrics regardless of caching.  In-memory tables
        are filtered exactly as the executor always did.
        """
        provider = self._stored.get(name)
        if provider is not None:
            return provider.scan(columns=columns, conditions=conditions)
        relation = self.table(name)
        rows_scanned = len(relation)
        if conditions:
            relation = relation.select_eq(conditions)
        return ScanResult(relation=relation, rows_scanned=rows_scanned)

    def scan_batch(
        self,
        name: str,
        columns: Optional[Sequence[str]] = None,
        conditions: Optional[Mapping[str, Any]] = None,
    ) -> Optional[Any]:
        """Vectorized scan of ``name``; ``None`` when no batch path exists.

        Only store-backed tables can emit id batches (the ids come from the
        dataset dictionary); in-memory tables make the executor fall back to
        the row path, which keeps their semantics byte-for-byte unchanged.
        """
        provider = self._stored.get(name)
        if provider is None:
            if name not in self._tables:
                raise TableNotFoundError(name)
            return None
        return provider.scan_batch(columns=columns, conditions=conditions)

    def statistics(self, name: str) -> Optional[TableStatistics]:
        return self._statistics.get(name)

    def table_names(self) -> List[str]:
        return sorted(set(self._tables) | set(self._stored))

    def statistics_names(self) -> List[str]:
        return sorted(self._statistics)

    def statistics_only_names(self) -> List[str]:
        """Tables known only through statistics (the paper's empty tables)."""
        return sorted(name for name in self._statistics if name not in self)

    def items(self) -> Iterator[Tuple[str, Relation]]:
        """Iterate ``(name, relation)`` pairs, decoding stored tables on demand."""
        return iter((name, self.table(name)) for name in self.table_names())

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def total_tuples(self) -> int:
        """Sum of materialised table sizes (the paper's "number of tuples").

        Stored tables count via their manifest statistics, so the aggregate is
        available without decoding anything.
        """
        total = 0
        for name in self.table_names():
            relation = self._tables.get(name)
            if relation is not None:
                total += len(relation)
            else:
                statistics = self._statistics.get(name)
                total += statistics.row_count if statistics else 0
        return total

    def table_count(self) -> int:
        return len(set(self._tables) | set(self._stored))
