"""Table catalog with statistics.

S2RDF "collects statistics about all tables in ExtVP during the initial
creation process, most notably the selectivities (SF values) and actual sizes"
(Sec. 6.1).  The :class:`Catalog` is the shared table store: mapping builders
register tables here, the compiler consults the statistics, and the plan
executor reads the relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.engine.relation import Relation


@dataclass
class TableStatistics:
    """Per-table statistics used by table selection and join ordering."""

    name: str
    row_count: int
    #: Selectivity factor relative to the underlying VP table (1.0 for VP and
    #: base tables, |ExtVP| / |VP| for ExtVP tables, 0.0 for empty tables).
    selectivity: float = 1.0
    #: Distinct subjects/objects — handy for cardinality estimates.
    distinct_subjects: int = 0
    distinct_objects: int = 0

    @property
    def is_empty(self) -> bool:
        return self.row_count == 0


class TableNotFoundError(KeyError):
    """Raised when a plan references a table the catalog does not contain."""


class Catalog:
    """Named relations plus their statistics.

    Statistics can exist without a materialised relation: the paper notes that
    S2RDF "also stores statistics about empty tables (which do not physically
    exist)" so the compiler can answer queries without running them.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Relation] = {}
        self._statistics: Dict[str, TableStatistics] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        relation: Relation,
        selectivity: float = 1.0,
        materialize: bool = True,
    ) -> TableStatistics:
        """Register a relation (and derive its statistics)."""
        subjects = relation.distinct_count(relation.columns[0]) if relation.columns and relation.rows else 0
        objects = (
            relation.distinct_count(relation.columns[1])
            if len(relation.columns) > 1 and relation.rows
            else 0
        )
        statistics = TableStatistics(
            name=name,
            row_count=len(relation),
            selectivity=selectivity,
            distinct_subjects=subjects,
            distinct_objects=objects,
        )
        if materialize:
            self._tables[name] = relation
        self._statistics[name] = statistics
        return statistics

    def register_statistics_only(self, name: str, row_count: int, selectivity: float) -> TableStatistics:
        """Record statistics for a table that is not materialised (e.g. empty ExtVP tables)."""
        statistics = TableStatistics(name=name, row_count=row_count, selectivity=selectivity)
        self._statistics[name] = statistics
        return statistics

    def drop(self, name: str) -> None:
        self._tables.pop(name, None)
        self._statistics.pop(name, None)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def has_statistics(self, name: str) -> bool:
        return name in self._statistics

    def table(self, name: str) -> Relation:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def statistics(self, name: str) -> Optional[TableStatistics]:
        return self._statistics.get(name)

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def statistics_names(self) -> List[str]:
        return sorted(self._statistics)

    def items(self) -> Iterator[Tuple[str, Relation]]:
        return iter(sorted(self._tables.items()))

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def total_tuples(self) -> int:
        """Sum of materialised table sizes (the paper's "number of tuples")."""
        return sum(len(relation) for relation in self._tables.values())

    def table_count(self) -> int:
        return len(self._tables)
