"""Column-named relations and relational operators.

A :class:`Relation` is a bag of tuples with named columns — the stand-in for a
Spark SQL ``DataFrame``.  All operators are pure (they return new relations)
and optionally record their work in an
:class:`~repro.engine.metrics.ExecutionMetrics` instance.

Joins are natural joins on shared column names, which matches the way the
S2RDF compiler renames VP/ExtVP columns to query-variable names so subqueries
"can be easily joined on same column names" (Sec. 6.1).
"""

from __future__ import annotations

import heapq
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.metrics import ExecutionMetrics

Row = Tuple[Any, ...]


class SchemaError(ValueError):
    """Raised when an operator is applied to incompatible schemas."""


@dataclass(frozen=True)
class Partitioning:
    """Physical hash-partitioning metadata carried by a relation.

    The persistent dataset store lays table rows out pre-bucketed with the
    runtime's :func:`~repro.engine.runtime.partitioner.key_partition_index`,
    so a scanned relation can declare: "my rows are ordered by partition;
    partition ``i`` holds the next ``counts[i]`` rows, hashed on ``keys``".
    A shuffle join whose keys and partition count match consumes the buckets
    directly instead of re-partitioning.
    """

    keys: Tuple[str, ...]
    counts: Tuple[int, ...]

    @property
    def num_partitions(self) -> int:
        return len(self.counts)

    def renamed(self, mapping: Mapping[str, str]) -> "Partitioning":
        return Partitioning(tuple(mapping.get(k, k) for k in self.keys), self.counts)


class Relation:
    """An immutable bag of tuples with named columns."""

    __slots__ = ("columns", "rows", "partitioning")

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Row] = (),
        partitioning: Optional[Partitioning] = None,
    ) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate column names in {self.columns}")
        materialized: List[Row] = []
        width = len(self.columns)
        for row in rows:
            row_tuple = tuple(row)
            if len(row_tuple) != width:
                raise SchemaError(
                    f"row has {len(row_tuple)} values but schema has {width} columns: {row_tuple!r}"
                )
            materialized.append(row_tuple)
        self.rows: List[Row] = materialized
        #: Optional physical layout tag; operators that preserve row order and
        #: cardinality propagate it, everything else drops it.
        self.partitioning: Optional[Partitioning] = partitioning

    # ------------------------------------------------------------------ #
    # Basics
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        """Bag equality over canonicalized rows.

        Two relations are equal when they have the same column *set* and the
        same multiset of rows once each row's values are reordered by sorted
        column name — so ``Relation(("a", "b"), [(1, 2)])`` equals
        ``Relation(("b", "a"), [(2, 1)])``.  Canonicalization works on the
        value tuples directly (no ``repr`` strings, no sort over the bag).
        """
        if not isinstance(other, Relation):
            return NotImplemented
        if set(self.columns) != set(other.columns):
            return False
        return Counter(self._canonical_rows()) == Counter(other._canonical_rows())

    def __hash__(self) -> int:
        """Bag-equality hash, consistent with :meth:`__eq__`.

        Defining ``__eq__`` alone made relations unhashable, which silently
        broke set membership and dict keying for callers.  Relations are
        immutable by convention (operators return new instances; ``rows``
        must not be mutated after construction), so hashing is safe.  Each
        call is O(n) over the rows — fine for occasional dedup/keying, not
        for hot loops.
        """
        return hash(
            (tuple(sorted(self.columns)), frozenset(Counter(self._canonical_rows()).items()))
        )

    def _canonical_rows(self) -> Iterator[Row]:
        """Rows with values reordered by sorted column name."""
        indexes = [self.columns.index(c) for c in sorted(self.columns)]
        return (tuple(row[i] for i in indexes) for row in self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Relation(columns={self.columns}, rows={len(self.rows)})"

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise SchemaError(f"unknown column {name!r}; available: {self.columns}") from None

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Materialise rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column_values(self, name: str) -> List[Any]:
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def distinct_count(self, name: str) -> int:
        return len(set(self.column_values(name)))

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Relation":
        return cls(columns, [])

    @classmethod
    def from_dicts(cls, columns: Sequence[str], dicts: Iterable[Mapping[str, Any]]) -> "Relation":
        columns = tuple(columns)
        return cls(columns, (tuple(d.get(c) for c in columns) for d in dicts))

    # ------------------------------------------------------------------ #
    # Unary operators
    # ------------------------------------------------------------------ #
    def project(self, columns: Sequence[str]) -> "Relation":
        """Keep only ``columns``, in the given order (duplicates removed)."""
        unique: List[str] = []
        for column in columns:
            if column not in unique:
                unique.append(column)
        indexes = [self.column_index(c) for c in unique]
        partitioning = self.partitioning
        if partitioning is not None and not all(k in unique for k in partitioning.keys):
            partitioning = None  # a dropped key column invalidates the layout tag
        return Relation(
            unique,
            (tuple(row[i] for i in indexes) for row in self.rows),
            partitioning=partitioning,
        )

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename columns according to ``mapping`` (old name -> new name)."""
        for old in mapping:
            self.column_index(old)
        new_columns = [mapping.get(c, c) for c in self.columns]
        partitioning = self.partitioning.renamed(mapping) if self.partitioning is not None else None
        return Relation(new_columns, self.rows, partitioning=partitioning)

    def select(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Relation":
        """Filter rows by a predicate over row dictionaries."""
        kept = [row for row in self.rows if predicate(dict(zip(self.columns, row)))]
        return Relation(self.columns, kept)

    def select_eq(self, conditions: Mapping[str, Any]) -> "Relation":
        """Filter rows by equality conditions (column -> required value)."""
        indexes = [(self.column_index(column), value) for column, value in conditions.items()]
        kept = [row for row in self.rows if all(row[i] == v for i, v in indexes)]
        return Relation(self.columns, kept)

    def distinct(self) -> "Relation":
        seen = set()
        kept: List[Row] = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                kept.append(row)
        return Relation(self.columns, kept)

    def order_by(self, keys: Sequence[Tuple[str, bool]]) -> "Relation":
        """Sort by ``(column, ascending)`` pairs; stable, None sorts last."""
        rows = list(self.rows)
        for column, ascending in reversed(list(keys)):
            index = self.column_index(column)

            def sort_key(row: Row, index: int = index) -> Tuple[int, Any]:
                value = row[index]
                if value is None:
                    return (1, "")
                return (0, _sortable(value))

            rows.sort(key=sort_key, reverse=not ascending)
        return Relation(self.columns, rows)

    def limit(self, count: Optional[int], offset: int = 0) -> "Relation":
        end = None if count is None else offset + count
        return Relation(self.columns, self.rows[offset:end])

    def top_k(self, keys: Sequence[Tuple[str, bool]], count: int, offset: int = 0) -> "Relation":
        """ORDER BY + LIMIT fused into a heap-based top-k selection.

        Produces exactly ``order_by(keys).limit(count, offset)`` — including
        stability, None-last-ascending/None-first-descending placement and
        mixed-type ordering — but keeps only ``count + offset`` rows in the
        heap instead of sorting the whole input (``heapq.nsmallest`` is
        stable and O(n log k)).  Descending keys wrap their component in
        :class:`_ReversedKey` so a single lexicographic composite key
        replicates the multi-pass ``reverse=True`` sorts.
        """
        key_specs = [(self.column_index(column), ascending) for column, ascending in keys]

        def composite(row: Row) -> Tuple[Any, ...]:
            parts = []
            for index, ascending in key_specs:
                value = row[index]
                part = (1, "") if value is None else (0, _sortable(value))
                parts.append(part if ascending else _ReversedKey(part))
            return tuple(parts)

        rows = heapq.nsmallest(count + offset, self.rows, key=composite)
        return Relation(self.columns, rows[offset:])

    def aggregate(self, group_keys: Sequence[str], aggregates: Sequence[Any]) -> "Relation":
        """GROUP BY ``group_keys`` computing ``aggregates`` per group.

        ``aggregates`` are :class:`repro.engine.ops.AggregateSpec`-shaped
        objects (``function``/``column``/``alias``/``distinct``).  Groups are
        emitted in first-seen order.  With no ``group_keys`` the whole input
        forms one implicit group and exactly one row is produced, even for an
        empty input (SPARQL's bare-aggregate form).  ``None`` values (unbound
        variables) are excluded from every aggregate argument, as in SQL.
        """
        key_indexes = [self.column_index(k) for k in group_keys]
        spec_indexes = [
            (spec, None if spec.column is None else self.column_index(spec.column))
            for spec in aggregates
        ]
        groups: Dict[Row, List[Row]] = {}
        order: List[Row] = []
        for row in self.rows:
            key = tuple(row[i] for i in key_indexes)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(row)
        if not group_keys and not order:
            # Implicit grouping aggregates the empty bag to a single row.
            groups[()] = []
            order.append(())
        output_columns = list(group_keys) + [spec.alias for spec in aggregates]
        output_rows: List[Row] = []
        for key in order:
            bucket = groups[key]
            values = list(key)
            for spec, index in spec_indexes:
                if index is None:
                    values.append(len(set(bucket)) if spec.distinct else len(bucket))
                else:
                    argument = [row[index] for row in bucket if row[index] is not None]
                    values.append(aggregate_value(spec.function, argument, spec.distinct))
            output_rows.append(tuple(values))
        return Relation(output_columns, output_rows)

    # ------------------------------------------------------------------ #
    # Binary operators
    # ------------------------------------------------------------------ #
    def union(self, other: "Relation") -> "Relation":
        if set(self.columns) != set(other.columns):
            # SPARQL UNION allows different variables; pad with None.
            all_columns = list(dict.fromkeys(list(self.columns) + list(other.columns)))
            left = self._pad_to(all_columns)
            right = other._pad_to(all_columns)
            return Relation(all_columns, left.rows + right.rows)
        aligned = other.project(self.columns)
        return Relation(self.columns, self.rows + aligned.rows)

    def _pad_to(self, columns: Sequence[str]) -> "Relation":
        index_map = {c: i for i, c in enumerate(self.columns)}
        rows = (
            tuple(row[index_map[c]] if c in index_map else None for c in columns)
            for row in self.rows
        )
        return Relation(columns, rows)

    def natural_join(self, other: "Relation", metrics: Optional[ExecutionMetrics] = None) -> "Relation":
        """Hash join on all shared column names.

        Shared columns appear once in the output.  When there is no shared
        column the result is the cross product (the compiler avoids this, but
        the operator supports it for completeness).
        """
        shared = [c for c in self.columns if c in other.columns]
        output_columns = list(self.columns) + [c for c in other.columns if c not in shared]
        comparisons = 0
        output_rows: List[Row] = []

        if not shared:
            for left_row in self.rows:
                for right_row in other.rows:
                    comparisons += 1
                    output_rows.append(left_row + right_row)
            if metrics is not None:
                metrics.record_join(len(self.rows), len(other.rows), comparisons, len(output_rows))
            return Relation(output_columns, output_rows)

        # Build the hash table on the smaller input, probe with the larger.
        build, probe, build_is_left = (
            (self, other, True) if len(self.rows) <= len(other.rows) else (other, self, False)
        )
        build_key_indexes = [build.column_index(c) for c in shared]
        probe_key_indexes = [probe.column_index(c) for c in shared]
        probe_extra_indexes = [
            probe.column_index(c) for c in probe.columns if c not in shared
        ]
        hash_table: Dict[Row, List[Row]] = defaultdict(list)
        for row in build.rows:
            hash_table[tuple(row[i] for i in build_key_indexes)].append(row)

        left_extra_positions = [self.column_index(c) for c in self.columns]
        right_extra_positions = [other.column_index(c) for c in other.columns if c not in shared]

        for probe_row in probe.rows:
            key = tuple(probe_row[i] for i in probe_key_indexes)
            bucket = hash_table.get(key)
            if not bucket:
                continue
            comparisons += len(bucket)
            for build_row in bucket:
                left_row = build_row if build_is_left else probe_row
                right_row = probe_row if build_is_left else build_row
                combined = tuple(left_row[i] for i in left_extra_positions) + tuple(
                    right_row[i] for i in right_extra_positions
                )
                output_rows.append(combined)
        if metrics is not None:
            metrics.record_join(len(self.rows), len(other.rows), comparisons, len(output_rows))
        return Relation(output_columns, output_rows)

    def left_outer_join(self, other: "Relation", metrics: Optional[ExecutionMetrics] = None) -> "Relation":
        """Left outer join on shared column names (OPTIONAL semantics)."""
        shared = [c for c in self.columns if c in other.columns]
        extra_columns = [c for c in other.columns if c not in shared]
        output_columns = list(self.columns) + extra_columns
        comparisons = 0
        output_rows: List[Row] = []

        right_key_indexes = [other.column_index(c) for c in shared]
        right_extra_indexes = [other.column_index(c) for c in extra_columns]
        hash_table: Dict[Row, List[Row]] = defaultdict(list)
        for row in other.rows:
            hash_table[tuple(row[i] for i in right_key_indexes)].append(row)

        left_key_indexes = [self.column_index(c) for c in shared]
        for left_row in self.rows:
            key = tuple(left_row[i] for i in left_key_indexes)
            bucket = hash_table.get(key)
            if bucket:
                comparisons += len(bucket)
                for right_row in bucket:
                    output_rows.append(left_row + tuple(right_row[i] for i in right_extra_indexes))
            else:
                output_rows.append(left_row + tuple(None for _ in extra_columns))
        if metrics is not None:
            metrics.record_join(len(self.rows), len(other.rows), comparisons, len(output_rows))
        return Relation(output_columns, output_rows)

    def semi_join(
        self,
        other: "Relation",
        on: Sequence[Tuple[str, str]],
        metrics: Optional[ExecutionMetrics] = None,
    ) -> "Relation":
        """Left semi join: keep rows of ``self`` with a match in ``other``.

        ``on`` is a sequence of ``(left_column, right_column)`` pairs.  This is
        the operator ExtVP is built from (Sec. 5.2).
        """
        left_indexes = [self.column_index(lc) for lc, _ in on]
        right_indexes = [other.column_index(rc) for _, rc in on]
        keys = {tuple(row[i] for i in right_indexes) for row in other.rows}
        comparisons = 0
        kept: List[Row] = []
        for row in self.rows:
            comparisons += 1
            if tuple(row[i] for i in left_indexes) in keys:
                kept.append(row)
        if metrics is not None:
            metrics.record_join(len(self.rows), len(other.rows), comparisons, len(kept))
        return Relation(self.columns, kept)

    def anti_join(
        self,
        other: "Relation",
        on: Sequence[Tuple[str, str]],
        metrics: Optional[ExecutionMetrics] = None,
    ) -> "Relation":
        """Left anti join: keep rows of ``self`` with no match in ``other``."""
        left_indexes = [self.column_index(lc) for lc, _ in on]
        right_indexes = [other.column_index(rc) for _, rc in on]
        keys = {tuple(row[i] for i in right_indexes) for row in other.rows}
        kept = [row for row in self.rows if tuple(row[i] for i in left_indexes) not in keys]
        if metrics is not None:
            metrics.record_join(len(self.rows), len(other.rows), len(self.rows), len(kept))
        return Relation(self.columns, kept)


class _ReversedKey:
    """Inverts the ordering of a wrapped sort key (for descending columns).

    ``a < b`` holds exactly when the wrapped values satisfy ``b.value <
    a.value``, so sorting ascending by the wrapper equals sorting descending
    by the value — while stability (equal keys keep input order) is
    untouched, matching ``list.sort(reverse=True)`` semantics per key.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_ReversedKey") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReversedKey) and self.value == other.value


def _sortable(value: Any) -> Any:
    """Make heterogeneous values comparable for ORDER BY."""
    if isinstance(value, (int, float)):
        return (0, value, "")
    if hasattr(value, "n3"):
        return (1, 0, value.n3())
    return (1, 0, str(value))


def aggregate_value(function: str, values: Sequence[Any], distinct: bool) -> Any:
    """One aggregate over the non-``None`` argument values of a group.

    This is the single definition of aggregate semantics, shared by
    :meth:`Relation.aggregate` and the SQLite backend's registered aggregate
    functions so both engines agree bit-for-bit:

    * ``count`` counts values (terms deduplicated first under ``DISTINCT``);
    * ``min``/``max`` order values like ORDER BY does (numbers first, then
      terms by their N3 text) and return the winning value itself;
    * ``sum``/``avg`` convert terms to numbers the way filter comparisons do;
      a non-numeric value makes the result unbound (``None``), and the empty
      group sums/averages to ``0`` (SPARQL 1.1 Sum/Avg definitions).
    """
    if distinct:
        seen = set()
        deduped = []
        for value in values:
            if value not in seen:
                seen.add(value)
                deduped.append(value)
        values = deduped
    if function == "count":
        return len(values)
    if function in ("min", "max"):
        if not values:
            return None
        chooser = min if function == "min" else max
        return chooser(values, key=_sortable)
    if function not in ("sum", "avg"):
        raise ValueError(f"unknown aggregate function {function!r}")
    from repro.sparql.expressions import _term_value

    numbers: List[Any] = []
    for value in values:
        converted = _term_value(value) if hasattr(value, "n3") else value
        if not isinstance(converted, (int, float)):
            return None  # a non-numeric value makes the whole aggregate error out
        numbers.append(converted)
    if function == "sum":
        return sum(numbers) if numbers else 0
    return sum(numbers) / len(numbers) if numbers else 0
