"""Execution metrics.

The paper's argument for ExtVP is quantitative: fewer input tuples, fewer
shuffled tuples and fewer join comparisons.  Every relational operator in the
engine updates an :class:`ExecutionMetrics` instance so the benchmark harness
can report exactly these quantities and feed them to the cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ExecutionMetrics:
    """Counters collected while executing one query."""

    #: Tuples read from base tables (query input size).
    input_tuples: int = 0
    #: Tuples moved between "nodes" for joins (shuffle volume).
    shuffled_tuples: int = 0
    #: Candidate pairs compared during join probing.
    join_comparisons: int = 0
    #: Tuples produced by the final operator.
    output_tuples: int = 0
    #: Tuples produced by intermediate joins (materialised between stages).
    intermediate_tuples: int = 0
    #: Number of join operators executed.
    joins: int = 0
    #: Number of base-table scans.
    table_scans: int = 0
    #: Number of distributed stages (scans + shuffles), used by cost models.
    stages: int = 0
    #: Observed bytes re-partitioned across the wire by shuffle joins.
    shuffled_bytes: int = 0
    #: Observed bytes shipped to every partition by broadcast joins.
    broadcast_bytes: int = 0
    #: Joins executed with a shuffle (re-partitioning) strategy.
    shuffle_joins: int = 0
    #: Joins executed with a broadcast strategy.
    broadcast_joins: int = 0
    #: Per-partition tasks run by the parallel runtime.
    parallel_tasks: int = 0
    #: Wall-clock lower bound of the join work: the slowest task per join,
    #: summed over joins.  This is what a perfectly scheduled cluster would
    #: spend, and what the partition-scaling benchmark reports speedups on.
    critical_path_ms: float = 0.0
    #: Column segments read from the persistent dataset store.
    store_segments_scanned: int = 0
    #: Column segments skipped by zone-map / bucket pruning (never read).
    store_segments_pruned: int = 0
    #: Join inputs consumed pre-partitioned from the store, i.e. shuffle
    #: exchanges avoided because the scan was already bucketed on the keys.
    partition_aligned_inputs: int = 0
    #: Joins whose physical strategy was revised at run time from observed
    #: input sizes (adaptive query execution).
    aqe_replans: int = 0
    #: Extra join tasks created by subdividing skewed shuffle partitions.
    aqe_skew_splits: int = 0
    #: Per-table scan counts, useful for debugging table selection.
    scanned_tables: Dict[str, int] = field(default_factory=dict)

    def record_scan(self, table_name: str, rows: int) -> None:
        self.input_tuples += rows
        self.table_scans += 1
        self.stages += 1
        self.scanned_tables[table_name] = self.scanned_tables.get(table_name, 0) + rows

    def record_join(self, left_rows: int, right_rows: int, comparisons: int, output_rows: int) -> None:
        self.joins += 1
        self.stages += 1
        self.shuffled_tuples += left_rows + right_rows
        self.join_comparisons += comparisons
        self.intermediate_tuples += output_rows

    def record_shuffle(self, transferred_bytes: int, tasks: int = 0) -> None:
        """One shuffle exchange: both join inputs re-partitioned on the keys."""
        self.shuffle_joins += 1
        self.shuffled_bytes += transferred_bytes
        self.parallel_tasks += tasks

    def record_broadcast(self, transferred_bytes: int, tasks: int = 0) -> None:
        """One broadcast exchange: the build side shipped to every partition."""
        self.broadcast_joins += 1
        self.broadcast_bytes += transferred_bytes
        self.parallel_tasks += tasks

    def record_critical_path(self, elapsed_ms: float) -> None:
        self.critical_path_ms += elapsed_ms

    def record_segment_scan(self, scanned: int, pruned: int) -> None:
        """One store-backed table scan: segments read vs. segments pruned."""
        self.store_segments_scanned += scanned
        self.store_segments_pruned += pruned

    def record_aligned_input(self, count: int = 1) -> None:
        """A shuffle join consumed ``count`` pre-partitioned inputs as-is."""
        self.partition_aligned_inputs += count

    def record_replan(self) -> None:
        """Adaptive execution revised one join's strategy from observed sizes."""
        self.aqe_replans += 1

    def record_skew_split(self, extra_tasks: int) -> None:
        """Skew handling subdivided partitions into ``extra_tasks`` more tasks."""
        self.aqe_skew_splits += extra_tasks

    def merge(self, other: "ExecutionMetrics") -> None:
        """Accumulate another metrics object into this one."""
        self.input_tuples += other.input_tuples
        self.shuffled_tuples += other.shuffled_tuples
        self.join_comparisons += other.join_comparisons
        self.output_tuples += other.output_tuples
        self.intermediate_tuples += other.intermediate_tuples
        self.joins += other.joins
        self.table_scans += other.table_scans
        self.stages += other.stages
        self.shuffled_bytes += other.shuffled_bytes
        self.broadcast_bytes += other.broadcast_bytes
        self.shuffle_joins += other.shuffle_joins
        self.broadcast_joins += other.broadcast_joins
        self.parallel_tasks += other.parallel_tasks
        self.critical_path_ms += other.critical_path_ms
        self.store_segments_scanned += other.store_segments_scanned
        self.store_segments_pruned += other.store_segments_pruned
        self.partition_aligned_inputs += other.partition_aligned_inputs
        self.aqe_replans += other.aqe_replans
        self.aqe_skew_splits += other.aqe_skew_splits
        for table, rows in other.scanned_tables.items():
            self.scanned_tables[table] = self.scanned_tables.get(table, 0) + rows

    def scaled(self, factor: float) -> "ExecutionMetrics":
        """Return a copy with all data-proportional counters multiplied.

        The benchmark harness uses this to extrapolate counters measured on a
        laptop-scale dataset to the paper's data scale before feeding them to
        the cost models.  The scaling contract:

        * *data-proportional* counters (tuple and byte counts, including the
          per-table ``scanned_tables`` map) are multiplied by ``factor``;
        * *structural* counters (``joins``, ``table_scans``, ``stages``,
          strategy and task counts, ``aqe_replans``, ``aqe_skew_splits``) do
          not grow with data size and stay unchanged;
        * *observed wall-clock* timings (``critical_path_ms``) are
          deliberately copied unscaled: they measure this machine at this
          data scale, and extrapolated runtimes must come from the cost
          models' counter-derived terms — multiplying a measured time by the
          data factor would double-count hardware speed.
        """
        clone = self.copy()
        clone.input_tuples = int(self.input_tuples * factor)
        clone.shuffled_tuples = int(self.shuffled_tuples * factor)
        clone.join_comparisons = int(self.join_comparisons * factor)
        clone.output_tuples = int(self.output_tuples * factor)
        clone.intermediate_tuples = int(self.intermediate_tuples * factor)
        clone.shuffled_bytes = int(self.shuffled_bytes * factor)
        clone.broadcast_bytes = int(self.broadcast_bytes * factor)
        clone.scanned_tables = {table: int(rows * factor) for table, rows in self.scanned_tables.items()}
        return clone

    def copy(self) -> "ExecutionMetrics":
        clone = ExecutionMetrics(
            input_tuples=self.input_tuples,
            shuffled_tuples=self.shuffled_tuples,
            join_comparisons=self.join_comparisons,
            output_tuples=self.output_tuples,
            intermediate_tuples=self.intermediate_tuples,
            joins=self.joins,
            table_scans=self.table_scans,
            stages=self.stages,
            shuffled_bytes=self.shuffled_bytes,
            broadcast_bytes=self.broadcast_bytes,
            shuffle_joins=self.shuffle_joins,
            broadcast_joins=self.broadcast_joins,
            parallel_tasks=self.parallel_tasks,
            critical_path_ms=self.critical_path_ms,
            store_segments_scanned=self.store_segments_scanned,
            store_segments_pruned=self.store_segments_pruned,
            partition_aligned_inputs=self.partition_aligned_inputs,
            aqe_replans=self.aqe_replans,
            aqe_skew_splits=self.aqe_skew_splits,
        )
        clone.scanned_tables = dict(self.scanned_tables)
        return clone

    def as_dict(self) -> Dict[str, object]:
        return {
            "input_tuples": self.input_tuples,
            "shuffled_tuples": self.shuffled_tuples,
            "join_comparisons": self.join_comparisons,
            "output_tuples": self.output_tuples,
            "intermediate_tuples": self.intermediate_tuples,
            "joins": self.joins,
            "table_scans": self.table_scans,
            "stages": self.stages,
            "shuffled_bytes": self.shuffled_bytes,
            "broadcast_bytes": self.broadcast_bytes,
            "shuffle_joins": self.shuffle_joins,
            "broadcast_joins": self.broadcast_joins,
            "parallel_tasks": self.parallel_tasks,
            "critical_path_ms": round(self.critical_path_ms, 3),
            "store_segments_scanned": self.store_segments_scanned,
            "store_segments_pruned": self.store_segments_pruned,
            "partition_aligned_inputs": self.partition_aligned_inputs,
            "aqe_replans": self.aqe_replans,
            "aqe_skew_splits": self.aqe_skew_splits,
            "scanned_tables": dict(self.scanned_tables),
        }
