"""Execution metrics.

The paper's argument for ExtVP is quantitative: fewer input tuples, fewer
shuffled tuples and fewer join comparisons.  Every relational operator in the
engine updates an :class:`ExecutionMetrics` instance so the benchmark harness
can report exactly these quantities and feed them to the cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, FrozenSet, Tuple


@dataclass
class ExecutionMetrics:
    """Counters collected while executing one query.

    ``merge``/``copy``/``as_dict`` are derived from ``dataclasses.fields()``,
    so adding a counter field needs no lockstep edits — only the *scaling
    category* must be declared: a new field's name goes into
    :data:`DATA_PROPORTIONAL` if it grows with data size, into
    :data:`UNSCALED_TIMINGS` if it is an observed wall-clock measurement, and
    nowhere otherwise (structural counters are copied unscaled).  The
    fields-audit test asserts every field is classified.
    """

    #: Tuples read from base tables (query input size).
    input_tuples: int = 0
    #: Tuples moved between "nodes" for joins (shuffle volume).
    shuffled_tuples: int = 0
    #: Candidate pairs compared during join probing.
    join_comparisons: int = 0
    #: Tuples produced by the final operator.
    output_tuples: int = 0
    #: Tuples produced by intermediate joins (materialised between stages).
    intermediate_tuples: int = 0
    #: Number of join operators executed.
    joins: int = 0
    #: Number of base-table scans.
    table_scans: int = 0
    #: Number of distributed stages (scans + shuffles), used by cost models.
    stages: int = 0
    #: Observed bytes re-partitioned across the wire by shuffle joins.
    shuffled_bytes: int = 0
    #: Observed bytes shipped to every partition by broadcast joins.
    broadcast_bytes: int = 0
    #: Joins executed with a shuffle (re-partitioning) strategy.
    shuffle_joins: int = 0
    #: Joins executed with a broadcast strategy.
    broadcast_joins: int = 0
    #: Per-partition tasks run by the parallel runtime.
    parallel_tasks: int = 0
    #: Wall-clock lower bound of the join work: the slowest task per join,
    #: summed over joins.  This is what a perfectly scheduled cluster would
    #: spend, and what the partition-scaling benchmark reports speedups on.
    critical_path_ms: float = 0.0
    #: Column segments read from the persistent dataset store.
    store_segments_scanned: int = 0
    #: Column segments skipped by zone-map / bucket pruning (never read).
    store_segments_pruned: int = 0
    #: Join inputs consumed pre-partitioned from the store, i.e. shuffle
    #: exchanges avoided because the scan was already bucketed on the keys.
    partition_aligned_inputs: int = 0
    #: Joins whose physical strategy was revised at run time from observed
    #: input sizes (adaptive query execution).
    aqe_replans: int = 0
    #: Extra join tasks created by subdividing skewed shuffle partitions.
    aqe_skew_splits: int = 0
    #: Broadcasts demoted to shuffles because the *observed* materialized
    #: build side exceeded the hard ``broadcast_memory_limit`` cap.
    broadcast_guard_trips: int = 0
    #: Rows that flowed through vectorized (id-batch) operators instead of
    #: row-dict ones — the coverage measure of the vectorized path.
    vectorized_rows: int = 0
    #: Plan operators that executed on :class:`~repro.engine.vectorized.ColumnBatch`
    #: inputs (structural: depends on the plan shape, not the data size).
    vectorized_batches: int = 0
    #: Per-table scan counts, useful for debugging table selection.
    scanned_tables: Dict[str, int] = field(default_factory=dict)

    #: Fields multiplied by :meth:`scaled`'s factor (tuple and byte counts,
    #: including the per-table ``scanned_tables`` map): they grow with data
    #: size, so the benchmark harness extrapolates them to the paper's scale.
    DATA_PROPORTIONAL: ClassVar[FrozenSet[str]] = frozenset(
        {
            "input_tuples",
            "shuffled_tuples",
            "join_comparisons",
            "output_tuples",
            "intermediate_tuples",
            "shuffled_bytes",
            "broadcast_bytes",
            "vectorized_rows",
            "scanned_tables",
        }
    )
    #: Observed wall-clock timings: copied *unscaled* by :meth:`scaled` — they
    #: measure this machine at this data scale, and extrapolated runtimes must
    #: come from the cost models' counter-derived terms.
    UNSCALED_TIMINGS: ClassVar[FrozenSet[str]] = frozenset({"critical_path_ms"})

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        """Every counter field, in declaration order."""
        return tuple(f.name for f in fields(cls))

    def record_scan(self, table_name: str, rows: int) -> None:
        self.input_tuples += rows
        self.table_scans += 1
        self.stages += 1
        self.scanned_tables[table_name] = self.scanned_tables.get(table_name, 0) + rows

    def record_join(self, left_rows: int, right_rows: int, comparisons: int, output_rows: int) -> None:
        self.joins += 1
        self.stages += 1
        self.shuffled_tuples += left_rows + right_rows
        self.join_comparisons += comparisons
        self.intermediate_tuples += output_rows

    def record_shuffle(self, transferred_bytes: int, tasks: int = 0) -> None:
        """One shuffle exchange: both join inputs re-partitioned on the keys."""
        self.shuffle_joins += 1
        self.shuffled_bytes += transferred_bytes
        self.parallel_tasks += tasks

    def record_broadcast(self, transferred_bytes: int, tasks: int = 0) -> None:
        """One broadcast exchange: the build side shipped to every partition."""
        self.broadcast_joins += 1
        self.broadcast_bytes += transferred_bytes
        self.parallel_tasks += tasks

    def record_critical_path(self, elapsed_ms: float) -> None:
        self.critical_path_ms += elapsed_ms

    def record_segment_scan(self, scanned: int, pruned: int) -> None:
        """One store-backed table scan: segments read vs. segments pruned."""
        self.store_segments_scanned += scanned
        self.store_segments_pruned += pruned

    def record_aligned_input(self, count: int = 1) -> None:
        """A shuffle join consumed ``count`` pre-partitioned inputs as-is."""
        self.partition_aligned_inputs += count

    def record_replan(self) -> None:
        """Adaptive execution revised one join's strategy from observed sizes."""
        self.aqe_replans += 1

    def record_skew_split(self, extra_tasks: int) -> None:
        """Skew handling subdivided partitions into ``extra_tasks`` more tasks."""
        self.aqe_skew_splits += extra_tasks

    def record_guard_trip(self) -> None:
        """The broadcast memory guard demoted one broadcast to a shuffle."""
        self.broadcast_guard_trips += 1

    def record_vectorized(self, rows: int) -> None:
        """One plan operator produced a ``rows``-long id batch (no row dicts)."""
        self.vectorized_batches += 1
        self.vectorized_rows += rows

    def merge(self, other: "ExecutionMetrics") -> None:
        """Accumulate another metrics object into this one (field-derived)."""
        for name in self.field_names():
            value = getattr(other, name)
            if isinstance(value, dict):
                mine = getattr(self, name)
                for key, amount in value.items():
                    mine[key] = mine.get(key, 0) + amount
            else:
                setattr(self, name, getattr(self, name) + value)

    def scaled(self, factor: float) -> "ExecutionMetrics":
        """Return a copy with all data-proportional counters multiplied.

        The benchmark harness uses this to extrapolate counters measured on a
        laptop-scale dataset to the paper's data scale before feeding them to
        the cost models.  The scaling contract, encoded by the two class-level
        category sets:

        * fields in :data:`DATA_PROPORTIONAL` are multiplied by ``factor``;
        * fields in :data:`UNSCALED_TIMINGS` are copied unscaled — multiplying
          a measured time by the data factor would double-count hardware
          speed;
        * every other field is *structural* (``joins``, ``table_scans``,
          ``stages``, strategy and task counts, ``aqe_replans``,
          ``aqe_skew_splits``): it does not grow with data size and stays
          unchanged.
        """
        clone = self.copy()
        for name in self.field_names():
            if name not in self.DATA_PROPORTIONAL:
                continue
            value = getattr(self, name)
            if isinstance(value, dict):
                setattr(clone, name, {key: int(v * factor) for key, v in value.items()})
            else:
                setattr(clone, name, int(value * factor))
        return clone

    def copy(self) -> "ExecutionMetrics":
        clone = ExecutionMetrics()
        for name in self.field_names():
            value = getattr(self, name)
            setattr(clone, name, dict(value) if isinstance(value, dict) else value)
        return clone

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for name in self.field_names():
            value = getattr(self, name)
            if isinstance(value, dict):
                out[name] = dict(value)
            elif isinstance(value, float):
                out[name] = round(value, 3)
            else:
                out[name] = value
        return out
