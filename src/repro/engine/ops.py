"""The plan IR: an immutable operation tree with a visitor protocol.

Every logical query plan is a tree of :class:`Operation` nodes — leaves scan
catalog tables, unary nodes transform one input, binary nodes combine two.
The design follows ``lsst-dm/daf_relation``: nodes are frozen dataclasses,
traversal is generic (:meth:`Operation.walk`, :meth:`Operation.transform`),
and *behaviour* lives in :class:`OperationVisitor` subclasses so engines can
be added without touching the tree.  The serial executor, the partitioned
runtime, cardinality estimation, ``explain_analyze`` and both SQL dialects
(the display-only Spark text here, the executable SQLite lowering in
:mod:`repro.engine.sql`) are all visitors over this one tree.

Nodes carry class-level capability flags (``is_join``, ``is_outer_join``,
``is_scan``) so engines can branch on what a node *is* without resorting to
``isinstance`` ladders outside this module.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterator, Optional, Tuple

from repro.sparql.expressions import Expression

__all__ = [
    "AggregateNode",
    "AggregateSpec",
    "BinaryOperation",
    "DistinctNode",
    "EmptyNode",
    "FilterNode",
    "LeafOperation",
    "LeftOuterJoinNode",
    "LimitNode",
    "NaturalJoinNode",
    "Operation",
    "OperationVisitor",
    "OrderByNode",
    "PlanNode",
    "ProjectNode",
    "SparkSqlRenderer",
    "SubqueryNode",
    "TableScanNode",
    "UnaryOperation",
    "UnionNode",
    "count_joins",
    "plan_depth",
]

AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


class Operation:
    """Base class of all logical plan operators (immutable nodes)."""

    #: Capability flags; engines branch on these instead of node classes.
    is_join = False
    is_outer_join = False
    is_scan = False
    is_sort = False

    def children(self) -> Tuple["Operation", ...]:
        return ()

    def output_columns(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        """Double-dispatch into ``visitor``; implemented per concrete node."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Generic traversal.
    # ------------------------------------------------------------------ #
    def walk(self) -> Iterator["Operation"]:
        """Pre-order iteration over the subtree rooted at this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def transform(self, fn) -> "Operation":
        """Bottom-up rebuild: ``fn`` maps each node (with already-rebuilt
        children) to its replacement.  Untouched subtrees keep their identity,
        which matters because executors annotate plans by ``id(node)``."""
        return fn(self)

    def to_sql(self, indent: int = 0) -> str:
        """Render the plan as the Spark SQL text the paper shows (Fig. 6/11)."""
        return SPARK_SQL.visit(self, indent)


#: Backwards-compatible alias — the pre-IR code base called the root class
#: ``PlanNode`` and plenty of callers (and docs) still do.
PlanNode = Operation


class LeafOperation(Operation):
    """An operation with no inputs (scans and the static-empty marker)."""


@dataclass(frozen=True)
class UnaryOperation(Operation):
    """An operation over a single input relation."""

    child: Operation

    def children(self) -> Tuple[Operation, ...]:
        return (self.child,)

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def transform(self, fn) -> Operation:
        child = self.child.transform(fn)
        node = self if child is self.child else replace(self, child=child)
        return fn(node)


@dataclass(frozen=True)
class BinaryOperation(Operation):
    """An operation combining two input relations."""

    left: Operation
    right: Operation

    def children(self) -> Tuple[Operation, ...]:
        return (self.left, self.right)

    def output_columns(self) -> Tuple[str, ...]:
        left = self.left.output_columns()
        right = [c for c in self.right.output_columns() if c not in left]
        return tuple(list(left) + right)

    def transform(self, fn) -> Operation:
        left = self.left.transform(fn)
        right = self.right.transform(fn)
        node = self
        if left is not self.left or right is not self.right:
            node = replace(self, left=left, right=right)
        return fn(node)

    def shared_columns(self) -> Tuple[str, ...]:
        """Join keys: columns occurring on both sides."""
        right = self.right.output_columns()
        return tuple(c for c in self.left.output_columns() if c in right)


# ---------------------------------------------------------------------- #
# Leaves.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TableScanNode(LeafOperation):
    """Scan a whole catalog table."""

    table_name: str
    columns: Tuple[str, ...]

    is_scan = True

    def output_columns(self) -> Tuple[str, ...]:
        return self.columns

    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_table_scan(self, *args)


@dataclass(frozen=True)
class SubqueryNode(LeafOperation):
    """The TP2SQL building block: project/rename + equality selections.

    ``projections`` maps physical column names (``s``/``o``/``p``) to variable
    names; ``conditions`` are equality selections on physical columns.
    """

    table_name: str
    projections: Tuple[Tuple[str, str], ...]
    conditions: Tuple[Tuple[str, Any], ...] = ()

    is_scan = True

    def output_columns(self) -> Tuple[str, ...]:
        return tuple(alias for _, alias in self.projections)

    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_subquery(self, *args)


@dataclass(frozen=True)
class EmptyNode(LeafOperation):
    """A node known to produce no rows (statistics short-circuit)."""

    columns: Tuple[str, ...] = ()

    def output_columns(self) -> Tuple[str, ...]:
        return self.columns

    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_empty(self, *args)


# ---------------------------------------------------------------------- #
# Binary operations.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class NaturalJoinNode(BinaryOperation):
    is_join = True

    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_natural_join(self, *args)


@dataclass(frozen=True)
class LeftOuterJoinNode(BinaryOperation):
    expression: Optional[Expression] = None

    is_join = True
    is_outer_join = True

    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_left_outer_join(self, *args)


@dataclass(frozen=True)
class UnionNode(BinaryOperation):
    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_union(self, *args)


# ---------------------------------------------------------------------- #
# Unary operations.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FilterNode(UnaryOperation):
    expression: Expression

    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_filter(self, *args)


@dataclass(frozen=True)
class ProjectNode(UnaryOperation):
    columns: Tuple[str, ...]

    def output_columns(self) -> Tuple[str, ...]:
        return self.columns

    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_project(self, *args)


@dataclass(frozen=True)
class DistinctNode(UnaryOperation):
    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_distinct(self, *args)


@dataclass(frozen=True)
class OrderByNode(UnaryOperation):
    keys: Tuple[Tuple[str, bool], ...]

    is_sort = True

    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_order_by(self, *args)


@dataclass(frozen=True)
class LimitNode(UnaryOperation):
    limit: Optional[int]
    offset: int = 0

    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_limit(self, *args)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in a GROUP BY: ``function(column) AS alias``.

    ``column`` is ``None`` for ``COUNT(*)``.  ``distinct`` dedups the
    argument *terms* before aggregating (``COUNT(DISTINCT ?x)``).
    """

    function: str
    column: Optional[str]
    alias: str
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate function {self.function!r}")
        if self.column is None and self.function != "count":
            raise ValueError(f"{self.function}(*) is not defined")

    def describe(self) -> str:
        argument = f"?{self.column}" if self.column is not None else "*"
        if self.distinct:
            argument = f"DISTINCT {argument}"
        return f"{self.function}({argument}) AS ?{self.alias}"


@dataclass(frozen=True)
class AggregateNode(UnaryOperation):
    """GROUP BY ``group_keys`` computing ``aggregates`` per group.

    With no ``group_keys`` the whole input is one implicit group and exactly
    one row is produced (SPARQL's bare-aggregate form).
    """

    group_keys: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]

    def output_columns(self) -> Tuple[str, ...]:
        return self.group_keys + tuple(spec.alias for spec in self.aggregates)

    def accept(self, visitor: "OperationVisitor", *args: Any) -> Any:
        return visitor.visit_aggregate(self, *args)


# ---------------------------------------------------------------------- #
# The visitor protocol.
# ---------------------------------------------------------------------- #
class OperationVisitor:
    """Double-dispatch over the operation tree.

    Subclasses override the ``visit_*`` hooks they care about; unhandled
    nodes fall through to :meth:`generic_visit`.  Extra positional arguments
    passed to :meth:`visit` are forwarded untouched, so stateless visitors
    can thread context (metrics, indent levels, catalogs) without instance
    state.
    """

    def visit(self, node: Operation, *args: Any) -> Any:
        return node.accept(self, *args)

    def generic_visit(self, node: Operation, *args: Any) -> Any:
        raise TypeError(f"{type(self).__name__} cannot handle {type(node).__name__}")

    def visit_table_scan(self, node: TableScanNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)

    def visit_subquery(self, node: SubqueryNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)

    def visit_empty(self, node: EmptyNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)

    def visit_natural_join(self, node: NaturalJoinNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)

    def visit_left_outer_join(self, node: LeftOuterJoinNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)

    def visit_union(self, node: UnionNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)

    def visit_filter(self, node: FilterNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)

    def visit_project(self, node: ProjectNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)

    def visit_distinct(self, node: DistinctNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)

    def visit_order_by(self, node: OrderByNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)

    def visit_limit(self, node: LimitNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)

    def visit_aggregate(self, node: AggregateNode, *args: Any) -> Any:
        return self.generic_visit(node, *args)


# ---------------------------------------------------------------------- #
# Generic tree measures (shared by tests, benchmarks and reporting).
# ---------------------------------------------------------------------- #
def plan_depth(node: Operation) -> int:
    """Height of the plan tree (used in tests and ablation reporting)."""
    children = node.children()
    if not children:
        return 1
    return 1 + max(plan_depth(child) for child in children)


def count_joins(node: Operation) -> int:
    """Number of join operators in a plan."""
    return sum(1 for n in node.walk() if n.is_join)


# ---------------------------------------------------------------------- #
# The display SQL dialect (Spark SQL text, as in the paper's figures).
# ---------------------------------------------------------------------- #
def _sql_value(value: Any) -> str:
    if hasattr(value, "n3"):
        return "'" + value.n3().replace("'", "''") + "'"
    if isinstance(value, (int, float)):
        return str(value)
    return "'" + str(value).replace("'", "''") + "'"


def _indent(text: str, indent: int) -> str:
    prefix = "  " * indent
    return "\n".join(prefix + line for line in text.splitlines())


class SparkSqlRenderer(OperationVisitor):
    """Renders a plan as indented Spark-style SQL text (display dialect).

    This is the human-facing rendering used by ``QueryResult.sql`` and the
    paper-style figures; the *executable* dialect lives in
    :class:`repro.engine.sql.SqliteBackend`.
    """

    def visit_table_scan(self, node: TableScanNode, indent: int = 0) -> str:
        return _indent(f"SELECT {', '.join(node.columns)} FROM {node.table_name}", indent)

    def visit_subquery(self, node: SubqueryNode, indent: int = 0) -> str:
        select_list = ", ".join(f"{column} AS {alias}" for column, alias in node.projections)
        sql = f"SELECT {select_list} FROM {node.table_name}"
        if node.conditions:
            rendered = " AND ".join(
                f"{column} = {_sql_value(value)}" for column, value in node.conditions
            )
            sql += f" WHERE {rendered}"
        return _indent(sql, indent)

    def visit_empty(self, node: EmptyNode, indent: int = 0) -> str:
        return _indent("SELECT * FROM (VALUES ) AS empty -- statically empty", indent)

    def visit_natural_join(self, node: NaturalJoinNode, indent: int = 0) -> str:
        shared = node.shared_columns()
        using = f" USING ({', '.join(shared)})" if shared else " -- cross join"
        return (
            _indent("SELECT * FROM (", indent)
            + "\n"
            + self.visit(node.left, indent + 1)
            + "\n"
            + _indent(") AS lhs JOIN (", indent)
            + "\n"
            + self.visit(node.right, indent + 1)
            + "\n"
            + _indent(f") AS rhs{using}", indent)
        )

    def visit_left_outer_join(self, node: LeftOuterJoinNode, indent: int = 0) -> str:
        shared = node.shared_columns()
        using = f" USING ({', '.join(shared)})" if shared else ""
        condition = f" -- filter: {node.expression.to_sql()}" if node.expression is not None else ""
        return (
            _indent("SELECT * FROM (", indent)
            + "\n"
            + self.visit(node.left, indent + 1)
            + "\n"
            + _indent(") AS lhs LEFT OUTER JOIN (", indent)
            + "\n"
            + self.visit(node.right, indent + 1)
            + "\n"
            + _indent(f") AS rhs{using}{condition}", indent)
        )

    def visit_union(self, node: UnionNode, indent: int = 0) -> str:
        return (
            self.visit(node.left, indent)
            + "\n"
            + _indent("UNION ALL", indent)
            + "\n"
            + self.visit(node.right, indent)
        )

    def visit_filter(self, node: FilterNode, indent: int = 0) -> str:
        return (
            _indent("SELECT * FROM (", indent)
            + "\n"
            + self.visit(node.child, indent + 1)
            + "\n"
            + _indent(f") AS filtered WHERE {node.expression.to_sql()}", indent)
        )

    def visit_project(self, node: ProjectNode, indent: int = 0) -> str:
        return (
            _indent(f"SELECT {', '.join(node.columns)} FROM (", indent)
            + "\n"
            + self.visit(node.child, indent + 1)
            + "\n"
            + _indent(") AS projected", indent)
        )

    def visit_distinct(self, node: DistinctNode, indent: int = 0) -> str:
        return (
            _indent("SELECT DISTINCT * FROM (", indent)
            + "\n"
            + self.visit(node.child, indent + 1)
            + "\n"
            + _indent(") AS dedup", indent)
        )

    def visit_order_by(self, node: OrderByNode, indent: int = 0) -> str:
        rendered = ", ".join(
            f"{column} {'ASC' if ascending else 'DESC'}" for column, ascending in node.keys
        )
        return (
            _indent("SELECT * FROM (", indent)
            + "\n"
            + self.visit(node.child, indent + 1)
            + "\n"
            + _indent(f") AS ordered ORDER BY {rendered}", indent)
        )

    def visit_limit(self, node: LimitNode, indent: int = 0) -> str:
        clause = ""
        if node.limit is not None:
            clause += f" LIMIT {node.limit}"
        if node.offset:
            clause += f" OFFSET {node.offset}"
        return (
            _indent("SELECT * FROM (", indent)
            + "\n"
            + self.visit(node.child, indent + 1)
            + "\n"
            + _indent(f") AS sliced{clause}", indent)
        )

    def visit_aggregate(self, node: AggregateNode, indent: int = 0) -> str:
        rendered = []
        rendered.extend(node.group_keys)
        for spec in node.aggregates:
            argument = spec.column if spec.column is not None else "*"
            if spec.distinct:
                argument = f"DISTINCT {argument}"
            rendered.append(f"{spec.function.upper()}({argument}) AS {spec.alias}")
        group = f" GROUP BY {', '.join(node.group_keys)}" if node.group_keys else ""
        return (
            _indent(f"SELECT {', '.join(rendered)} FROM (", indent)
            + "\n"
            + self.visit(node.child, indent + 1)
            + "\n"
            + _indent(f") AS grouped{group}", indent)
        )


#: Shared stateless renderer instance behind ``Operation.to_sql``.
SPARK_SQL = SparkSqlRenderer()
