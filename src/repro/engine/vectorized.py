"""Vectorized execution on dictionary-id column batches.

The row-dict engine materialises every intermediate as per-tuple Python
objects even though the dataset store already holds RLE-paged integer id
columns.  This module provides the batch representation those scans can emit
directly — a :class:`ColumnBatch` of flat ``array('q')`` id columns plus an
optional selection vector, the DuckDB vector idiom — and the batch-wise
kernels the executor runs on it: equality and single-variable filters,
hash-join build/probe on raw ids, projection/rename, DISTINCT, UNION and
LIMIT.  Term decoding is deferred to one :meth:`ColumnBatch.to_relation`
boundary at the end of the plan (or before a not-yet-vectorized operator),
so a query that scans millions of ids decodes only the rows it returns.

Raw ids are only ever compared for *equality* — dictionary ids are assigned
in write order, not value order, so ``<``/``>`` on ids would be meaningless.
Comparison filters therefore decode each *distinct* id once and memoise the
predicate verdict (:meth:`ColumnBatch.select_ids`), which preserves the
row-path semantics at O(distinct) instead of O(rows) decode cost.

``NULL_ID`` (-1) stands in for SQL NULL / unbound variables; two NULLs
compare equal in a natural join, exactly like the row path's ``None == None``.
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Partitioning, Relation, SchemaError
from repro.engine.storage import NULL_ID

#: In-flight size of one dictionary id when a batch crosses a (simulated)
#: exchange: a packed 64-bit integer.  Compare ``BYTES_PER_VALUE`` (24) for
#: row-dict relations — the 3x shrink is the shuffle-volume win of shipping
#: id batches instead of materialised term rows.
BYTES_PER_ID = 8

_ITEM = struct.Struct("<q")
_NULL_BYTES = _ITEM.pack(NULL_ID)


def null_column(length: int) -> array:
    """A flat id column of ``length`` NULLs (one bytes-repeat, no Python loop)."""
    out = array("q")
    out.frombytes(_NULL_BYTES * length)
    return out


class ColumnBatch:
    """An immutable batch of dictionary-id columns with a selection vector.

    ``ids`` holds one flat ``array('q')`` per column, all of equal length;
    ``selection`` (when not ``None``) lists the physically valid row indices
    in output order, so filters narrow a batch without copying a single
    column.  ``decode`` maps an id back to its term (the stored dataset's
    dictionary); batches joined or unioned together must share it.
    """

    __slots__ = ("columns", "ids", "selection", "decode", "partitioning")

    def __init__(
        self,
        columns: Sequence[str],
        ids: Sequence[array],
        decode: Callable[[int], Any],
        selection: Optional[array] = None,
        partitioning: Optional[Partitioning] = None,
    ) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate column names in {self.columns}")
        if len(ids) != len(self.columns):
            raise SchemaError(
                f"{len(ids)} id columns for {len(self.columns)} column names"
            )
        lengths = {len(column) for column in ids}
        if len(lengths) > 1:
            raise SchemaError(f"id columns have unequal lengths {sorted(lengths)}")
        self.ids: Tuple[array, ...] = tuple(ids)
        self.selection = selection
        self.decode = decode
        #: Optional physical layout tag, mirroring ``Relation.partitioning``.
        self.partitioning = partitioning

    # ------------------------------------------------------------------ #
    # Basics
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if self.selection is not None:
            return len(self.selection)
        return len(self.ids[0]) if self.ids else 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ColumnBatch(columns={self.columns}, rows={len(self)})"

    def indices(self) -> Sequence[int]:
        """The valid physical row indices, in output order."""
        if self.selection is not None:
            return self.selection
        return range(len(self.ids[0]) if self.ids else 0)

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise SchemaError(f"unknown column {name!r}; available: {self.columns}") from None

    def estimated_bytes(self) -> int:
        """Serialized exchange size: one packed id per value."""
        return len(self) * len(self.columns) * BYTES_PER_ID

    @classmethod
    def empty(cls, columns: Sequence[str], decode: Callable[[int], Any]) -> "ColumnBatch":
        return cls(columns, [array("q") for _ in columns], decode)

    # ------------------------------------------------------------------ #
    # Unary kernels
    # ------------------------------------------------------------------ #
    def gather(self) -> "ColumnBatch":
        """Compact the selection into flat columns (selection becomes implicit)."""
        if self.selection is None:
            return self
        selection = self.selection
        compacted = [array("q", map(column.__getitem__, selection)) for column in self.ids]
        return ColumnBatch(self.columns, compacted, self.decode)

    def filter_equal(self, column: str, term_id: int) -> "ColumnBatch":
        """Keep rows whose ``column`` id equals ``term_id`` (raw-id equality)."""
        ids = self.ids[self.column_index(column)]
        if self.selection is None:
            kept = array("q", (i for i, value in enumerate(ids) if value == term_id))
        else:
            kept = array("q", (i for i in self.selection if ids[i] == term_id))
        return ColumnBatch(self.columns, self.ids, self.decode, selection=kept)

    def select_ids(self, column: str, predicate: Callable[[int], bool]) -> "ColumnBatch":
        """Filter by a per-id predicate, memoised over *distinct* ids.

        The predicate typically decodes the id and evaluates a SPARQL filter
        expression; memoisation makes that O(distinct ids), which is what
        licenses running comparison filters on unordered dictionary ids.
        """
        ids = self.ids[self.column_index(column)]
        verdicts: Dict[int, bool] = {}
        kept = array("q")
        for i in self.indices():
            value = ids[i]
            verdict = verdicts.get(value)
            if verdict is None:
                verdict = bool(predicate(value))
                verdicts[value] = verdict
            if verdict:
                kept.append(i)
        return ColumnBatch(self.columns, self.ids, self.decode, selection=kept)

    def project(self, columns: Sequence[str]) -> "ColumnBatch":
        """Keep only ``columns``, in the given order (duplicates removed)."""
        unique: List[str] = []
        for column in columns:
            if column not in unique:
                unique.append(column)
        picked = [self.ids[self.column_index(c)] for c in unique]
        partitioning = self.partitioning
        if partitioning is not None and not all(k in unique for k in partitioning.keys):
            partitioning = None  # a dropped key column invalidates the layout tag
        return ColumnBatch(
            unique, picked, self.decode, selection=self.selection, partitioning=partitioning
        )

    def rename(self, mapping: Mapping[str, str]) -> "ColumnBatch":
        for old in mapping:
            self.column_index(old)
        new_columns = [mapping.get(c, c) for c in self.columns]
        partitioning = (
            self.partitioning.renamed(mapping) if self.partitioning is not None else None
        )
        return ColumnBatch(
            new_columns, self.ids, self.decode, selection=self.selection, partitioning=partitioning
        )

    def pad_to(self, columns: Sequence[str]) -> "ColumnBatch":
        """Add missing columns as all-NULL id columns (unbound variables)."""
        missing = [c for c in columns if c not in self.columns]
        if not missing:
            return self
        length = len(self.ids[0]) if self.ids else len(self)
        padded = list(self.ids) + [null_column(length) for _ in missing]
        return ColumnBatch(
            list(self.columns) + missing, padded, self.decode, selection=self.selection
        )

    def distinct(self) -> "ColumnBatch":
        seen = set()
        add = seen.add
        kept = array("q")
        append = kept.append
        ids = self.ids
        selection = self.selection
        if not ids:
            # Zero-column batch: every row is the empty tuple, keep one.
            first = self.indices()[:1]
            return ColumnBatch(self.columns, ids, self.decode, selection=array("q", first))
        if len(ids) == 1:
            # Single column: the raw id is its own key, no tuple per row.
            column = ids[0]
            rows = enumerate(column) if selection is None else (
                (i, column[i]) for i in selection
            )
            for i, key in rows:
                if key not in seen:
                    add(key)
                    append(i)
        else:
            indices = self.indices()
            # zip() assembles the key tuples at C speed, column-wise.
            keys = (
                zip(*ids)
                if selection is None
                else zip(*(map(column.__getitem__, selection) for column in ids))
            )
            for i, key in zip(indices, keys):
                if key not in seen:
                    add(key)
                    append(i)
        return ColumnBatch(self.columns, ids, self.decode, selection=kept)

    def limit(self, count: Optional[int], offset: int = 0) -> "ColumnBatch":
        end = None if count is None else offset + count
        indices = self.indices()
        kept = array("q", indices[offset:end])
        return ColumnBatch(self.columns, self.ids, self.decode, selection=kept)

    # ------------------------------------------------------------------ #
    # Binary kernels
    # ------------------------------------------------------------------ #
    def union(self, other: "ColumnBatch") -> "ColumnBatch":
        """Bag union; differing schemas are NULL-padded like ``Relation.union``."""
        if set(self.columns) != set(other.columns):
            all_columns = list(dict.fromkeys(list(self.columns) + list(other.columns)))
            return self.pad_to(all_columns).union(other.pad_to(all_columns))
        aligned = other.project(self.columns)
        return concat_batches([self.gather(), aligned.gather()])

    def natural_join(
        self, other: "ColumnBatch", metrics: Optional[ExecutionMetrics] = None
    ) -> "ColumnBatch":
        """Hash join on all shared column names, build/probe on raw id tuples.

        Id equality is term equality (the dictionary is injective) and
        ``NULL_ID`` matches ``NULL_ID`` exactly as the row path's
        ``None == None`` does, so the output bag matches
        :meth:`Relation.natural_join` row for row.
        """
        shared = [c for c in self.columns if c in other.columns]
        output_columns = list(self.columns) + [c for c in other.columns if c not in shared]

        if not shared:
            # Cross product: tile the two index vectors, gather column-wise.
            left_indices = self.indices()
            right_list = list(other.indices())
            n_right = len(right_list)
            left_idx = array("q")
            right_idx = array("q")
            for i in left_indices:
                left_idx.extend([i] * n_right)
                right_idx.extend(right_list)
            out = [
                array("q", map(column.__getitem__, left_idx)) for column in self.ids
            ] + [array("q", map(column.__getitem__, right_idx)) for column in other.ids]
            if metrics is not None:
                metrics.record_join(len(self), len(other), len(left_idx), len(left_idx))
            return ColumnBatch(output_columns, out, self.decode)

        build, probe, build_is_left = (
            (self, other, True) if len(self) <= len(other) else (other, self, False)
        )
        build_key = [build.ids[build.column_index(c)] for c in shared]
        probe_key = [probe.ids[probe.column_index(c)] for c in shared]
        hash_table: Dict[Any, List[int]] = {}
        setdefault = hash_table.setdefault
        if len(build_key) == 1:
            # Single shared column (the common S2RDF shape): the raw id is
            # its own hash key, no tuple allocation per build row.
            column = build_key[0]
            for i in build.indices():
                setdefault(column[i], []).append(i)
        else:
            for i in build.indices():
                setdefault(tuple(key[i] for key in build_key), []).append(i)

        # Probe phase only collects matched (build, probe) index pairs; the
        # output columns are gathered afterwards in one C-level map per column.
        build_idx = array("q")
        probe_idx = array("q")
        build_append = build_idx.append
        probe_append = probe_idx.append
        comparisons = 0
        get = hash_table.get
        probe_selection = probe.selection
        if len(probe_key) == 1:
            column = probe_key[0]
            probe_rows: Iterable[Tuple[int, Any]] = (
                enumerate(column)
                if probe_selection is None
                else ((j, column[j]) for j in probe_selection)
            )
        else:
            probe_rows = (
                (j, tuple(key[j] for key in probe_key)) for j in probe.indices()
            )
        for j, key in probe_rows:
            bucket = get(key)
            if bucket is None:
                continue
            matched = len(bucket)
            comparisons += matched
            if matched == 1:
                build_append(bucket[0])
                probe_append(j)
            else:
                build_idx.extend(bucket)
                probe_idx.extend([j] * matched)

        left, right = (build, probe) if build_is_left else (probe, build)
        left_idx, right_idx = (
            (build_idx, probe_idx) if build_is_left else (probe_idx, build_idx)
        )
        left_sources = [left.ids[left.column_index(c)] for c in self.columns]
        right_sources = [
            right.ids[right.column_index(c)] for c in other.columns if c not in shared
        ]
        out = [array("q", map(column.__getitem__, left_idx)) for column in left_sources]
        out += [array("q", map(column.__getitem__, right_idx)) for column in right_sources]
        if metrics is not None:
            metrics.record_join(len(self), len(other), comparisons, len(build_idx))
        return ColumnBatch(output_columns, out, self.decode)

    # ------------------------------------------------------------------ #
    # Lowering
    # ------------------------------------------------------------------ #
    def to_relation(self) -> Relation:
        """Decode to a row :class:`Relation` — the single batch→rows boundary.

        Each distinct id is decoded once (the dictionary may parse the term
        lazily); ids outside the dictionary's committed range raise ``KeyError``
        here, never silently producing a wrong term.
        """
        decode = self.decode
        terms: Dict[int, Any] = {NULL_ID: None}
        get = terms.get
        ids = self.ids
        selection = self.selection
        decoded_columns: List[List[Any]] = []
        for column in ids:
            values = column if selection is None else map(column.__getitem__, selection)
            decoded: List[Any] = []
            append = decoded.append
            for value in values:
                term = get(value)
                if term is None and value != NULL_ID:
                    term = decode(value)
                    terms[value] = term
                append(term)
            decoded_columns.append(decoded)
        if decoded_columns:
            rows: List[Tuple] = list(zip(*decoded_columns))
        else:
            rows = [() for _ in self.indices()]
        return Relation(self.columns, rows, partitioning=self.partitioning)


def concat_batches(batches: Sequence[ColumnBatch]) -> ColumnBatch:
    """Concatenate batches sharing one schema and decoder (bag semantics)."""
    if not batches:
        raise ValueError("cannot concatenate zero batches")
    first = batches[0]
    out = [array("q") for _ in first.columns]
    for batch in batches:
        if batch.columns != first.columns:
            raise SchemaError(
                f"cannot concatenate batches with schemas {first.columns} and {batch.columns}"
            )
        compacted = batch.gather()
        for position, column in enumerate(compacted.ids):
            out[position].extend(column)
    return ColumnBatch(first.columns, out, first.decode)


@dataclass
class BatchScanResult:
    """Outcome of a vectorized store scan (the batch-shaped ``ScanResult``)."""

    batch: ColumnBatch
    rows_scanned: int
    segments_scanned: int = 0
    segments_pruned: int = 0


@dataclass(frozen=True)
class PartitionedBatch:
    """A :class:`ColumnBatch` split into disjoint partitions (id-space RDD).

    The partitions *share* the parent's flat id columns and differ only in
    their selection vectors, so "shuffling" a batch moves index arrays, not
    column data — which is exactly why the accounted exchange bytes shrink.
    """

    columns: Tuple[str, ...]
    partitions: Tuple[ColumnBatch, ...]
    keys: Optional[Tuple[str, ...]] = None

    @classmethod
    def from_batch(
        cls,
        batch: ColumnBatch,
        num_partitions: int,
        keys: Optional[Sequence[str]] = None,
    ) -> "PartitionedBatch":
        """Partition ``batch``: by key hash when ``keys`` is given, evenly otherwise.

        Hash partitioning must agree with the row path's
        :func:`~repro.engine.runtime.partitioner.key_partition_index` over
        *decoded* terms (store buckets and row shuffles both use it), so each
        distinct key id tuple is decoded once and its bucket memoised.
        """
        # Imported here: the runtime package's __init__ imports the executor,
        # which imports this module — a module-level import would be circular.
        from repro.engine.runtime.partitioner import key_partition_index

        if num_partitions == 1:
            return cls(batch.columns, (batch,), tuple(keys) if keys else None)
        if keys:
            key_columns = [batch.ids[batch.column_index(k)] for k in keys]
            decode = batch.decode
            buckets: Dict[Tuple[int, ...], int] = {}
            selections = [array("q") for _ in range(num_partitions)]
            for i in batch.indices():
                key = tuple(column[i] for column in key_columns)
                bucket = buckets.get(key)
                if bucket is None:
                    terms = tuple(None if v == NULL_ID else decode(v) for v in key)
                    bucket = key_partition_index(terms, num_partitions)
                    buckets[key] = bucket
                selections[bucket].append(i)
            parts = tuple(
                ColumnBatch(batch.columns, batch.ids, decode, selection=selection)
                for selection in selections
            )
            return cls(batch.columns, parts, tuple(keys))
        indices = batch.indices()
        total = len(indices)
        base, remainder = divmod(total, num_partitions)
        parts_list: List[ColumnBatch] = []
        start = 0
        for index in range(num_partitions):
            size = base + (1 if index < remainder else 0)
            selection = array("q", indices[start : start + size])
            parts_list.append(
                ColumnBatch(batch.columns, batch.ids, batch.decode, selection=selection)
            )
            start += size
        return cls(batch.columns, tuple(parts_list))

    @classmethod
    def from_prepartitioned(cls, batch: ColumnBatch) -> "PartitionedBatch":
        """Adopt the bucket layout a store-backed batch scan already carries."""
        tag = batch.partitioning
        if tag is None:
            raise ValueError("batch carries no partitioning tag")
        indices = batch.indices()
        parts: List[ColumnBatch] = []
        start = 0
        for count in tag.counts:
            selection = array("q", indices[start : start + count])
            parts.append(ColumnBatch(batch.columns, batch.ids, batch.decode, selection=selection))
            start += count
        if start != len(indices):
            raise ValueError(
                f"partitioning tag covers {start} rows but batch has {len(indices)}"
            )
        return cls(batch.columns, tuple(parts), tag.keys)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def estimated_bytes(self) -> int:
        return sum(part.estimated_bytes() for part in self.partitions)

    def is_co_partitioned_with(self, other: "PartitionedBatch") -> bool:
        """Same contract as ``PartitionedRelation.is_co_partitioned_with``."""
        return (
            self.keys is not None
            and self.keys == other.keys
            and self.num_partitions == other.num_partitions
        )
