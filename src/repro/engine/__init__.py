"""Relational engine substrate (the Spark SQL stand-in).

The paper executes SPARQL queries by compiling them to Spark SQL over tables
stored in HDFS/Parquet.  This package provides the equivalent substrate for a
single machine:

* :class:`~repro.engine.relation.Relation` — a column-named bag of tuples with
  the relational operators the compiler needs (project/rename, selection,
  natural join, left outer join, semi join, union, distinct, order by, limit).
* :class:`~repro.engine.metrics.ExecutionMetrics` — counters (tuples scanned,
  tuples shuffled, join comparisons, stages) collected during execution.
* :mod:`~repro.engine.plan` — a logical plan layer with a SQL pretty-printer,
  so the S2RDF compiler genuinely produces "SQL" as in the paper.
* :class:`~repro.engine.catalog.Catalog` — the table store with statistics.
* :mod:`~repro.engine.storage` — a simulated HDFS namespace with Parquet-like
  size accounting (dictionary + run-length encoding, snappy-style factor).
* :mod:`~repro.engine.cluster` — cost models that convert execution metrics
  into simulated runtimes for the different execution architectures
  (in-memory MPP, MapReduce, centralised single node).
* :mod:`~repro.engine.runtime` — the partitioned parallel execution runtime:
  hash partitioning, shuffle/broadcast join strategies, adaptive re-planning
  from observed sizes (:class:`~repro.engine.runtime.AdaptivePlanner`) and
  the :class:`~repro.engine.runtime.ParallelExecutor` that runs per-partition
  join tasks on a worker pool.
"""

from repro.engine.relation import Relation
from repro.engine.metrics import ExecutionMetrics
from repro.engine.catalog import Catalog, TableStatistics
from repro.engine.plan import (
    DistinctNode,
    EmptyNode,
    FilterNode,
    LeftOuterJoinNode,
    LimitNode,
    NaturalJoinNode,
    OrderByNode,
    PlanExecutor,
    PlanNode,
    ProjectNode,
    SubqueryNode,
    TableScanNode,
    UnionNode,
)
from repro.engine.runtime import (
    AdaptivePlanner,
    BroadcastHashJoin,
    HashPartitioner,
    ParallelExecutor,
    PartitionedRelation,
    PhysicalPlan,
    SerialJoin,
    ShuffleHashJoin,
    plan_join_strategies,
)
from repro.engine.storage import HdfsSimulator, ParquetSizeModel, StoredFile
from repro.engine.cluster import (
    CentralizedCostModel,
    ClusterConfig,
    CostModel,
    MapReduceCostModel,
    SparkCostModel,
)

__all__ = [
    "Relation",
    "ExecutionMetrics",
    "Catalog",
    "TableStatistics",
    "DistinctNode",
    "EmptyNode",
    "FilterNode",
    "LeftOuterJoinNode",
    "LimitNode",
    "NaturalJoinNode",
    "OrderByNode",
    "PlanExecutor",
    "PlanNode",
    "ProjectNode",
    "SubqueryNode",
    "TableScanNode",
    "UnionNode",
    "AdaptivePlanner",
    "BroadcastHashJoin",
    "HashPartitioner",
    "ParallelExecutor",
    "PartitionedRelation",
    "PhysicalPlan",
    "SerialJoin",
    "ShuffleHashJoin",
    "plan_join_strategies",
    "HdfsSimulator",
    "ParquetSizeModel",
    "StoredFile",
    "CentralizedCostModel",
    "ClusterConfig",
    "CostModel",
    "MapReduceCostModel",
    "SparkCostModel",
]
