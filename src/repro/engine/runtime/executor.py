"""Partitioned parallel plan execution.

:class:`ParallelExecutor` is the runtime counterpart of the physical planner
in :mod:`repro.engine.runtime.strategies`.  It executes the same logical plans
as the serial :class:`~repro.engine.plan.PlanExecutor` (which it subclasses),
but every join annotated :class:`ShuffleHashJoin` re-partitions both inputs on
the join keys and joins the co-partitioned pairs on a
:class:`concurrent.futures.ThreadPoolExecutor`, while a
:class:`BroadcastHashJoin` ships the small build side to every partition of
the large side, exactly like Spark's exchange operators.  Results are merged
back into one relation, so the output is bag-equal to the serial executor's.

With ``adaptive_enabled`` (the default), execution is *adaptive* in the
Spark 3 sense: joins materialize bottom-up, so when a join is about to run,
its inputs are observed rather than estimated.  The
:class:`~repro.engine.runtime.adaptive.AdaptivePlanner` re-decides the join's
strategy from those observed sizes (demoting shuffles whose build side is
actually small, promoting broadcasts whose build side is actually huge),
splits skewed shuffle partitions into median-sized tasks, and feeds observed
table cardinalities back into the catalog so the *next* query's static plan
starts from truth.  Replans and skew splits are visible in
:class:`~repro.engine.metrics.ExecutionMetrics` (``aqe_replans``,
``aqe_skew_splits``) and in the physical plan's initial-vs-executed strategy
lists.

Byte-level exchange volume (shuffled vs. broadcast) and the per-join critical
path (the slowest partition task) are recorded in
:class:`~repro.engine.metrics.ExecutionMetrics`, giving the Spark cost model
observed shuffle volume instead of the former per-tuple guesswork.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.catalog import Catalog, ScanResult
from repro.engine.metrics import ExecutionMetrics
from repro.engine.plan import LeftOuterJoinNode, NaturalJoinNode, PlanExecutor, PlanNode
from repro.engine.relation import Relation
from repro.engine.vectorized import ColumnBatch, PartitionedBatch, concat_batches
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.engine.runtime.adaptive import DEFAULT_SKEW_FACTOR, AdaptivePlanner, ReplanEvent
from repro.engine.runtime.partitioned import PartitionedRelation, estimated_bytes
from repro.engine.runtime.strategies import (
    DEFAULT_BROADCAST_MEMORY_LIMIT,
    DEFAULT_BROADCAST_THRESHOLD,
    BroadcastHashJoin,
    JoinStrategy,
    PhysicalPlan,
    SerialJoin,
    ShuffleHashJoin,
    plan_join_strategies,
)

#: One partition task: (result partition, comparisons made, elapsed ms).
_TaskResult = Tuple[Relation, int, float]


@dataclass
class ExchangeStats:
    """Observed I/O of one join's exchange (keyed by ``id(plan node)``)."""

    kind: str  # "shuffle" | "broadcast"
    transferred_bytes: int
    tasks: int
    critical_path_ms: float = 0.0


class ParallelExecutor(PlanExecutor):
    """Executes logical plans with partitioned, pooled join operators."""

    def __init__(
        self,
        catalog: Catalog,
        num_partitions: int = 4,
        broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
        max_workers: Optional[int] = None,
        adaptive_enabled: bool = True,
        skew_factor: float = DEFAULT_SKEW_FACTOR,
        tracer: Optional[Tracer] = None,
        metrics_registry: Optional[MetricsRegistry] = None,
        broadcast_memory_limit: int = DEFAULT_BROADCAST_MEMORY_LIMIT,
        vectorized: bool = False,
        worker_pool: Optional[Callable[[], Optional[object]]] = None,
    ) -> None:
        super().__init__(
            catalog, tracer=tracer, metrics_registry=metrics_registry, vectorized=vectorized
        )
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if broadcast_memory_limit < 1:
            raise ValueError("broadcast_memory_limit must be >= 1")
        self.num_partitions = num_partitions
        self.broadcast_threshold = broadcast_threshold
        #: Hard cap on the observed materialized build side of a broadcast.
        #: Unlike ``broadcast_threshold`` (an estimate-driven *preference*),
        #: this is a memory-safety bound enforced in every mode, adaptive or
        #: not: exceeding it demotes the join to a shuffle.
        self.broadcast_memory_limit = broadcast_memory_limit
        self.max_workers = max_workers or min(num_partitions, max(1, os.cpu_count() or 1))
        self._pool: Optional[ThreadPoolExecutor] = None
        #: Join-strategy annotations of the most recently executed plan.
        self.last_physical_plan: Optional[PhysicalPlan] = None
        #: Time spent in the physical-planning step of the last execute().
        self.last_plan_ms: float = 0.0
        #: Observed exchange I/O per join node of the last executed plan.
        self.last_exchange_stats: Dict[int, ExchangeStats] = {}
        #: Adaptive re-planning; ``None`` reproduces the static plan exactly.
        self.adaptive: Optional[AdaptivePlanner] = (
            AdaptivePlanner(catalog, broadcast_threshold, skew_factor=skew_factor)
            if adaptive_enabled
            else None
        )
        #: Late-bound provider of a :class:`~repro.serve.workers.PartitionWorkerPool`
        #: (or ``None``).  A provider rather than a pool: the owning session
        #: only has a pool once a dataset is attached, and process mode falls
        #: back to the thread pool until then.
        self._worker_pool_provider = worker_pool

    @property
    def adaptive_enabled(self) -> bool:
        return self.adaptive is not None

    # ------------------------------------------------------------------ #
    def execute(self, plan: PlanNode, metrics: Optional[ExecutionMetrics] = None) -> Relation:
        if self.adaptive is not None:
            self.adaptive.reset()
        self.last_exchange_stats = {}
        start = time.perf_counter()
        with self.tracer.span("physical-plan", category="query") as span:
            self.last_physical_plan = self.plan_physical(plan)
            span.set(joins=len(self.last_physical_plan.strategies()))
        self.last_plan_ms = (time.perf_counter() - start) * 1000.0
        return super().execute(plan, metrics)

    def plan_physical(self, plan: PlanNode) -> PhysicalPlan:
        """The physical-planning step: annotate every join with a strategy.

        Only adaptive executors consult the catalog's observed-cardinality
        cache: with ``adaptive_enabled=False`` the plan must depend on the
        static statistics alone, even when an adaptive session sharing this
        catalog already recorded observations.
        """
        return plan_join_strategies(
            plan, self.catalog, self.broadcast_threshold, use_observed=self.adaptive_enabled
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Scan hook: feed observed table sizes back into the catalog
    # ------------------------------------------------------------------ #
    def _record_scan(self, table_name: str, scan: ScanResult, metrics: ExecutionMetrics) -> None:
        super()._record_scan(table_name, scan, metrics)
        # A scan that pruned segments saw only part of the table, so its row
        # count is not a table-cardinality observation.
        if self.adaptive is not None and scan.segments_pruned == 0:
            self.adaptive.observe_scan(table_name, scan.rows_scanned)

    # ------------------------------------------------------------------ #
    # Join hooks
    # ------------------------------------------------------------------ #
    def _natural_join(
        self, plan: NaturalJoinNode, left: Relation, right: Relation, metrics: ExecutionMetrics
    ) -> Relation:
        return self._adaptive_join(plan, left, right, metrics, outer=False)

    def _left_outer_join(
        self, plan: LeftOuterJoinNode, left: Relation, right: Relation, metrics: ExecutionMetrics
    ) -> Relation:
        return self._adaptive_join(plan, left, right, metrics, outer=True)

    def _adaptive_join(
        self,
        plan: PlanNode,
        left: Relation,
        right: Relation,
        metrics: ExecutionMetrics,
        outer: bool,
    ) -> Relation:
        shared = [c for c in left.columns if c in right.columns]
        physical = self.last_physical_plan
        planned = physical.strategy_for(plan) if physical is not None else None

        if not self._worth_parallelising(left, right, shared):
            if physical is not None and planned is not None:
                physical.record_executed(
                    plan,
                    SerialJoin(
                        tuple(shared),
                        len(left),
                        len(right),
                        reason=self._serial_reason(left, right, shared),
                    ),
                )
            if outer:
                return super()._left_outer_join(plan, left, right, metrics)
            return super()._natural_join(plan, left, right, metrics)

        strategy = planned
        if self.adaptive is not None and planned is not None:
            strategy, event = self.adaptive.revise(plan, planned, left, right)
            if event is not None:
                metrics.record_replan()
                # Replan decision, timestamped on the join operator's span.
                self.tracer.current().event(
                    "aqe-replan",
                    initial=event.initial.name,
                    revised=event.revised.name,
                    reason=event.reason,
                )
        strategy = self._apply_broadcast_guard(plan, strategy, left, right, outer, metrics)
        if physical is not None and strategy is not None:
            physical.record_executed(plan, strategy)

        if isinstance(strategy, BroadcastHashJoin):
            # Only the non-preserved (right) side of an outer join may build.
            build_left = strategy.build_side == "left" and not outer
            return self._broadcast_join(
                plan, left, right, build_left=build_left, metrics=metrics, outer=outer
            )
        if outer:
            join = lambda l, r, scratch: l.left_outer_join(r, scratch)  # noqa: E731
        else:
            join = lambda l, r, scratch: l.natural_join(r, scratch)  # noqa: E731
        return self._shuffle_join(plan, left, right, shared, join=join, metrics=metrics, outer=outer)

    def _apply_broadcast_guard(
        self,
        plan: PlanNode,
        strategy: Optional["JoinStrategy"],
        left: Relation,
        right: Relation,
        outer: bool,
        metrics: ExecutionMetrics,
    ) -> Optional["JoinStrategy"]:
        """Demote a broadcast whose *observed* build side breaks the memory cap.

        The planners decide from estimates; this guard is the last check
        before dispatch, against the relation that actually materialized.  It
        runs in every mode (adaptive or not) — it is a memory-safety bound,
        not a cost decision.  Joins reaching this point always have shared
        keys (``_worth_parallelising`` filtered cross joins into the serial
        path), so a shuffle substitute always exists.
        """
        if not isinstance(strategy, BroadcastHashJoin) or not strategy.keys:
            return strategy
        # Mirror the dispatch rule below: an outer join always builds right.
        build = left if (strategy.build_side == "left" and not outer) else right
        build_bytes = estimated_bytes(build)
        if build_bytes <= self.broadcast_memory_limit:
            return strategy
        demoted = ShuffleHashJoin(strategy.keys, len(left), len(right))
        metrics.record_guard_trip()
        reason = (
            f"broadcast memory guard: observed build side {build_bytes} B > "
            f"limit {self.broadcast_memory_limit} B"
        )
        if self.adaptive is not None:
            # Surface the demotion in explain_analyze like any AQE revision.
            self.adaptive.replan_events.append(
                ReplanEvent(strategy, demoted, reason, node_id=id(plan))
            )
        self.tracer.current().event(
            "broadcast-guard-trip",
            build_bytes=build_bytes,
            limit=self.broadcast_memory_limit,
        )
        self._observe("s2rdf_broadcast_guard_build_bytes", float(build_bytes))
        return demoted

    def _worth_parallelising(self, left: Relation, right: Relation, shared: Sequence[str]) -> bool:
        """Fall back to the serial operator for degenerate inputs.

        Cross joins (no shared keys) cannot be hash-partitioned, and an empty
        side makes the join trivial; both run serially.
        """
        return self.num_partitions > 1 and bool(shared) and len(left) > 0 and len(right) > 0

    def _serial_reason(self, left: Relation, right: Relation, shared: Sequence[str]) -> str:
        if self.num_partitions <= 1:
            return "single partition"
        if not shared:
            return "cross join"
        if len(left) == 0 or len(right) == 0:
            return "empty input"
        return "fallback"

    # ------------------------------------------------------------------ #
    # Physical operators
    # ------------------------------------------------------------------ #
    def _shuffle_join(
        self,
        plan: PlanNode,
        left: Relation,
        right: Relation,
        keys: Sequence[str],
        join: Callable[[Relation, Relation, ExecutionMetrics], Relation],
        metrics: ExecutionMetrics,
        outer: bool = False,
    ) -> Relation:
        """ShuffleHashJoin: co-partition both sides on the keys, join pairwise.

        A side whose scan came pre-bucketed from the dataset store on exactly
        these keys (and this partition count) is consumed as-is: its buckets
        are sliced out of the scan output and contribute zero shuffle bytes.

        Under adaptive execution, skewed partitions (larger than
        ``skew_factor ×`` the median) are subdivided into median-sized tasks
        before the pool runs them; aligned stored buckets and the
        *non-preserved* (right) side of an outer join are never split — only
        the preserved side can be chunked without fabricating rows.
        """
        with self.tracer.span(
            "shuffle-exchange", category="exchange", keys=",".join(keys)
        ) as exchange_span:
            left_parts, left_aligned = self._partition_input(left, keys)
            right_parts, right_aligned = self._partition_input(right, keys)
            assert left_parts.is_co_partitioned_with(right_parts)
            pairs: List[Tuple[Relation, Relation]] = list(
                zip(left_parts.partitions, right_parts.partitions)
            )
            # Skew handling chunks row lists; id batches keep their partition
            # boundaries (selection slicing has no row-splitting primitive yet).
            if self.adaptive is not None and not isinstance(left, ColumnBatch):
                pairs, extra = self.adaptive.split_skewed(
                    pairs,
                    splittable_left=not left_aligned,
                    # Splitting the right side of an outer join would fabricate
                    # null-padded rows for left rows matched in another chunk.
                    splittable_right=not right_aligned and not outer,
                )
                if extra:
                    metrics.record_skew_split(extra)
                    exchange_span.event("aqe-skew-split", extra_tasks=extra)

            def task(indexed: Tuple[int, Tuple[Relation, Relation]]) -> _TaskResult:
                index, (left_part, right_part) = indexed
                scratch = ExecutionMetrics()
                with self.tracer.span(
                    "join-task", category="task", parent=exchange_span, partition=index
                ) as task_span:
                    start = time.perf_counter()
                    joined = join(left_part, right_part, scratch)
                    task_span.set(rows=len(joined))
                return joined, scratch.join_comparisons, (time.perf_counter() - start) * 1000.0

            pool = self._remote_pool()
            if pool is not None:
                exchange_span.event("process-dispatch", tasks=len(pairs))
                results = self._remote_join_tasks(pool, pairs, outer=outer)
            else:
                results = self._run_tasks(task, list(enumerate(pairs)))
            shuffled = (0 if left_aligned else left_parts.estimated_bytes()) + (
                0 if right_aligned else right_parts.estimated_bytes()
            )
            metrics.record_shuffle(shuffled, tasks=len(results))
            exchange_span.set(transferred_bytes=shuffled, tasks=len(results))
            aligned = int(left_aligned) + int(right_aligned)
            if aligned:
                metrics.record_aligned_input(aligned)
            self.last_exchange_stats[id(plan)] = ExchangeStats(
                kind="shuffle", transferred_bytes=shuffled, tasks=len(results)
            )
            return self._merge(plan, left, right, results, metrics)

    def _partition_input(self, relation, keys: Sequence[str]):
        """Bucket one join input, reusing a matching stored layout when present.

        Id batches bucket into :class:`PartitionedBatch` (selection slicing —
        the "shuffle" moves index vectors, not rows); row relations keep the
        original :class:`PartitionedRelation` path.  Returns
        ``(partitioned, aligned)``.
        """
        tag = relation.partitioning
        aligned = (
            tag is not None
            and tag.keys == tuple(keys)
            and tag.num_partitions == self.num_partitions
        )
        if isinstance(relation, ColumnBatch):
            if aligned:
                return PartitionedBatch.from_prepartitioned(relation), True
            return PartitionedBatch.from_batch(relation, self.num_partitions, keys=keys), False
        if aligned:
            return PartitionedRelation.from_prepartitioned(relation), True
        return PartitionedRelation.from_relation(relation, self.num_partitions, keys=keys), False

    def _broadcast_join(
        self,
        plan: PlanNode,
        left: Relation,
        right: Relation,
        build_left: bool,
        metrics: ExecutionMetrics,
        outer: bool = False,
    ) -> Relation:
        """BroadcastHashJoin: split the probe side evenly, ship the build side whole.

        The probe (large) side never crosses the wire — each of its partitions
        joins against the full broadcast build side, preserving the serial
        operator's left-first column order.
        """
        with self.tracer.span(
            "broadcast-exchange", category="exchange", build="left" if build_left else "right"
        ) as exchange_span:
            build, probe = (left, right) if build_left else (right, left)
            if isinstance(probe, ColumnBatch):
                probe_parts = PartitionedBatch.from_batch(probe, self.num_partitions)
            else:
                probe_parts = PartitionedRelation.from_relation(probe, self.num_partitions)

            def task(indexed: Tuple[int, Relation]) -> _TaskResult:
                index, probe_part = indexed
                scratch = ExecutionMetrics()
                with self.tracer.span(
                    "join-task", category="task", parent=exchange_span, partition=index
                ) as task_span:
                    start = time.perf_counter()
                    if outer:
                        joined = probe_part.left_outer_join(build, scratch)
                    elif build_left:
                        joined = build.natural_join(probe_part, scratch)
                    else:
                        joined = probe_part.natural_join(build, scratch)
                    task_span.set(rows=len(joined))
                return joined, scratch.join_comparisons, (time.perf_counter() - start) * 1000.0

            pool = self._remote_pool()
            if pool is not None:
                # Arrange each pair so the worker's ``left op right`` matches
                # the thread task above: the build side leads only for a
                # non-outer build-left join (column order is left-first).
                if build_left and not outer:
                    ordered = [(build, probe_part) for probe_part in probe_parts.partitions]
                else:
                    ordered = [(probe_part, build) for probe_part in probe_parts.partitions]
                exchange_span.event("process-dispatch", tasks=len(ordered))
                results = self._remote_join_tasks(pool, ordered, outer=outer)
            else:
                results = self._run_tasks(task, list(enumerate(probe_parts.partitions)))
            broadcast = estimated_bytes(build) * probe_parts.num_partitions
            metrics.record_broadcast(broadcast, tasks=len(results))
            exchange_span.set(transferred_bytes=broadcast, tasks=len(results))
            self.last_exchange_stats[id(plan)] = ExchangeStats(
                kind="broadcast", transferred_bytes=broadcast, tasks=len(results)
            )
            return self._merge(plan, left, right, results, metrics)

    # ------------------------------------------------------------------ #
    def _remote_pool(self):
        """The partition worker pool, when the session runs in process mode."""
        if self._worker_pool_provider is None:
            return None
        return self._worker_pool_provider()

    def _remote_join_tasks(self, pool, pairs: List[Tuple], outer: bool) -> List[_TaskResult]:
        """Ship co-partitioned join pairs to the process worker pool.

        Inputs are serialized per pair — id batches as their flat ``array``
        columns (8 bytes/value, the cheap case this mode exists for), row
        relations as tuples of frozen terms.  The dictionary decoder never
        crosses the boundary: workers join raw ids and the parent re-attaches
        ``decode`` to returned batches.
        """
        from repro.serve.workers import pack_input

        tasks = [
            {"left": pack_input(left_part), "right": pack_input(right_part), "outer": outer}
            for left_part, right_part in pairs
        ]
        decode = next(
            (
                side.decode
                for pair in pairs
                for side in pair
                if isinstance(side, ColumnBatch)
            ),
            None,
        )
        return pool.run_join_tasks(tasks, decode=decode)

    def _run_tasks(self, task: Callable, items: List) -> List[_TaskResult]:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="s2rdf-runtime"
            )
        return list(self._pool.map(task, items))

    @staticmethod
    def _output_columns(left: Relation, right: Relation) -> Tuple[str, ...]:
        return tuple(list(left.columns) + [c for c in right.columns if c not in left.columns])

    def _merge(
        self,
        plan: PlanNode,
        left,
        right,
        results: List[_TaskResult],
        metrics: ExecutionMetrics,
    ):
        """Concatenate partition outputs and record the aggregate join metrics.

        Batch-input joins produce batch partitions, which merge back into one
        :class:`ColumnBatch` so downstream operators stay on ids.
        """
        comparisons = 0
        slowest_ms = 0.0
        for _, partition_comparisons, elapsed_ms in results:
            comparisons += partition_comparisons
            slowest_ms = max(slowest_ms, elapsed_ms)
            self._observe("s2rdf_task_ms", elapsed_ms)
        if isinstance(left, ColumnBatch):
            merged = concat_batches([partition for partition, _, _ in results])
            output_rows = len(merged)
        else:
            columns = self._output_columns(left, right)
            rows: List = []
            for partition, _, _ in results:
                rows.extend(partition.rows)
            merged = Relation(columns, rows)
            output_rows = len(rows)
        metrics.record_join(len(left), len(right), comparisons, output_rows)
        metrics.record_critical_path(slowest_ms)
        self._observe("s2rdf_join_critical_path_ms", slowest_ms)
        exchange = self.last_exchange_stats.get(id(plan))
        if exchange is not None:
            exchange.critical_path_ms = slowest_ms
        return merged
