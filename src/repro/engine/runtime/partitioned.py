"""Partitioned relations.

A :class:`PartitionedRelation` is the local stand-in for a Spark RDD/DataFrame
that has been shuffled onto executors: an ordered list of disjoint
:class:`~repro.engine.relation.Relation` partitions sharing one schema,
optionally tagged with the key columns they are hash-partitioned on.  Two
relations partitioned on the same keys with the same partition count are
*co-partitioned*: partition ``i`` of one can only join with partition ``i`` of
the other, which is what makes per-partition parallel joins correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.engine.relation import Relation
from repro.engine.runtime.partitioner import HashPartitioner

#: Rough in-flight size of one term value when shipped over the simulated
#: network (pointer + small dictionary-encoded payload).  Used for shuffle and
#: broadcast byte accounting, mirroring Spark's serialized shuffle sizes.
BYTES_PER_VALUE = 24


def estimated_bytes(relation) -> int:
    """Estimated serialized size of a relation's rows.

    Duck-typed: anything carrying its own ``estimated_bytes()`` (notably
    :class:`~repro.engine.vectorized.ColumnBatch`, whose values are packed
    8-byte ids rather than term objects) reports through that, so exchanges
    shipping id batches are automatically accounted smaller.
    """
    own = getattr(relation, "estimated_bytes", None)
    if own is not None:
        return own()
    return len(relation.rows) * len(relation.columns) * BYTES_PER_VALUE


@dataclass(frozen=True)
class PartitionedRelation:
    """A relation split into disjoint partitions with a common schema."""

    columns: Tuple[str, ...]
    partitions: Tuple[Relation, ...]
    #: Key columns the partitions are hashed on (``None`` for an even split).
    keys: Optional[Tuple[str, ...]] = None

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        num_partitions: int,
        keys: Optional[Sequence[str]] = None,
    ) -> "PartitionedRelation":
        """Partition ``relation``: by hash when ``keys`` is given, evenly otherwise."""
        partitioner = HashPartitioner(num_partitions)
        if keys:
            parts = partitioner.partition(relation, keys)
            return cls(relation.columns, tuple(parts), tuple(keys))
        return cls(relation.columns, tuple(partitioner.split_evenly(relation)))

    @classmethod
    def from_prepartitioned(cls, relation: Relation) -> "PartitionedRelation":
        """Adopt the bucket layout a store-backed scan already produced.

        The relation's :class:`~repro.engine.relation.Partitioning` tag
        declares that its rows are ordered by bucket (bucket ``i`` holds the
        next ``counts[i]`` rows, hashed on ``keys`` with the partitioner's
        hash), so the buckets can be sliced out without re-hashing a single
        row — the shuffle exchange this avoids is the whole point of keeping
        tables pre-partitioned in the store.
        """
        tag = relation.partitioning
        if tag is None:
            raise ValueError("relation carries no partitioning tag")
        parts: List[Relation] = []
        start = 0
        for count in tag.counts:
            parts.append(Relation(relation.columns, relation.rows[start : start + count]))
            start += count
        if start != len(relation.rows):
            raise ValueError(
                f"partitioning tag covers {start} rows but relation has {len(relation.rows)}"
            )
        return cls(relation.columns, tuple(parts), tag.keys)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def total_rows(self) -> int:
        return sum(len(part) for part in self.partitions)

    def estimated_bytes(self) -> int:
        return sum(estimated_bytes(part) for part in self.partitions)

    def partition_sizes(self) -> List[int]:
        return [len(part) for part in self.partitions]

    def merge(self) -> Relation:
        """Concatenate all partitions back into one relation (bag semantics)."""
        rows: List = []
        for part in self.partitions:
            rows.extend(part.rows)
        return Relation(self.columns, rows)

    def is_co_partitioned_with(self, other: "PartitionedRelation") -> bool:
        """True when per-index partition joins with ``other`` are correct.

        Both sides must be hashed on the *same* key columns with the same
        partition count — natural joins rename shared variables to identical
        column names, so name equality is the right test.
        """
        return (
            self.keys is not None
            and self.keys == other.keys
            and self.num_partitions == other.num_partitions
        )
