"""Adaptive query execution (AQE): re-optimize join strategies at run time.

Spark 3's adaptive execution re-plans the not-yet-executed stages of a query
at shuffle materialization boundaries, where the *observed* sizes of the
finished stages are known — demoting sort-merge joins to broadcast joins,
coalescing small partitions and splitting skewed ones.  The static planner in
:mod:`repro.engine.runtime.strategies` is exactly the component that needs
this safety net: it trusts pre-execution estimates, and a stale (or missing)
statistics entry makes it broadcast a huge table or shuffle a tiny one.

This module is the local analogue.  Joins execute bottom-up, so by the time a
join operator runs, both of its inputs are fully materialized — the natural
re-optimization point.  The :class:`AdaptivePlanner`

* **revises** each join's planned strategy from the observed input sizes just
  before it runs (:meth:`AdaptivePlanner.revise`): a planned
  :class:`~repro.engine.runtime.strategies.ShuffleHashJoin` whose build
  candidate is actually under the broadcast threshold is demoted to a
  :class:`~repro.engine.runtime.strategies.BroadcastHashJoin`, the reverse is
  promoted back to a shuffle, and a broadcast whose build side turned out to
  be the larger one has its build side flipped;
* **splits skewed partitions** (:meth:`AdaptivePlanner.split_skewed`): any
  shuffle partition larger than ``skew_factor ×`` the median partition size is
  subdivided into median-sized chunks, each joined against the whole
  co-partition of the other side, so the join's critical path tracks the
  median partition instead of the straggler;
* **feeds observed cardinalities back into the catalog**
  (:meth:`AdaptivePlanner.observe_scan` →
  :meth:`~repro.engine.catalog.Catalog.record_observed`), a session-level
  statistics cache consulted by
  :func:`~repro.engine.runtime.strategies.estimate_rows`, so repeated queries
  plan from observed truth and need no replans at all.

Correctness invariants the splitter maintains:

* only *one* side of a co-partition pair is ever chunked (chunk × chunk
  pairing would miss matches), and the chunks partition the side's rows, so
  the union of the chunk joins is bag-equal to the whole-partition join;
* the preserved (left) side is the only splittable side of a left outer join
  — splitting the right side would emit spurious null-padded rows;
* inputs consumed pre-partitioned from the dataset store (partition-aligned
  scans) are never re-split: their bucket layout is the zero-shuffle contract
  the store provides, and chunking it would discard that audit trail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.catalog import Catalog
from repro.engine.plan import PlanNode
from repro.engine.relation import Relation
from repro.engine.runtime.partitioned import estimated_bytes
from repro.engine.runtime.partitioner import HashPartitioner
from repro.engine.runtime.strategies import (
    DEFAULT_BROADCAST_THRESHOLD,
    BroadcastHashJoin,
    JoinStrategy,
    ShuffleHashJoin,
    choose_join_strategy,
)

#: A partition is skewed when it holds more than this multiple of the median
#: partition size (Spark: ``spark.sql.adaptive.skewJoin.skewedPartitionFactor``).
DEFAULT_SKEW_FACTOR = 4.0

#: Partitions smaller than this are never split, whatever the ratio says —
#: chunking a handful of rows only adds task overhead (Spark's analogue is
#: ``skewedPartitionThresholdInBytes``).
MIN_SKEW_PARTITION_ROWS = 16

#: Upper bound on chunks per split partition, so a degenerate layout (one hub
#: key holding every row, median 0) cannot explode into thousands of tasks.
MAX_SKEW_CHUNKS = 16

#: One co-partitioned (left, right) join task input.
PartitionPair = Tuple[Relation, Relation]


@dataclass(frozen=True)
class ReplanEvent:
    """One strategy revision made from observed input sizes."""

    initial: JoinStrategy
    revised: JoinStrategy
    reason: str
    #: ``id()`` of the revised join's plan node, so ``explain_analyze`` can
    #: attach the revision (and its reason) to the right operator.
    node_id: int = 0

    def describe(self) -> str:
        return f"{self.initial.name} -> {self.revised.name}: {self.reason}"


class AdaptivePlanner:
    """Re-plans joins from observed cardinalities as the plan materializes."""

    def __init__(
        self,
        catalog: Catalog,
        broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
        skew_factor: float = DEFAULT_SKEW_FACTOR,
        min_skew_rows: int = MIN_SKEW_PARTITION_ROWS,
    ) -> None:
        if skew_factor <= 1.0:
            raise ValueError("skew_factor must be > 1")
        self.catalog = catalog
        self.broadcast_threshold = broadcast_threshold
        self.skew_factor = skew_factor
        self.min_skew_rows = min_skew_rows
        #: Observed row counts per plan node (id-keyed), for the current query.
        self._observed_nodes: dict = {}
        #: Revisions made while executing the current query, with reasons —
        #: introspection for plan debugging (counts live in ExecutionMetrics).
        self.replan_events: List[ReplanEvent] = []

    # ------------------------------------------------------------------ #
    # Per-query lifecycle
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Clear per-query state (observed nodes survive only one execution)."""
        self._observed_nodes.clear()
        self.replan_events = []

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe(self, node: PlanNode, relation: Relation) -> None:
        """Record the materialized cardinality of one plan node."""
        self._observed_nodes[id(node)] = len(relation)

    def observed_rows(self, node: PlanNode) -> Optional[int]:
        return self._observed_nodes.get(id(node))

    def observe_scan(self, table_name: str, row_count: int) -> None:
        """Feed a full-table observation into the catalog's statistics cache.

        Subsequent queries (and re-plans of this one) estimate the table from
        this observed size instead of the possibly stale static statistics.
        """
        self.catalog.record_observed(table_name, row_count)

    # ------------------------------------------------------------------ #
    # Strategy revision
    # ------------------------------------------------------------------ #
    def revise(
        self,
        node: PlanNode,
        planned: JoinStrategy,
        left: Relation,
        right: Relation,
    ) -> Tuple[JoinStrategy, Optional[ReplanEvent]]:
        """Re-decide ``planned`` from the materialized join inputs.

        Applies the same decision rule as the static planner, but with
        observed sizes — so the outcome is what the planner *would* have
        chosen with perfect statistics.  Returns the strategy to execute and
        a :class:`ReplanEvent` when it differs from the plan.
        """
        self.observe(node.left, left)
        self.observe(node.right, right)
        left_bytes = estimated_bytes(left)
        right_bytes = estimated_bytes(right)
        # Same decision rule as the static planner, fed observed sizes.
        revised = choose_join_strategy(
            planned.keys,
            len(left),
            len(right),
            left_bytes,
            right_bytes,
            self.broadcast_threshold,
            outer=node.is_outer_join,
        )

        if revised.same_decision(planned):
            return revised, None
        event = ReplanEvent(
            planned,
            revised,
            self._reason(planned, revised, left_bytes, right_bytes),
            node_id=id(node),
        )
        self.replan_events.append(event)
        return revised, event

    def replan_event_for(self, node: PlanNode) -> Optional[ReplanEvent]:
        """The revision recorded for ``node`` during the last execution."""
        for event in self.replan_events:
            if event.node_id == id(node):
                return event
        return None

    def _reason(
        self,
        planned: JoinStrategy,
        revised: JoinStrategy,
        left_bytes: int,
        right_bytes: int,
    ) -> str:
        observed = f"observed left={left_bytes} B, right={right_bytes} B"
        if isinstance(revised, BroadcastHashJoin) and not isinstance(planned, BroadcastHashJoin):
            build = left_bytes if revised.build_side == "left" else right_bytes
            return (
                f"demoted to broadcast: {observed}; build side {build} B <= "
                f"threshold {self.broadcast_threshold} B"
            )
        if isinstance(revised, ShuffleHashJoin) and not isinstance(planned, ShuffleHashJoin):
            return (
                f"promoted to shuffle: {observed}; both sides > "
                f"threshold {self.broadcast_threshold} B"
            )
        return f"build side flipped: {observed}"

    # ------------------------------------------------------------------ #
    # Skew splitting
    # ------------------------------------------------------------------ #
    def split_skewed(
        self,
        pairs: List[PartitionPair],
        splittable_left: bool = True,
        splittable_right: bool = True,
    ) -> Tuple[List[PartitionPair], int]:
        """Subdivide skewed partitions into median-sized join tasks.

        For each co-partition pair whose left (or right) side exceeds
        ``skew_factor ×`` the median partition size of that side, the skewed
        side is chunked evenly and every chunk is paired with the *whole*
        co-partition of the other side — bag-equal to the unsplit join, but
        with a critical path bounded by the chunk size rather than the
        straggler.  Returns the expanded task list and the number of extra
        tasks created (0 when nothing is skewed).
        """
        left_target = self._chunk_target([len(l) for l, _ in pairs])
        right_target = self._chunk_target([len(r) for _, r in pairs])
        out: List[PartitionPair] = []
        extra = 0
        for left_part, right_part in pairs:
            left_chunks = self._chunks_for(len(left_part), left_target) if splittable_left else 1
            right_chunks = self._chunks_for(len(right_part), right_target) if splittable_right else 1
            # Only one side of a pair may be chunked (chunk x chunk pairing
            # would miss matches); split the more skewed side.
            if left_chunks >= right_chunks and left_chunks > 1:
                for chunk in self._split(left_part, left_chunks):
                    out.append((chunk, right_part))
                extra += left_chunks - 1
            elif right_chunks > 1:
                for chunk in self._split(right_part, right_chunks):
                    out.append((left_part, chunk))
                extra += right_chunks - 1
            else:
                out.append((left_part, right_part))
        return out, extra

    def _chunk_target(self, sizes: List[int]) -> int:
        """Desired rows per task: the median partition size (floored sanely)."""
        if not sizes:
            return 1
        ordered = sorted(sizes)
        median = ordered[len(ordered) // 2]
        return max(1, median)

    def _chunks_for(self, size: int, target: int) -> int:
        if size < self.min_skew_rows or size <= self.skew_factor * target:
            return 1
        return min(MAX_SKEW_CHUNKS, math.ceil(size / target))

    @staticmethod
    def _split(relation: Relation, chunks: int) -> List[Relation]:
        return HashPartitioner(chunks).split_evenly(relation)
