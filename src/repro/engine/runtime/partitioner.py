"""Hash partitioning of relations.

Spark distributes a DataFrame across executors by hashing the shuffle keys of
each row (``HashPartitioner``).  This module provides the same primitive for
the local engine: a deterministic, process-stable hash over term values (CRC32
over the N3 rendering, so partition assignment does not depend on Python's
per-process string-hash randomisation) and a :class:`HashPartitioner` that
splits a :class:`~repro.engine.relation.Relation` into ``num_partitions``
disjoint partitions such that rows with equal key values land in the same
partition — the co-location invariant every partitioned hash join relies on.
"""

from __future__ import annotations

import zlib
from typing import Any, List, Sequence, Tuple

from repro.engine.relation import Relation, Row


def stable_hash(value: Any) -> int:
    """Deterministic 32-bit hash of one term value.

    Stable across processes and runs (unlike ``hash(str)``), so partition
    assignments — and therefore test expectations — are reproducible.
    """
    if value is None:
        data = b"\x00"
    elif hasattr(value, "n3"):
        data = value.n3().encode("utf-8")
    else:
        data = repr(value).encode("utf-8")
    return zlib.crc32(data)


def key_partition_index(key: Tuple[Any, ...], num_partitions: int) -> int:
    """Partition index of one key tuple (CRC32 combined over the components)."""
    combined = 0
    for component in key:
        combined = zlib.crc32(stable_hash(component).to_bytes(4, "big"), combined)
    return combined % num_partitions


class HashPartitioner:
    """Splits relations into hash partitions keyed on join columns."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions

    def partition(self, relation: Relation, keys: Sequence[str]) -> List[Relation]:
        """Hash-partition ``relation`` on ``keys``.

        Rows with equal key values are guaranteed to share a partition; the
        union of all partitions is exactly the input bag.
        """
        if not keys:
            raise ValueError("hash partitioning requires at least one key column")
        if self.num_partitions == 1:
            return [relation]
        key_indexes = [relation.column_index(k) for k in keys]
        buckets: List[List[Row]] = [[] for _ in range(self.num_partitions)]
        for row in relation.rows:
            key = tuple(row[i] for i in key_indexes)
            buckets[key_partition_index(key, self.num_partitions)].append(row)
        return [Relation(relation.columns, bucket) for bucket in buckets]

    def split_evenly(self, relation: Relation) -> List[Relation]:
        """Split into ``num_partitions`` contiguous chunks of near-equal size.

        Used for the probe side of a broadcast join, where no co-location is
        needed and an even row count per task maximises parallel balance.
        """
        if self.num_partitions == 1:
            return [relation]
        total = len(relation.rows)
        base, remainder = divmod(total, self.num_partitions)
        chunks: List[Relation] = []
        start = 0
        for index in range(self.num_partitions):
            size = base + (1 if index < remainder else 0)
            chunks.append(Relation(relation.columns, relation.rows[start : start + size]))
            start += size
        return chunks
