"""Physical join strategies and the planning step that picks them.

Spark SQL chooses between a shuffle hash/sort-merge join and a broadcast hash
join per join operator: when one side's estimated size is below
``spark.sql.autoBroadcastJoinThreshold`` (10 MB by default), that side is
shipped whole to every executor and no shuffle of the large side is needed;
otherwise both sides are re-partitioned on the join keys.  This module
reproduces that decision for the logical plans of
:mod:`repro.engine.plan`: :func:`plan_join_strategies` walks a plan bottom-up,
estimates per-operator cardinalities from catalog statistics and annotates
every :class:`~repro.engine.plan.NaturalJoinNode` /
:class:`~repro.engine.plan.LeftOuterJoinNode` with a
:class:`ShuffleHashJoin` or :class:`BroadcastHashJoin` decision.

Two planning realities, both learned the hard way:

* A table *without* statistics must never be treated as empty.  The original
  planner estimated unknown inputs at 0 rows and broadcast them
  unconditionally — a 0-byte broadcast of a potentially huge table.
  :data:`UNKNOWN_ROWS` is the conservative sentinel: an unknown side is never
  broadcastable, so the join shuffles unless the *other* side is provably
  small.  Under adaptive execution the runtime later replaces the guess with
  the observed size (see :mod:`repro.engine.runtime.adaptive`).
* The plan annotation is an *intent*, not a record of what ran: the executor
  may fall back to the serial operator (single partition, cross join, empty
  input) or — with AQE — revise the strategy from observed sizes.
  :class:`PhysicalPlan` therefore tracks the initial and the executed strategy
  per join, so ``counts(executed=True)`` always reconciles with the
  ``shuffle_joins`` / ``broadcast_joins`` execution metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.catalog import Catalog
from repro.engine.ops import (
    AggregateNode,
    EmptyNode,
    LimitNode,
    Operation as PlanNode,
    OperationVisitor,
    SubqueryNode,
    TableScanNode,
    UnionNode,
)
from repro.engine.runtime.partitioned import BYTES_PER_VALUE

#: Spark's default ``spark.sql.autoBroadcastJoinThreshold``.
DEFAULT_BROADCAST_THRESHOLD = 10 * 1024 * 1024

#: Hard cap on the *observed* materialized size of a broadcast build side.
#: The broadcast threshold above is advisory and estimate-driven; this limit
#: is the memory-safety backstop checked by the executor against the build
#: relation that actually materialized — a broadcast whose build side exceeds
#: it is demoted to a shuffle regardless of what any planner decided
#: (analogous to driver/executor memory limits bounding Spark broadcasts).
DEFAULT_BROADCAST_MEMORY_LIMIT = 256 * 1024 * 1024

#: Cardinality sentinel for inputs the catalog knows nothing about.  An
#: unknown side is treated as arbitrarily large for broadcast decisions
#: (never broadcast), the exact opposite of the old 0-row default.
UNKNOWN_ROWS = -1


def _format_rows(rows: int) -> str:
    return "?" if rows == UNKNOWN_ROWS else str(rows)


@dataclass(frozen=True)
class JoinStrategy:
    """A physical join decision for one logical join node."""

    #: Shared join key columns (empty for a cross join).
    keys: Tuple[str, ...]
    #: Input cardinalities that drove the decision: catalog estimates for the
    #: initial plan (:data:`UNKNOWN_ROWS` when statistics are missing),
    #: observed row counts for strategies revised or recorded at run time.
    left_rows: int
    right_rows: int

    @property
    def name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        raise NotImplementedError

    def same_decision(self, other: "JoinStrategy") -> bool:
        """True when ``other`` encodes the same physical choice (ignoring rows)."""
        return self.name == other.name and getattr(self, "build_side", None) == getattr(
            other, "build_side", None
        )


@dataclass(frozen=True)
class ShuffleHashJoin(JoinStrategy):
    """Re-partition both sides on the join keys, join partition-wise."""

    def describe(self) -> str:
        keys = ", ".join(self.keys) if self.keys else "<cross>"
        return (
            f"ShuffleHashJoin(keys=[{keys}], left~{_format_rows(self.left_rows)} rows, "
            f"right~{_format_rows(self.right_rows)} rows)"
        )


@dataclass(frozen=True)
class BroadcastHashJoin(JoinStrategy):
    """Ship the small (build) side to every partition of the other side."""

    build_side: str = "right"  # "left" or "right"

    def describe(self) -> str:
        keys = ", ".join(self.keys) if self.keys else "<cross>"
        return (
            f"BroadcastHashJoin(build={self.build_side}, keys=[{keys}], "
            f"left~{_format_rows(self.left_rows)} rows, right~{_format_rows(self.right_rows)} rows)"
        )


@dataclass(frozen=True)
class SerialJoin(JoinStrategy):
    """Executed by the in-process serial operator (parallel-runtime fallback).

    The executor falls back to the serial join for degenerate inputs — a
    single-partition runtime, a cross join, or an empty side.  Recording the
    fallback as the *executed* strategy keeps :meth:`PhysicalPlan.counts`
    honest: a join annotated ``BroadcastHashJoin`` that never broadcast
    anything no longer inflates the broadcast column.
    """

    reason: str = ""

    def describe(self) -> str:
        keys = ", ".join(self.keys) if self.keys else "<cross>"
        return (
            f"SerialJoin(keys=[{keys}], reason={self.reason or 'fallback'}, "
            f"left~{_format_rows(self.left_rows)} rows, right~{_format_rows(self.right_rows)} rows)"
        )


class PhysicalPlan:
    """Join-strategy annotations for one logical plan.

    Nodes are identified by object identity, which is safe because the
    annotations never outlive the compiled plan they were derived from.

    Every join carries two annotations: the *initial* strategy chosen by the
    static planner from catalog estimates, and (once the plan has run) the
    *executed* strategy the runtime actually applied — which differs when
    adaptive execution replanned the join from observed sizes or when the
    executor fell back to the serial operator.
    """

    def __init__(self) -> None:
        self._node_order: List[int] = []
        self._initial: Dict[int, JoinStrategy] = {}
        self._executed: Dict[int, JoinStrategy] = {}

    def annotate(self, node: PlanNode, strategy: JoinStrategy) -> None:
        node_id = id(node)
        if node_id not in self._initial:
            self._node_order.append(node_id)
        self._initial[node_id] = strategy

    def record_executed(self, node: PlanNode, strategy: JoinStrategy) -> None:
        """Record the strategy the runtime actually applied to ``node``."""
        self._executed[id(node)] = strategy

    def strategy_for(self, node: PlanNode) -> Optional[JoinStrategy]:
        """The initial (statically planned) strategy for ``node``."""
        return self._initial.get(id(node))

    def executed_strategy_for(self, node: PlanNode) -> Optional[JoinStrategy]:
        return self._executed.get(id(node))

    def strategies(self) -> List[JoinStrategy]:
        """Initial join strategies in bottom-up planning order."""
        return [self._initial[node_id] for node_id in self._node_order]

    def executed_strategies(self) -> List[JoinStrategy]:
        """Executed strategies in planning order (initial where nothing ran)."""
        return [
            self._executed.get(node_id, self._initial[node_id])
            for node_id in self._node_order
        ]

    def replans(self) -> List[Tuple[JoinStrategy, JoinStrategy]]:
        """All ``(initial, executed)`` pairs whose physical decision differs.

        Includes both AQE revisions (shuffle demoted to broadcast, broadcast
        promoted to shuffle, build side flipped) and serial fallbacks.
        """
        out: List[Tuple[JoinStrategy, JoinStrategy]] = []
        for node_id in self._node_order:
            executed = self._executed.get(node_id)
            if executed is not None and not executed.same_decision(self._initial[node_id]):
                out.append((self._initial[node_id], executed))
        return out

    def describe(self, executed: bool = False) -> List[str]:
        chosen = self.executed_strategies() if executed else self.strategies()
        return [strategy.describe() for strategy in chosen]

    def counts(self, executed: bool = False) -> Dict[str, int]:
        counts: Dict[str, int] = {"ShuffleHashJoin": 0, "BroadcastHashJoin": 0}
        chosen = self.executed_strategies() if executed else self.strategies()
        for strategy in chosen:
            counts[strategy.name] = counts.get(strategy.name, 0) + 1
        return counts


class _RowEstimator(OperationVisitor):
    """Cardinality estimation as a visitor over the plan IR.

    Unary operators default to their child's estimate via
    :meth:`generic_visit`; only the nodes with a sharper rule override it.
    """

    def generic_visit(self, node: PlanNode, catalog: Catalog, use_observed: bool) -> int:
        children = node.children()
        if len(children) == 1:
            # Filters, projections, distinct and sorts keep the child estimate.
            return self.visit(children[0], catalog, use_observed)
        return 0

    def visit_empty(self, node: EmptyNode, catalog: Catalog, use_observed: bool) -> int:
        return 0

    def visit_table_scan(self, node: TableScanNode, catalog: Catalog, use_observed: bool) -> int:
        return _base_rows(node.table_name, catalog, use_observed)

    def visit_subquery(self, node: SubqueryNode, catalog: Catalog, use_observed: bool) -> int:
        rows = _base_rows(node.table_name, catalog, use_observed)
        if rows == UNKNOWN_ROWS:
            # Selections cannot refine an unknown base cardinality.
            return UNKNOWN_ROWS
        statistics = catalog.statistics(node.table_name)
        for column, _ in node.conditions:
            distinct = 0
            if statistics is not None:
                distinct = statistics.distinct_subjects if column == "s" else statistics.distinct_objects
            rows = rows // max(1, distinct) if distinct else max(1, rows // 10)
        return rows

    def _visit_join(self, node: PlanNode, catalog: Catalog, use_observed: bool) -> int:
        left = self.visit(node.left, catalog, use_observed)
        right = self.visit(node.right, catalog, use_observed)
        if UNKNOWN_ROWS in (left, right):
            return UNKNOWN_ROWS
        return max(left, right)

    visit_natural_join = _visit_join
    visit_left_outer_join = _visit_join

    def visit_union(self, node: UnionNode, catalog: Catalog, use_observed: bool) -> int:
        left = self.visit(node.left, catalog, use_observed)
        right = self.visit(node.right, catalog, use_observed)
        if UNKNOWN_ROWS in (left, right):
            return UNKNOWN_ROWS
        return left + right

    def visit_limit(self, node: LimitNode, catalog: Catalog, use_observed: bool) -> int:
        child_rows = self.visit(node.child, catalog, use_observed)
        if node.limit is None:
            return child_rows
        # LIMIT bounds even an unknown input.
        return node.limit if child_rows == UNKNOWN_ROWS else min(child_rows, node.limit)

    def visit_aggregate(self, node: AggregateNode, catalog: Catalog, use_observed: bool) -> int:
        if not node.group_keys:
            return 1  # implicit grouping always yields exactly one row
        # Grouping cannot grow the input; the child estimate is the bound.
        return self.visit(node.child, catalog, use_observed)


_ROW_ESTIMATOR = _RowEstimator()


def estimate_rows(node: PlanNode, catalog: Catalog, use_observed: bool = True) -> int:
    """Bottom-up cardinality estimate from catalog statistics.

    Deliberately simple, in the spirit of Spark's pre-CBO size estimation:
    base cardinalities come from table statistics, equality selections divide
    by the distinct count of the constrained column, joins take the larger
    input (conservative for FK-style RDF joins) and unions add up.

    With ``use_observed`` (the default), observed cardinalities recorded by
    adaptive execution (:meth:`~repro.engine.catalog.Catalog.record_observed`)
    take precedence over static statistics, so repeated queries plan from
    truth even when the statistics are stale.  Non-adaptive executors pass
    ``use_observed=False`` so their plans depend on the static statistics
    alone — an ``adaptive_enabled=False`` session is reproducible even when
    an adaptive session already populated the shared catalog's cache.  A
    table with neither statistics nor a usable observation estimates to
    :data:`UNKNOWN_ROWS` — *not* 0 — and unknown propagates up through joins
    and unions.
    """
    return _ROW_ESTIMATOR.visit(node, catalog, use_observed)


def _base_rows(table_name: str, catalog: Catalog, use_observed: bool) -> int:
    if use_observed:
        observed = catalog.observed_rows(table_name)
        if observed is not None:
            return observed
    statistics = catalog.statistics(table_name)
    return statistics.row_count if statistics is not None else UNKNOWN_ROWS


def _estimated_bytes(rows: int, columns: int) -> Optional[int]:
    """Estimated exchange size; ``None`` when the cardinality is unknown."""
    if rows == UNKNOWN_ROWS:
        return None
    return rows * max(1, columns) * BYTES_PER_VALUE


def plan_join_strategies(
    plan: PlanNode,
    catalog: Catalog,
    broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
    use_observed: bool = True,
) -> PhysicalPlan:
    """Annotate every join in ``plan`` with a physical strategy.

    The decision rule mirrors Spark SQL: broadcast when the candidate build
    side's estimated size is *known* and at or below ``broadcast_threshold``,
    shuffle otherwise.  An unknown-size side is never a broadcast candidate.
    For a left outer join only the right side is broadcastable (broadcasting
    the preserved side would lose unmatched rows); a join without shared keys
    degenerates to a broadcast nested-loop join of the smaller (or only
    known-size) side, as in Spark.  ``use_observed`` is forwarded to
    :func:`estimate_rows` (non-adaptive executors pass ``False``).
    """
    physical = PhysicalPlan()
    _annotate(plan, catalog, broadcast_threshold, physical, use_observed)
    return physical


def _fits(size_bytes: Optional[int], threshold: int) -> bool:
    return size_bytes is not None and size_bytes <= threshold


def _smaller_side(left_bytes: Optional[int], right_bytes: Optional[int]) -> str:
    """Pick a build side preferring known-and-smaller; ties go left."""
    if left_bytes is None and right_bytes is None:
        return "left"
    if left_bytes is None:
        return "right"
    if right_bytes is None:
        return "left"
    return "left" if left_bytes <= right_bytes else "right"


def choose_join_strategy(
    keys: Tuple[str, ...],
    left_rows: int,
    right_rows: int,
    left_bytes: Optional[int],
    right_bytes: Optional[int],
    threshold: int,
    outer: bool,
) -> JoinStrategy:
    """The one broadcast/shuffle decision rule, shared by both planners.

    The static planner calls this with *estimated* byte sizes (``None`` for
    unknown cardinalities); the adaptive planner calls it with *observed*
    sizes at the join's materialization boundary.  Keeping a single rule
    guarantees an adaptive revision is exactly what the static planner would
    have chosen with perfect statistics — any future change to the decision
    (e.g. a broadcast memory guard) applies to both automatically.
    """
    if outer:
        # Only the non-preserved (right) side is broadcastable: broadcasting
        # the preserved side would lose unmatched rows.
        if _fits(right_bytes, threshold) or not keys:
            return BroadcastHashJoin(keys, left_rows, right_rows, build_side="right")
        return ShuffleHashJoin(keys, left_rows, right_rows)
    if not keys:
        # A cross join has no shuffle alternative: broadcast the side most
        # likely to be small (the only known side, or the smaller estimate).
        return BroadcastHashJoin(
            keys, left_rows, right_rows, build_side=_smaller_side(left_bytes, right_bytes)
        )
    if _fits(left_bytes, threshold) or _fits(right_bytes, threshold):
        build_side = _smaller_side(
            left_bytes if _fits(left_bytes, threshold) else None,
            right_bytes if _fits(right_bytes, threshold) else None,
        )
        return BroadcastHashJoin(keys, left_rows, right_rows, build_side=build_side)
    return ShuffleHashJoin(keys, left_rows, right_rows)


def _annotate(
    node: PlanNode,
    catalog: Catalog,
    threshold: int,
    physical: PhysicalPlan,
    use_observed: bool = True,
) -> None:
    for child in node.children():
        _annotate(child, catalog, threshold, physical, use_observed)
    if not node.is_join:
        return
    left_columns = node.left.output_columns()
    right_columns = node.right.output_columns()
    keys = tuple(c for c in left_columns if c in right_columns)
    left_rows = estimate_rows(node.left, catalog, use_observed)
    right_rows = estimate_rows(node.right, catalog, use_observed)
    physical.annotate(
        node,
        choose_join_strategy(
            keys,
            left_rows,
            right_rows,
            _estimated_bytes(left_rows, len(left_columns)),
            _estimated_bytes(right_rows, len(right_columns)),
            threshold,
            outer=node.is_outer_join,
        ),
    )
