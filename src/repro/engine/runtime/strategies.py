"""Physical join strategies and the planning step that picks them.

Spark SQL chooses between a shuffle hash/sort-merge join and a broadcast hash
join per join operator: when one side's estimated size is below
``spark.sql.autoBroadcastJoinThreshold`` (10 MB by default), that side is
shipped whole to every executor and no shuffle of the large side is needed;
otherwise both sides are re-partitioned on the join keys.  This module
reproduces that decision for the logical plans of
:mod:`repro.engine.plan`: :func:`plan_join_strategies` walks a plan bottom-up,
estimates per-operator cardinalities from catalog statistics and annotates
every :class:`~repro.engine.plan.NaturalJoinNode` /
:class:`~repro.engine.plan.LeftOuterJoinNode` with a
:class:`ShuffleHashJoin` or :class:`BroadcastHashJoin` decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.catalog import Catalog
from repro.engine.plan import (
    DistinctNode,
    EmptyNode,
    FilterNode,
    LeftOuterJoinNode,
    LimitNode,
    NaturalJoinNode,
    OrderByNode,
    PlanNode,
    ProjectNode,
    SubqueryNode,
    TableScanNode,
    UnionNode,
)
from repro.engine.runtime.partitioned import BYTES_PER_VALUE

#: Spark's default ``spark.sql.autoBroadcastJoinThreshold``.
DEFAULT_BROADCAST_THRESHOLD = 10 * 1024 * 1024


@dataclass(frozen=True)
class JoinStrategy:
    """A physical join decision for one logical join node."""

    #: Shared join key columns (empty for a cross join).
    keys: Tuple[str, ...]
    #: Estimated input cardinalities that drove the decision.
    left_rows: int
    right_rows: int

    @property
    def name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ShuffleHashJoin(JoinStrategy):
    """Re-partition both sides on the join keys, join partition-wise."""

    def describe(self) -> str:
        keys = ", ".join(self.keys) if self.keys else "<cross>"
        return f"ShuffleHashJoin(keys=[{keys}], left~{self.left_rows} rows, right~{self.right_rows} rows)"


@dataclass(frozen=True)
class BroadcastHashJoin(JoinStrategy):
    """Ship the small (build) side to every partition of the other side."""

    build_side: str = "right"  # "left" or "right"

    def describe(self) -> str:
        keys = ", ".join(self.keys) if self.keys else "<cross>"
        return (
            f"BroadcastHashJoin(build={self.build_side}, keys=[{keys}], "
            f"left~{self.left_rows} rows, right~{self.right_rows} rows)"
        )


class PhysicalPlan:
    """Join-strategy annotations for one logical plan.

    Nodes are identified by object identity, which is safe because the
    annotations never outlive the compiled plan they were derived from.
    """

    def __init__(self) -> None:
        self._strategies: Dict[int, JoinStrategy] = {}
        self._order: List[JoinStrategy] = []

    def annotate(self, node: PlanNode, strategy: JoinStrategy) -> None:
        self._strategies[id(node)] = strategy
        self._order.append(strategy)

    def strategy_for(self, node: PlanNode) -> Optional[JoinStrategy]:
        return self._strategies.get(id(node))

    def strategies(self) -> List[JoinStrategy]:
        """All join strategies in bottom-up planning order."""
        return list(self._order)

    def describe(self) -> List[str]:
        return [strategy.describe() for strategy in self._order]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {"ShuffleHashJoin": 0, "BroadcastHashJoin": 0}
        for strategy in self._order:
            counts[strategy.name] = counts.get(strategy.name, 0) + 1
        return counts


def estimate_rows(node: PlanNode, catalog: Catalog) -> int:
    """Bottom-up cardinality estimate from catalog statistics.

    Deliberately simple, in the spirit of Spark's pre-CBO size estimation:
    base cardinalities come from table statistics, equality selections divide
    by the distinct count of the constrained column, joins take the larger
    input (conservative for FK-style RDF joins) and unions add up.
    """
    if isinstance(node, EmptyNode):
        return 0
    if isinstance(node, TableScanNode):
        statistics = catalog.statistics(node.table_name)
        return statistics.row_count if statistics else 0
    if isinstance(node, SubqueryNode):
        statistics = catalog.statistics(node.table_name)
        rows = statistics.row_count if statistics else 0
        for column, _ in node.conditions:
            distinct = 0
            if statistics is not None:
                distinct = statistics.distinct_subjects if column == "s" else statistics.distinct_objects
            rows = rows // max(1, distinct) if distinct else max(1, rows // 10)
        return rows
    if isinstance(node, (NaturalJoinNode, LeftOuterJoinNode)):
        return max(estimate_rows(node.left, catalog), estimate_rows(node.right, catalog))
    if isinstance(node, UnionNode):
        return estimate_rows(node.left, catalog) + estimate_rows(node.right, catalog)
    if isinstance(node, (FilterNode, ProjectNode, DistinctNode, OrderByNode)):
        return estimate_rows(node.child, catalog)
    if isinstance(node, LimitNode):
        child_rows = estimate_rows(node.child, catalog)
        return min(child_rows, node.limit) if node.limit is not None else child_rows
    return 0


def _estimated_bytes(rows: int, columns: int) -> int:
    return rows * max(1, columns) * BYTES_PER_VALUE


def plan_join_strategies(
    plan: PlanNode,
    catalog: Catalog,
    broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
) -> PhysicalPlan:
    """Annotate every join in ``plan`` with a physical strategy.

    The decision rule mirrors Spark SQL: broadcast when the candidate build
    side's estimated size is at or below ``broadcast_threshold``, shuffle
    otherwise.  For a left outer join only the right side is broadcastable
    (broadcasting the preserved side would lose unmatched rows); a join
    without shared keys degenerates to a broadcast nested-loop join of the
    smaller side, as in Spark.
    """
    physical = PhysicalPlan()
    _annotate(plan, catalog, broadcast_threshold, physical)
    return physical


def _annotate(node: PlanNode, catalog: Catalog, threshold: int, physical: PhysicalPlan) -> None:
    for child in node.children():
        _annotate(child, catalog, threshold, physical)
    if not isinstance(node, (NaturalJoinNode, LeftOuterJoinNode)):
        return
    left_columns = node.left.output_columns()
    right_columns = node.right.output_columns()
    keys = tuple(c for c in left_columns if c in right_columns)
    left_rows = estimate_rows(node.left, catalog)
    right_rows = estimate_rows(node.right, catalog)
    left_bytes = _estimated_bytes(left_rows, len(left_columns))
    right_bytes = _estimated_bytes(right_rows, len(right_columns))

    if isinstance(node, LeftOuterJoinNode):
        if right_bytes <= threshold or not keys:
            strategy: JoinStrategy = BroadcastHashJoin(keys, left_rows, right_rows, build_side="right")
        else:
            strategy = ShuffleHashJoin(keys, left_rows, right_rows)
        physical.annotate(node, strategy)
        return

    if not keys or min(left_bytes, right_bytes) <= threshold:
        build_side = "left" if left_bytes <= right_bytes else "right"
        physical.annotate(node, BroadcastHashJoin(keys, left_rows, right_rows, build_side=build_side))
    else:
        physical.annotate(node, ShuffleHashJoin(keys, left_rows, right_rows))
