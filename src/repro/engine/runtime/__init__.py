"""Partitioned parallel execution runtime (the Spark execution-layer stand-in).

S2RDF's VP/ExtVP tables live as partitioned Parquet files that Spark SQL
executes in parallel; this package gives the local engine the same execution
axis:

* :mod:`~repro.engine.runtime.partitioner` — a deterministic
  :class:`HashPartitioner` that splits relations on join-key hashes.
* :mod:`~repro.engine.runtime.partitioned` — :class:`PartitionedRelation`,
  a schema-sharing list of disjoint partitions with byte accounting.
* :mod:`~repro.engine.runtime.strategies` — the physical-planning step:
  per-join :class:`ShuffleHashJoin` / :class:`BroadcastHashJoin` decisions
  driven by catalog statistics and a Spark-style
  ``autoBroadcastJoinThreshold``.
* :mod:`~repro.engine.runtime.adaptive` — :class:`AdaptivePlanner`, the
  Spark-3-style adaptive execution layer: re-decides each join's strategy
  from observed input sizes, splits skewed partitions and feeds observed
  cardinalities back into the catalog.
* :mod:`~repro.engine.runtime.executor` — :class:`ParallelExecutor`, which
  runs per-partition join tasks on a thread pool, merges the partition
  outputs and records observed shuffle/broadcast volume in the metrics.
"""

from repro.engine.runtime.adaptive import (
    DEFAULT_SKEW_FACTOR,
    AdaptivePlanner,
    ReplanEvent,
)
from repro.engine.runtime.executor import ParallelExecutor
from repro.engine.runtime.partitioned import BYTES_PER_VALUE, PartitionedRelation, estimated_bytes
from repro.engine.runtime.partitioner import HashPartitioner, key_partition_index, stable_hash
from repro.engine.runtime.strategies import (
    DEFAULT_BROADCAST_MEMORY_LIMIT,
    DEFAULT_BROADCAST_THRESHOLD,
    UNKNOWN_ROWS,
    BroadcastHashJoin,
    JoinStrategy,
    PhysicalPlan,
    SerialJoin,
    ShuffleHashJoin,
    choose_join_strategy,
    estimate_rows,
    plan_join_strategies,
)

__all__ = [
    "BYTES_PER_VALUE",
    "DEFAULT_BROADCAST_MEMORY_LIMIT",
    "DEFAULT_BROADCAST_THRESHOLD",
    "DEFAULT_SKEW_FACTOR",
    "UNKNOWN_ROWS",
    "AdaptivePlanner",
    "BroadcastHashJoin",
    "HashPartitioner",
    "JoinStrategy",
    "ParallelExecutor",
    "PartitionedRelation",
    "PhysicalPlan",
    "ReplanEvent",
    "SerialJoin",
    "ShuffleHashJoin",
    "choose_join_strategy",
    "estimate_rows",
    "estimated_bytes",
    "key_partition_index",
    "plan_join_strategies",
    "stable_hash",
]
