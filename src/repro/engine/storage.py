"""Columnar storage: a real page codec plus Parquet-like size accounting.

The paper reports the physical HDFS footprint of each layout (Table 2 and
Table 6) using the Parquet columnar format with snappy compression plus
dictionary and run-length encoding.  :class:`ParquetSizeModel` estimates the
encoded size of a relation with exactly those mechanisms, and
:class:`HdfsSimulator` keeps a flat namespace of "files" so that layouts can
report total storage the way the paper's tables do.

Beside the size model lives the *real* encoding used by the persistent
dataset store (:mod:`repro.store`): columns of dictionary-encoded term ids are
serialised as run-length-encoded binary pages (:func:`encode_id_column` /
:func:`decode_id_column`), and every page carries a :class:`ZoneMap` (min/max
id, row count, distinct count) that scans use to prune segments without
reading them.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.relation import Relation

#: Dictionary id standing in for SQL NULL inside an encoded column page.
NULL_ID = -1

_PAGE_HEADER = struct.Struct("<II")  # run count, row count
_RUN = struct.Struct("<iI")  # value id (NULL_ID for None), run length


def encode_id_column(ids: Sequence[int]) -> bytes:
    """Serialise a column of dictionary ids as a run-length-encoded page.

    Consecutive equal ids collapse into one ``(id, run_length)`` pair — the
    same mechanism Parquet applies after dictionary encoding, except this one
    actually produces bytes that :func:`decode_id_column` reads back.
    """
    runs: List[Tuple[int, int]] = []
    for value in ids:
        if runs and runs[-1][0] == value:
            runs[-1] = (value, runs[-1][1] + 1)
        else:
            runs.append((value, 1))
    parts = [_PAGE_HEADER.pack(len(runs), len(ids))]
    parts.extend(_RUN.pack(value, length) for value, length in runs)
    return b"".join(parts)


def decode_id_column(page: bytes) -> List[int]:
    """Expand a page produced by :func:`encode_id_column` back into ids."""
    return list(decode_id_column_array(page))


_ARRAY_ITEM = struct.Struct("<q")


def decode_id_column_array(page: bytes):
    """Expand an RLE page into a flat ``array('q')`` id column.

    This is the vectorized scan path: each run expands via one bytes-repeat
    into the array buffer, so no per-row Python integer objects are created
    until (and unless) a row is actually decoded to terms.
    """
    from array import array

    if len(page) < _PAGE_HEADER.size:
        raise ValueError("truncated column page header")
    run_count, row_count = _PAGE_HEADER.unpack_from(page, 0)
    expected = _PAGE_HEADER.size + run_count * _RUN.size
    if len(page) != expected:
        raise ValueError(f"column page has {len(page)} bytes, expected {expected}")
    ids = array("q")
    offset = _PAGE_HEADER.size
    for _ in range(run_count):
        value, length = _RUN.unpack_from(page, offset)
        ids.frombytes(_ARRAY_ITEM.pack(value) * length)
        offset += _RUN.size
    if len(ids) != row_count:
        raise ValueError(f"column page decoded {len(ids)} rows, header says {row_count}")
    return ids


@dataclass(frozen=True)
class ZoneMap:
    """Per-segment statistics enabling scans to skip whole segments.

    ``min_id``/``max_id`` bound the dictionary ids present in the segment
    (NULLs excluded), so an equality predicate whose encoded value falls
    outside the range proves the segment empty without decoding it.  The row
    and distinct counts round-trip into
    :class:`~repro.engine.catalog.TableStatistics` when a dataset is opened.
    """

    min_id: int
    max_id: int
    row_count: int
    distinct_count: int
    null_count: int = 0

    @classmethod
    def from_ids(cls, ids: Sequence[int]) -> "ZoneMap":
        present = [i for i in ids if i != NULL_ID]
        return cls(
            min_id=min(present) if present else NULL_ID,
            max_id=max(present) if present else NULL_ID,
            row_count=len(ids),
            distinct_count=len(set(present)),
            null_count=len(ids) - len(present),
        )

    def may_contain(self, term_id: int) -> bool:
        """False only when the segment provably lacks ``term_id``."""
        if term_id == NULL_ID:
            return self.null_count > 0
        if self.row_count == 0 or self.min_id == NULL_ID:
            return False
        return self.min_id <= term_id <= self.max_id

    def to_json(self) -> Dict[str, int]:
        return {
            "min_id": self.min_id,
            "max_id": self.max_id,
            "row_count": self.row_count,
            "distinct_count": self.distinct_count,
            "null_count": self.null_count,
        }

    @classmethod
    def from_json(cls, data: Dict[str, int]) -> "ZoneMap":
        return cls(
            min_id=data["min_id"],
            max_id=data["max_id"],
            row_count=data["row_count"],
            distinct_count=data["distinct_count"],
            null_count=data.get("null_count", 0),
        )


def _term_length(value: Any) -> int:
    """Byte length of one value when stored in a dictionary page."""
    if value is None:
        return 1
    if hasattr(value, "n3"):
        return len(value.n3())
    return len(str(value))


@dataclass
class ColumnEncodingStats:
    """Per-column breakdown of the encoded size."""

    name: str
    row_count: int
    distinct_count: int
    dictionary_bytes: int
    data_bytes: int
    run_length_runs: int

    @property
    def total_bytes(self) -> int:
        return self.dictionary_bytes + self.data_bytes


@dataclass
class ParquetSizeModel:
    """Estimates the on-disk size of a relation in a Parquet-like format.

    The model applies dictionary encoding per column (pointer width grows with
    the number of distinct values), run-length encoding on consecutive equal
    values, a snappy-style compression factor on the resulting pages and a
    fixed per-file metadata footer.
    """

    snappy_factor: float = 0.65
    metadata_bytes: int = 600
    page_overhead_bytes: int = 64

    def column_stats(self, relation: Relation, column: str) -> ColumnEncodingStats:
        values = relation.column_values(column)
        distinct = set(values)
        distinct_count = max(1, len(distinct))
        dictionary_bytes = sum(_term_length(v) for v in distinct)
        code_bits = max(1, math.ceil(math.log2(distinct_count))) if distinct_count > 1 else 1
        # Run-length encoding on consecutive equal codes.
        runs = 0
        previous = object()
        for value in values:
            if value != previous:
                runs += 1
                previous = value
        runs = max(runs, 1) if values else 0
        # Each run stores a code plus a varint run length (~2 bytes).
        data_bytes = math.ceil(runs * (code_bits / 8 + 2)) if values else 0
        return ColumnEncodingStats(
            name=column,
            row_count=len(values),
            distinct_count=len(distinct),
            dictionary_bytes=dictionary_bytes,
            data_bytes=data_bytes,
            run_length_runs=runs,
        )

    def estimate_bytes(self, relation: Relation) -> int:
        """Total estimated file size of ``relation``."""
        if not relation.columns:
            return self.metadata_bytes
        total = self.metadata_bytes
        for column in relation.columns:
            stats = self.column_stats(relation, column)
            total += self.page_overhead_bytes
            total += math.ceil(stats.total_bytes * self.snappy_factor)
        return total

    def estimate_ntriples_bytes(self, relation: Relation) -> int:
        """Size of the same data as uncompressed row-oriented text (N-Triples-like)."""
        total = 0
        for row in relation.rows:
            total += sum(_term_length(value) + 1 for value in row) + 2
        return total


@dataclass
class StoredFile:
    """One file in the simulated HDFS namespace."""

    path: str
    row_count: int
    size_bytes: int
    columns: Tuple[str, ...]


class HdfsSimulator:
    """A flat namespace of stored files with size bookkeeping."""

    def __init__(self, size_model: Optional[ParquetSizeModel] = None) -> None:
        self.size_model = size_model or ParquetSizeModel()
        self._files: Dict[str, StoredFile] = {}

    def write(self, path: str, relation: Relation) -> StoredFile:
        """Persist a relation as a Parquet-like file and return its metadata."""
        stored = StoredFile(
            path=path,
            row_count=len(relation),
            size_bytes=self.size_model.estimate_bytes(relation),
            columns=relation.columns,
        )
        self._files[path] = stored
        return stored

    def write_text(self, path: str, relation: Relation) -> StoredFile:
        """Persist a relation as uncompressed text (for the "original" dataset size)."""
        stored = StoredFile(
            path=path,
            row_count=len(relation),
            size_bytes=self.size_model.estimate_ntriples_bytes(relation),
            columns=relation.columns,
        )
        self._files[path] = stored
        return stored

    def record(self, path: str, row_count: int, size_bytes: int, columns: Tuple[str, ...]) -> StoredFile:
        """Register a file whose size was measured externally.

        The dataset store uses this when a session is opened from disk: the
        segment files already exist, so their *actual* byte sizes enter the
        namespace instead of a model estimate.
        """
        stored = StoredFile(path=path, row_count=row_count, size_bytes=size_bytes, columns=columns)
        self._files[path] = stored
        return stored

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def exists(self, path: str) -> bool:
        return path in self._files

    def file(self, path: str) -> StoredFile:
        return self._files[path]

    def files(self, prefix: str = "") -> List[StoredFile]:
        return [f for p, f in sorted(self._files.items()) if p.startswith(prefix)]

    def total_bytes(self, prefix: str = "") -> int:
        return sum(f.size_bytes for f in self.files(prefix))

    def total_rows(self, prefix: str = "") -> int:
        return sum(f.row_count for f in self.files(prefix))

    def file_count(self, prefix: str = "") -> int:
        return len(self.files(prefix))


def format_bytes(size: int) -> str:
    """Human-readable byte sizes (used by the benchmark reports)."""
    units = ["B", "KB", "MB", "GB", "TB"]
    value = float(size)
    for unit in units:
        if value < 1024 or unit == units[-1]:
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} TB"
