"""Observability: query tracing, metrics registry, and EXPLAIN ANALYZE.

This package is deliberately dependency-free within the engine: the tracer and
registry are imported *by* the engine layers, never the other way round, so
instrumentation can be threaded through scans, joins and store operations
without import cycles.
"""

from repro.obs.registry import (
    DEFAULT_BUCKET_BOUNDS,
    Counter,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NULL_SPAN, NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKET_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
]
