"""Observability: tracing, metrics, EXPLAIN ANALYZE, and the workload journal.

This package is deliberately dependency-free within the engine: the tracer and
registry are imported *by* the engine layers, never the other way round, so
instrumentation can be threaded through scans, joins and store operations
without import cycles.

Per-query observability (tracer spans, :mod:`~repro.obs.explain`) answers
"what did this query do"; the workload layer (:mod:`~repro.obs.journal`,
:mod:`~repro.obs.workload`) answers "what does this *workload* do over time" —
a persistent JSONL journal of every executed query, and an analyzer that
aggregates it into hot templates, table reuse and materialization advice.
"""

from repro.obs.journal import (
    JournalRecord,
    QueryJournal,
    fingerprint_query,
    fingerprint_text,
    open_dataset_journal,
    read_dataset_journal,
    template_text,
)
from repro.obs.registry import (
    DEFAULT_BUCKET_BOUNDS,
    Counter,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NULL_SPAN, NULL_TRACER, Span, Tracer
from repro.obs.workload import (
    CacheCandidate,
    TableReuse,
    TemplateStats,
    WorkloadAnalysis,
    analyze_dataset,
    analyze_journal,
)

__all__ = [
    "CacheCandidate",
    "Counter",
    "DEFAULT_BUCKET_BOUNDS",
    "Histogram",
    "JournalRecord",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "QueryJournal",
    "Span",
    "TableReuse",
    "TemplateStats",
    "Tracer",
    "WorkloadAnalysis",
    "analyze_dataset",
    "analyze_journal",
    "fingerprint_query",
    "fingerprint_text",
    "open_dataset_journal",
    "read_dataset_journal",
    "template_text",
]
