"""The persistent query journal: one structured record per executed query.

The per-query :class:`~repro.engine.metrics.ExecutionMetrics` object dies with
its :class:`~repro.core.results.QueryResult`; the journal is the *workload*
memory: every query appends one JSON record — a constant-stripped template
fingerprint, the dataset's manifest epoch, phase timings, row counts, scanned
tables, estimate-vs-observed cardinality error, AQE activity and store
pruning counters — to ``journal/`` under the stored dataset (or to a bounded
in-memory ring for ephemeral sessions).  The workload analyzer
(:mod:`repro.obs.workload`) aggregates these records across sessions into hot
templates, per-table reuse counts and materialization advice — the evidence
stream the ROADMAP's epoch-keyed caching and workload-adaptive ExtVP items
consume.

Template fingerprints are computed on the parsed algebra, not the query text:
variables are canonicalised by order of first appearance and every non-
predicate constant is stripped to a ``*`` placeholder, so all instantiations
of one WatDiv-style template collapse into one fingerprint while queries with
different structure (or different predicates) stay distinct.

Persistence is append-only JSONL with rotation: records go to
``queries-<n>.jsonl`` files capped at :data:`DEFAULT_MAX_FILE_BYTES` each and
:data:`DEFAULT_MAX_FILES` files total (oldest deleted first), so a long-lived
serving session cannot grow the journal without bound.  Template strings are
deduplicated into a ``templates.jsonl`` sidecar (one line per distinct
fingerprint) so record lines stay small.  A truncated trailing line (crashed
writer) is skipped on read, never propagated.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.sparql.algebra import (
    BGP,
    Distinct,
    Filter,
    Join,
    LeftJoin,
    OrderBy,
    PatternVisitor,
    Projection,
    Query,
    Slice,
    TriplePattern,
    Union,
)
from repro.rdf.terms import Variable

#: Name of the journal directory under a stored dataset root.
JOURNAL_DIR = "journal"

#: Rotation caps: bytes per journal file and files kept (oldest pruned).
DEFAULT_MAX_FILE_BYTES = 1024 * 1024
DEFAULT_MAX_FILES = 8

#: Records kept by an in-memory (ephemeral-session) journal.
DEFAULT_MAX_MEMORY_RECORDS = 10_000

#: Sidecar mapping template fingerprints to their full template text; written
#: once per distinct fingerprint so the hot append path never re-encodes the
#: (long) template string.
TEMPLATES_FILE = "templates.jsonl"

#: Appends between explicit flushes of the current journal file.  Reads via
#: the same journal object flush first, so read-your-writes always holds; a
#: crash can lose at most this many trailing records (and a truncated last
#: line is already tolerated on read).
FLUSH_INTERVAL = 64

#: Literal constants inside rendered filter expressions ('...' strings and
#: bare numbers) are stripped to ``*`` so filter templates fingerprint alike.
_FILTER_CONSTANT_RE = re.compile(r"'(?:[^'\\]|\\.)*'|\b\d+(?:\.\d+)?\b")

#: Bare identifiers left in a constant-stripped filter rendering — variable
#: names, which must be canonicalised like every other variable occurrence.
_FILTER_IDENT_RE = re.compile(r"\b[A-Za-z_]\w*\b")


# --------------------------------------------------------------------- #
# Template fingerprinting
# --------------------------------------------------------------------- #
#: Canonical variable names, precomputed for the common arities.  The walker
#: runs once per executed query, so it avoids building these tiny strings
#: (and re-creating closures) on every call.
_CANONICAL_NAMES = tuple(f"?{i}" for i in range(64))


def _canonical_var(names: Dict[str, str], term: Variable) -> str:
    canonical = names.get(term.name)
    if canonical is None:
        index = len(names)
        canonical = _CANONICAL_NAMES[index] if index < 64 else f"?{index}"
        names[term.name] = canonical
    return canonical


def _template_triple(names: Dict[str, str], pattern: TriplePattern) -> str:
    subject = pattern.subject
    predicate = pattern.predicate
    obj = pattern.object
    s = _canonical_var(names, subject) if type(subject) is Variable else "*"
    p = _canonical_var(names, predicate) if type(predicate) is Variable else predicate.n3()
    o = _canonical_var(names, obj) if type(obj) is Variable else "*"
    return f"{s} {p} {o}"


class _TemplateRenderer(PatternVisitor):
    """Renders a constant-stripped template string for each algebra operator.

    ``names`` (the canonical-variable map) is threaded through every visit,
    so one stateless renderer instance serves all queries.
    """

    def generic_visit(self, node, names: Dict[str, str]) -> str:
        children = ",".join([self.visit(c, names) for c in node.children()])
        return f"{type(node).__name__}({children})"

    def visit_bgp(self, node: BGP, names: Dict[str, str]) -> str:
        return "{" + " . ".join([_template_triple(names, p) for p in node.patterns]) + "}"

    def visit_join(self, node: Join, names: Dict[str, str]) -> str:
        return f"Join({self.visit(node.left, names)},{self.visit(node.right, names)})"

    def visit_left_join(self, node: LeftJoin, names: Dict[str, str]) -> str:
        guard = "+F" if node.expression is not None else ""
        return (
            f"Optional{guard}({self.visit(node.left, names)},"
            f"{self.visit(node.right, names)})"
        )

    def visit_union(self, node: Union, names: Dict[str, str]) -> str:
        return f"Union({self.visit(node.left, names)},{self.visit(node.right, names)})"

    def visit_filter(self, node: Filter, names: Dict[str, str]) -> str:
        # Walk the guarded pattern first so its variables claim canonical
        # names in textual order, then rename the variables the rendered
        # expression mentions (sorted, so set order never leaks into the
        # fingerprint) — alpha-renamed FILTER queries must fingerprint alike.
        inner = self.visit(node.pattern, names)
        expression = _FILTER_CONSTANT_RE.sub("*", node.expression.to_sql())
        filter_vars = sorted(node.expression.variables(), key=lambda v: v.name)
        if filter_vars:
            mapping = {v.name: _canonical_var(names, v) for v in filter_vars}
            expression = _FILTER_IDENT_RE.sub(
                lambda match: mapping.get(match.group(0), match.group(0)), expression
            )
        return f"Filter[{expression}]({inner})"

    def visit_projection(self, node: Projection, names: Dict[str, str]) -> str:
        inner = self.visit(node.pattern, names)
        projected = ",".join([_canonical_var(names, v) for v in node.variables_list])
        return f"Project[{projected}]({inner})"

    def visit_distinct(self, node: Distinct, names: Dict[str, str]) -> str:
        return f"Distinct({self.visit(node.pattern, names)})"

    def visit_order_by(self, node: OrderBy, names: Dict[str, str]) -> str:
        return f"OrderBy({self.visit(node.pattern, names)})"

    def visit_slice(self, node: Slice, names: Dict[str, str]) -> str:
        return f"Slice({self.visit(node.pattern, names)})"


_TEMPLATE_RENDERER = _TemplateRenderer()


def template_text(query: Query) -> str:
    """Canonical constant-stripped template of a parsed query.

    Predicates are kept verbatim (they define the template's table
    footprint); subject/object constants become ``*``; variables are renamed
    ``?0, ?1, ...`` in order of first appearance so alpha-renamed queries
    fingerprint identically.  The rendering covers the whole algebra tree, so
    OPTIONAL/UNION/FILTER structure and the solution modifiers stay part of
    the template.
    """
    names: Dict[str, str] = {}
    body = _TEMPLATE_RENDERER.visit(query.pattern, names)
    select = ",".join([_canonical_var(names, v) for v in query.select_variables]) or "*"
    grouped = bool(query.aggregates or query.group_by)
    if not (
        query.distinct or query.order_by or query.limit is not None or query.offset or grouped
    ):
        return f"SELECT {select} WHERE {body}"
    modifiers = []
    if query.distinct:
        modifiers.append("DISTINCT")
    if grouped:
        # Aggregate structure is part of the template: the function list (with
        # a DISTINCT marker) and the group-by arity distinguish e.g.
        # COUNT(?x) from COUNT(DISTINCT ?x) over the same pattern.
        functions = ",".join(
            binding.function + ("~d" if binding.distinct else "") for binding in query.aggregates
        )
        modifiers.append(f"AGG[{functions}]GROUP[{len(query.group_by)}]")
    if query.order_by:
        modifiers.append(f"ORDER[{len(query.order_by)}]")
    if query.limit is not None or query.offset:
        modifiers.append("SLICE")
    suffix = " " + " ".join(modifiers)
    return f"SELECT {select}{suffix} WHERE {body}"


def fingerprint_text(template: str) -> str:
    """Short stable hash of a template string (hex, 12 chars)."""
    return hashlib.sha1(template.encode("utf-8")).hexdigest()[:12]


def fingerprint_query(query: Query) -> str:
    """Short stable hash of :func:`template_text` (hex, 12 chars)."""
    return fingerprint_text(template_text(query))


# --------------------------------------------------------------------- #
# Records
# --------------------------------------------------------------------- #
def _safe_key(key: str) -> str:
    """A string safe to embed between JSON quotes (escaped only if needed)."""
    if '"' in key or "\\" in key:
        return json.dumps(key)[1:-1]
    return key


@dataclass(slots=True)
class JournalRecord:
    """One executed query, as the workload analyzer sees it."""

    fingerprint: str
    template: str
    #: Manifest append epoch of the session's dataset at execution time;
    #: ``None`` for sessions that never touched a stored dataset.
    epoch: Optional[int]
    rows: int
    wall_ms: float
    #: Wall-clock unix timestamp (seconds) when the record was written.
    ts: float = 0.0
    phase_ms: Dict[str, float] = field(default_factory=dict)
    #: Per-table rows read, from ``ExecutionMetrics.scanned_tables``.
    scanned_tables: Dict[str, int] = field(default_factory=dict)
    #: Pre-execution root-cardinality estimate (``None`` when unknown).
    estimated_rows: Optional[int] = None
    #: q-error of the estimate: ``max(est/obs, obs/est)`` on ``+1``-smoothed
    #: counts, so exact estimates score 1.0 and zeros stay finite.
    estimate_q_error: Optional[float] = None
    aqe_replans: int = 0
    aqe_skew_splits: int = 0
    broadcast_guard_trips: int = 0
    segments_scanned: int = 0
    segments_pruned: int = 0
    shuffled_bytes: int = 0
    broadcast_bytes: int = 0
    statically_empty: bool = False
    #: Engine that executed the query ("native" serial/parallel in-process
    #: engine, or "sqlite"); omitted from the JSON when "native".
    engine: str = "native"
    #: Milliseconds the query waited in the serving scheduler's admission
    #: queue before execution started; ``None`` (omitted) for queries that
    #: never passed through a scheduler.
    queue_ms: Optional[float] = None

    def to_json(self, include_template: bool = True) -> Dict[str, Any]:
        """Sparse JSON form: default/empty fields are omitted entirely.

        Sparseness is a hot-path decision, not cosmetics — one record is
        serialized per executed query, so every omitted key is bytes not
        encoded, not written and not rotated.  Persistent journals pass
        ``include_template=False`` and store each template once in a sidecar
        (see :class:`QueryJournal`) instead of on every line.  The returned
        dict aliases ``phase_ms``/``scanned_tables`` rather than copying them.
        """
        data: Dict[str, Any] = {
            "ts": round(self.ts, 3),
            "fingerprint": self.fingerprint,
            "epoch": self.epoch,
            "rows": self.rows,
            "wall_ms": round(self.wall_ms, 3),
        }
        if include_template:
            data["template"] = self.template
        if self.phase_ms:
            data["phase_ms"] = {name: round(ms, 3) for name, ms in self.phase_ms.items()}
        if self.scanned_tables:
            data["scanned_tables"] = self.scanned_tables
        if self.estimated_rows is not None:
            data["estimated_rows"] = self.estimated_rows
        if self.estimate_q_error is not None:
            data["estimate_q_error"] = round(self.estimate_q_error, 4)
        if self.aqe_replans:
            data["aqe_replans"] = self.aqe_replans
        if self.aqe_skew_splits:
            data["aqe_skew_splits"] = self.aqe_skew_splits
        if self.broadcast_guard_trips:
            data["broadcast_guard_trips"] = self.broadcast_guard_trips
        if self.segments_scanned:
            data["segments_scanned"] = self.segments_scanned
        if self.segments_pruned:
            data["segments_pruned"] = self.segments_pruned
        if self.shuffled_bytes:
            data["shuffled_bytes"] = self.shuffled_bytes
        if self.broadcast_bytes:
            data["broadcast_bytes"] = self.broadcast_bytes
        if self.statically_empty:
            data["statically_empty"] = True
        if self.engine != "native":
            data["engine"] = self.engine
        if self.queue_ms is not None:
            data["queue_ms"] = round(self.queue_ms, 3)
        return data

    def to_json_line(self, include_template: bool = True) -> str:
        """The sparse JSON text of :meth:`to_json`, hand-assembled.

        Serialization runs once per executed query and ``json.dumps`` on the
        nested record dict costs more than the rest of the append path
        combined, so the hot path assembles the line with C-level
        ``%``-formatting.  Keys, fingerprints and numbers need no escaping by
        construction; the only free-form strings (template text, phase/table
        names) are escaped via ``json.dumps`` when they contain a quote or
        backslash.
        """
        line = '{"ts":%.3f,"fingerprint":"%s","epoch":%s,"rows":%d,"wall_ms":%.3f' % (
            self.ts,
            self.fingerprint,
            "null" if self.epoch is None else self.epoch,
            self.rows,
            self.wall_ms,
        )
        if include_template and self.template:
            line += ',"template":' + json.dumps(self.template)
        if self.phase_ms:
            line += ',"phase_ms":{%s}' % ",".join(
                ['"%s":%.3f' % (_safe_key(k), v) for k, v in self.phase_ms.items()]
            )
        if self.scanned_tables:
            line += ',"scanned_tables":{%s}' % ",".join(
                ['"%s":%d' % (_safe_key(k), v) for k, v in self.scanned_tables.items()]
            )
        if self.estimated_rows is not None:
            if self.estimate_q_error is not None:
                line += ',"estimated_rows":%d,"estimate_q_error":%.4f' % (
                    self.estimated_rows,
                    self.estimate_q_error,
                )
            else:
                line += ',"estimated_rows":%d' % self.estimated_rows
        elif self.estimate_q_error is not None:
            line += ',"estimate_q_error":%.4f' % self.estimate_q_error
        counters = (
            self.aqe_replans,
            self.aqe_skew_splits,
            self.broadcast_guard_trips,
            self.segments_scanned,
            self.segments_pruned,
            self.shuffled_bytes,
            self.broadcast_bytes,
        )
        if any(counters):
            line += (
                ',"aqe_replans":%d,"aqe_skew_splits":%d,"broadcast_guard_trips":%d,'
                '"segments_scanned":%d,"segments_pruned":%d,"shuffled_bytes":%d,'
                '"broadcast_bytes":%d' % counters
            )
        if self.statically_empty:
            line += ',"statically_empty":true'
        if self.engine != "native":
            line += ',"engine":"%s"' % _safe_key(self.engine)
        if self.queue_ms is not None:
            line += ',"queue_ms":%.3f' % self.queue_ms
        return line + "}"

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "JournalRecord":
        return cls(
            fingerprint=data["fingerprint"],
            template=data.get("template", ""),
            epoch=data.get("epoch"),
            rows=data["rows"],
            wall_ms=data["wall_ms"],
            ts=data.get("ts", 0.0),
            phase_ms=dict(data.get("phase_ms", {})),
            scanned_tables=dict(data.get("scanned_tables", {})),
            estimated_rows=data.get("estimated_rows"),
            estimate_q_error=data.get("estimate_q_error"),
            aqe_replans=data.get("aqe_replans", 0),
            aqe_skew_splits=data.get("aqe_skew_splits", 0),
            broadcast_guard_trips=data.get("broadcast_guard_trips", 0),
            segments_scanned=data.get("segments_scanned", 0),
            segments_pruned=data.get("segments_pruned", 0),
            shuffled_bytes=data.get("shuffled_bytes", 0),
            broadcast_bytes=data.get("broadcast_bytes", 0),
            statically_empty=data.get("statically_empty", False),
            engine=data.get("engine", "native"),
            queue_ms=data.get("queue_ms"),
        )


def q_error(estimated: Optional[int], observed: int) -> Optional[float]:
    """Symmetric estimate error on ``+1``-smoothed counts (1.0 = exact)."""
    if estimated is None or estimated < 0:
        return None
    est, obs = estimated + 1.0, observed + 1.0
    return max(est / obs, obs / est)


# --------------------------------------------------------------------- #
# The journal
# --------------------------------------------------------------------- #
_FILE_RE = re.compile(r"^queries-(\d{5})\.jsonl$")


def _file_name(index: int) -> str:
    return f"queries-{index:05d}.jsonl"


class QueryJournal:
    """Append-only query log: JSONL files with rotation, or an in-memory ring.

    Construct with ``directory=None`` for an ephemeral session (records live
    in a bounded in-memory list) or point it at a dataset's ``journal/``
    directory to persist across sessions: :meth:`append` accepts one record
    per executed query, :meth:`records` reads every surviving record —
    including those written by previous sessions — in order.

    The append path is deliberately cheap — it runs once per executed query
    and is guarded by :mod:`repro.bench.obs_overhead`: records serialize
    sparsely (defaults omitted, lines hand-assembled), the template *text* is
    stored once per fingerprint in a ``templates.jsonl`` sidecar rather than
    on every line, and the journal file is flushed every
    :data:`FLUSH_INTERVAL` records instead of per append.  :meth:`records`
    flushes first, so a journal always reads its own writes; a crash loses at
    most one flush interval of trailing records.

    Appends are lock-protected (the session may be driven from multiple
    threads); reads open the files fresh, so a concurrently appending writer
    is observed at line granularity.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        max_file_bytes: int = DEFAULT_MAX_FILE_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
        max_memory_records: int = DEFAULT_MAX_MEMORY_RECORDS,
    ) -> None:
        if max_file_bytes < 1 or max_files < 1 or max_memory_records < 1:
            raise ValueError("journal caps must be >= 1")
        self.directory = directory
        self.max_file_bytes = max_file_bytes
        self.max_files = max_files
        self.max_memory_records = max_memory_records
        self._lock = threading.Lock()
        self._memory: List[JournalRecord] = []
        self._handle = None
        self._current_index = 0
        self._current_bytes = 0
        self._unflushed = 0
        self._templates: Dict[str, str] = {}
        self._templates_handle = None
        #: Records appended through *this* journal object (not prior sessions).
        self.appended_count = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            existing = self._existing_indexes()
            self._current_index = existing[-1] if existing else 1
            path = self._path(self._current_index)
            self._current_bytes = os.path.getsize(path) if os.path.isfile(path) else 0
            self._load_templates()

    @property
    def persistent(self) -> bool:
        return self.directory is not None

    # ------------------------------------------------------------------ #
    def append(self, record: JournalRecord, query: Optional[Query] = None) -> None:
        """Store one record (one JSON line, or an in-memory ring slot).

        When ``record.fingerprint`` is empty and a parsed ``query`` is given,
        the journal renders the template and fingerprint itself — callers on
        the query path just hand over the algebra they already hold.
        """
        if record.ts == 0.0:
            record.ts = time.time()
        if query is not None and not record.fingerprint:
            record.template = template_text(query)
            record.fingerprint = fingerprint_text(record.template)
        with self._lock:
            self.appended_count += 1
            self._store(record)

    def flush(self) -> None:
        """Flush the buffered journal file (a no-op for in-memory journals)."""
        with self._lock:
            if self._handle is not None and self._unflushed:
                self._handle.flush()
                self._unflushed = 0

    def records(self) -> List[JournalRecord]:
        """Every surviving record, oldest first (all sessions, all files)."""
        self.flush()
        with self._lock:
            if self.directory is None:
                return list(self._memory)
            self._load_templates()  # pick up templates other sessions added
            out: List[JournalRecord] = []
            for index in self._existing_indexes():
                try:
                    with open(self._path(index), "r", encoding="utf-8") as handle:
                        for line in handle:
                            line = line.strip()
                            if not line:
                                continue
                            try:
                                record = JournalRecord.from_json(json.loads(line))
                            except (ValueError, KeyError):
                                # A truncated/corrupt line (crashed writer)
                                # loses that record only, never the journal.
                                continue
                            if not record.template:
                                record.template = self._templates.get(record.fingerprint, "")
                            out.append(record)
                except OSError:
                    continue
            return out

    def record_count(self) -> int:
        return len(self.records())

    def file_count(self) -> int:
        self.flush()
        with self._lock:
            return 0 if self.directory is None else len(self._existing_indexes())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
                self._unflushed = 0
            if self._templates_handle is not None:
                self._templates_handle.close()
                self._templates_handle = None

    # ------------------------------------------------------------------ #
    def _store(self, record: JournalRecord) -> None:
        """Store one record; caller holds the lock."""
        if self.directory is None:
            self._memory.append(record)
            if len(self._memory) > self.max_memory_records:
                del self._memory[: len(self._memory) - self.max_memory_records]
            return
        if record.template and record.fingerprint not in self._templates:
            self._register_template(record.fingerprint, record.template)
        line = record.to_json_line(include_template=False) + "\n"
        nbytes = len(line) if line.isascii() else len(line.encode("utf-8"))
        if self._handle is not None and self._current_bytes + nbytes > self.max_file_bytes:
            self._rotate()
        if self._handle is None:
            if self._current_bytes + nbytes > self.max_file_bytes and self._current_bytes:
                self._current_index += 1
                self._current_bytes = 0
            self._handle = open(self._path(self._current_index), "a", encoding="utf-8")
            self._current_bytes = self._handle.tell()
            self._prune()
        self._handle.write(line)
        self._current_bytes += nbytes
        self._unflushed += 1
        if self._unflushed >= FLUSH_INTERVAL:
            self._handle.flush()
            self._unflushed = 0

    # ------------------------------------------------------------------ #
    def _path(self, index: int) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, _file_name(index))

    def _existing_indexes(self) -> List[int]:
        assert self.directory is not None
        indexes = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            match = _FILE_RE.match(name)
            if match:
                indexes.append(int(match.group(1)))
        return sorted(indexes)

    def _rotate(self) -> None:
        """Close the full current file, start the next one, prune the oldest."""
        assert self._handle is not None
        self._handle.close()
        self._unflushed = 0
        self._current_index += 1
        self._handle = open(self._path(self._current_index), "a", encoding="utf-8")
        self._current_bytes = 0
        self._prune()

    def _templates_path(self) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, TEMPLATES_FILE)

    def _load_templates(self) -> None:
        """(Re)read the fingerprint -> template sidecar into memory."""
        try:
            with open(self._templates_path(), "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        self._templates[entry["fingerprint"]] = entry["template"]
                    except (ValueError, KeyError, TypeError):
                        continue
        except OSError:
            return

    def _register_template(self, fingerprint: str, template: str) -> None:
        """Record a newly seen template in the sidecar (flushed immediately —
        new fingerprints are rare, unlike record appends)."""
        self._templates[fingerprint] = template
        if self._templates_handle is None:
            self._templates_handle = open(self._templates_path(), "a", encoding="utf-8")
        self._templates_handle.write(
            json.dumps({"fingerprint": fingerprint, "template": template}, separators=(",", ":"))
            + "\n"
        )
        self._templates_handle.flush()

    def _prune(self) -> None:
        indexes = self._existing_indexes()
        while len(indexes) > self.max_files:
            oldest = indexes.pop(0)
            try:
                os.remove(self._path(oldest))
            except OSError:
                break


def journal_directory(dataset_path: str) -> str:
    """The journal directory of a stored dataset."""
    return os.path.join(dataset_path, JOURNAL_DIR)


def open_dataset_journal(dataset_path: str, **kwargs: Any) -> QueryJournal:
    """A persistent journal under ``<dataset>/journal/`` (created on demand)."""
    return QueryJournal(directory=journal_directory(dataset_path), **kwargs)


def read_dataset_journal(dataset_path: str) -> List[JournalRecord]:
    """Read a dataset's journal without attaching a writer (inspection path)."""
    directory = journal_directory(dataset_path)
    if not os.path.isdir(directory):
        return []
    return QueryJournal(directory=directory).records()
