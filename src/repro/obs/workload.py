"""Workload analysis over the query journal.

S2RDF's bet is that the physical layout should follow the workload, and the
related PRoST line of work pushes further: choose *mixed* layouts from
workload evidence.  This module turns the raw evidence stream — the query
journal written by :class:`~repro.core.session.S2RDFSession` — into the
aggregates those decisions need:

* **hot templates**: queries grouped by constant-stripped template
  fingerprint, ranked by execution count and total wall-clock time;
* **table reuse**: how many queries scanned each VP/ExtVP table and how many
  tuples they pulled from it — the per-table demand signal for ExtVP
  materialization and caching;
* **misestimation distribution**: the q-error histogram of the planner's
  root-cardinality estimates, separating workloads the static planner handles
  from those that need adaptive execution;
* **materialization advice**: concrete cache candidates — templates that
  repeat against one manifest epoch with stable results (plan/result-cache
  candidates keyed on ``(fingerprint, epoch)``) and tables scanned by many
  distinct templates (layout/cache candidates) — the direct input for the
  ROADMAP's epoch-keyed caching work.

Everything is derived deterministically from the records, so a golden test
can compare the report against ground truth exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.journal import JournalRecord

#: q-error histogram bucket upper bounds (the last bucket is unbounded).
Q_ERROR_BUCKETS = (1.5, 2.0, 4.0, 16.0)

#: A template must repeat this often to become a cache candidate.
DEFAULT_MIN_CACHE_COUNT = 3

#: A table must be scanned by this many queries to become a hot-table advice.
DEFAULT_MIN_TABLE_REUSE = 3


@dataclass
class TemplateStats:
    """Aggregated executions of one query template."""

    fingerprint: str
    template: str
    count: int = 0
    total_wall_ms: float = 0.0
    total_rows: int = 0
    #: Distinct manifest epochs this template ran against (``None`` counts
    #: as its own pseudo-epoch: an un-persisted session).
    epochs: List[Optional[int]] = field(default_factory=list)
    #: Distinct result cardinalities seen, per epoch — a template whose rows
    #: vary within one epoch is not a result-cache candidate.
    rows_by_epoch: Dict[Any, List[int]] = field(default_factory=dict)
    replans: int = 0
    guard_trips: int = 0
    #: Executions split by backend (``"native"`` / ``"sqlite"``): the same
    #: template fingerprint can run on either engine, and hot-template
    #: rankings must show which backend actually served the repeats.
    engines: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_wall_ms(self) -> float:
        return self.total_wall_ms / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "template": self.template,
            "count": self.count,
            "total_wall_ms": round(self.total_wall_ms, 3),
            "mean_wall_ms": round(self.mean_wall_ms, 3),
            "total_rows": self.total_rows,
            "epochs": self.epochs,
            "replans": self.replans,
            "guard_trips": self.guard_trips,
            "engines": {name: self.engines[name] for name in sorted(self.engines)},
        }


@dataclass
class TableReuse:
    """Aggregated demand on one VP/ExtVP table."""

    table: str
    query_count: int = 0
    rows_scanned: int = 0
    #: Distinct templates that scanned this table.
    template_count: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "table": self.table,
            "query_count": self.query_count,
            "rows_scanned": self.rows_scanned,
            "template_count": self.template_count,
        }


@dataclass
class CacheCandidate:
    """One epoch-keyed materialization/caching recommendation."""

    kind: str  # "result-cache" | "hot-table"
    key: str
    epoch: Optional[int]
    count: int
    reason: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "key": self.key,
            "epoch": self.epoch,
            "count": self.count,
            "reason": self.reason,
        }


@dataclass
class WorkloadAnalysis:
    """The analyzer's full output; ``as_dict``/``render_text`` for consumers."""

    total_queries: int
    total_wall_ms: float
    hot_templates: List[TemplateStats]
    table_reuse: List[TableReuse]
    #: q-error histogram: bucket label -> count (only records with estimates).
    q_error_histogram: Dict[str, int]
    estimated_queries: int
    max_q_error: float
    advice: List[CacheCandidate]
    aqe_replans: int = 0
    guard_trips: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total_queries": self.total_queries,
            "total_wall_ms": round(self.total_wall_ms, 3),
            "hot_templates": [t.as_dict() for t in self.hot_templates],
            "table_reuse": [t.as_dict() for t in self.table_reuse],
            "q_error_histogram": dict(self.q_error_histogram),
            "estimated_queries": self.estimated_queries,
            "max_q_error": round(self.max_q_error, 4),
            "advice": [c.as_dict() for c in self.advice],
            "aqe_replans": self.aqe_replans,
            "guard_trips": self.guard_trips,
        }

    def render_text(self) -> str:
        lines = [
            "== Workload report ==",
            f"queries: {self.total_queries}; total wall clock: {self.total_wall_ms:.1f} ms; "
            f"AQE replans: {self.aqe_replans}; broadcast guard trips: {self.guard_trips}",
            "",
            f"Hot templates (top {len(self.hot_templates)}):",
        ]
        for stats in self.hot_templates:
            line = (
                f"  {stats.fingerprint}  x{stats.count}  total {stats.total_wall_ms:.1f} ms  "
                f"mean {stats.mean_wall_ms:.2f} ms"
            )
            if set(stats.engines) - {"native"}:
                split = ", ".join(
                    f"{name} x{stats.engines[name]}" for name in sorted(stats.engines)
                )
                line += f"  [{split}]"
            lines.append(line)
            lines.append(f"    {stats.template}")
        lines.append("")
        lines.append("Table reuse:")
        for reuse in self.table_reuse:
            lines.append(
                f"  {reuse.table}: {reuse.query_count} queries, "
                f"{reuse.template_count} templates, {reuse.rows_scanned} tuples read"
            )
        lines.append("")
        if self.estimated_queries:
            histogram = ", ".join(
                f"{label}: {count}" for label, count in self.q_error_histogram.items()
            )
            lines.append(
                f"Cardinality estimates ({self.estimated_queries} queries): {histogram}; "
                f"max q-error {self.max_q_error:.2f}"
            )
        else:
            lines.append("Cardinality estimates: none recorded")
        lines.append("")
        if self.advice:
            lines.append("Materialization advice:")
            for candidate in self.advice:
                epoch = "-" if candidate.epoch is None else str(candidate.epoch)
                lines.append(
                    f"  [{candidate.kind}] {candidate.key} (epoch {epoch}, x{candidate.count}): "
                    f"{candidate.reason}"
                )
        else:
            lines.append("Materialization advice: none (no template or table repeats enough)")
        return "\n".join(lines)


def _q_error_label(value: float) -> str:
    lower = 1.0
    for upper in Q_ERROR_BUCKETS:
        if value <= upper:
            return f"({lower:g}, {upper:g}]" if value > 1.0 else "exact"
        lower = upper
    return f"> {Q_ERROR_BUCKETS[-1]:g}"


def analyze_journal(
    records: Sequence[JournalRecord],
    top_k: int = 10,
    min_cache_count: int = DEFAULT_MIN_CACHE_COUNT,
    min_table_reuse: int = DEFAULT_MIN_TABLE_REUSE,
) -> WorkloadAnalysis:
    """Aggregate journal records into a :class:`WorkloadAnalysis`.

    Hot templates are ranked by count (execution time breaks ties), table
    reuse by query count; both orders are made fully deterministic by a final
    name tiebreak so golden tests can compare reports exactly.
    """
    templates: Dict[str, TemplateStats] = {}
    tables: Dict[str, TableReuse] = {}
    table_templates: Dict[str, set] = {}
    histogram: Dict[str, int] = {}
    estimated = 0
    max_q_error = 0.0
    total_wall = 0.0
    replans = 0
    guard_trips = 0

    for record in records:
        total_wall += record.wall_ms
        replans += record.aqe_replans
        guard_trips += record.broadcast_guard_trips
        stats = templates.get(record.fingerprint)
        if stats is None:
            stats = templates[record.fingerprint] = TemplateStats(
                fingerprint=record.fingerprint, template=record.template
            )
        stats.count += 1
        stats.total_wall_ms += record.wall_ms
        stats.total_rows += record.rows
        if record.epoch not in stats.epochs:
            stats.epochs.append(record.epoch)
        stats.rows_by_epoch.setdefault(record.epoch, []).append(record.rows)
        stats.replans += record.aqe_replans
        stats.guard_trips += record.broadcast_guard_trips
        stats.engines[record.engine] = stats.engines.get(record.engine, 0) + 1

        for table, rows in record.scanned_tables.items():
            reuse = tables.get(table)
            if reuse is None:
                reuse = tables[table] = TableReuse(table=table)
            reuse.query_count += 1
            reuse.rows_scanned += rows
            table_templates.setdefault(table, set()).add(record.fingerprint)

        if record.estimate_q_error is not None:
            estimated += 1
            max_q_error = max(max_q_error, record.estimate_q_error)
            label = _q_error_label(record.estimate_q_error)
            histogram[label] = histogram.get(label, 0) + 1

    for table, fingerprints in table_templates.items():
        tables[table].template_count = len(fingerprints)

    hot = sorted(
        templates.values(),
        key=lambda t: (-t.count, -t.total_wall_ms, t.fingerprint),
    )[:top_k]
    reuse_ranked = sorted(
        tables.values(),
        key=lambda t: (-t.query_count, -t.rows_scanned, t.table),
    )

    advice: List[CacheCandidate] = []
    for stats in sorted(templates.values(), key=lambda t: (-t.count, t.fingerprint)):
        for epoch, row_counts in stats.rows_by_epoch.items():
            if len(row_counts) >= min_cache_count and len(set(row_counts)) == 1:
                advice.append(
                    CacheCandidate(
                        kind="result-cache",
                        key=stats.fingerprint,
                        epoch=epoch,
                        count=len(row_counts),
                        reason=(
                            f"template repeated {len(row_counts)}x on one epoch with a "
                            f"stable {row_counts[0]}-row result; cache keyed on "
                            "(fingerprint, epoch) is safe until the next append"
                        ),
                    )
                )
    for reuse in reuse_ranked:
        if reuse.query_count >= min_table_reuse and reuse.template_count >= 2:
            advice.append(
                CacheCandidate(
                    kind="hot-table",
                    key=reuse.table,
                    epoch=None,
                    count=reuse.query_count,
                    reason=(
                        f"scanned by {reuse.query_count} queries across "
                        f"{reuse.template_count} templates "
                        f"({reuse.rows_scanned} tuples); keep materialized / cache decoded"
                    ),
                )
            )

    return WorkloadAnalysis(
        total_queries=len(records),
        total_wall_ms=total_wall,
        hot_templates=hot,
        table_reuse=reuse_ranked,
        q_error_histogram=histogram,
        estimated_queries=estimated,
        max_q_error=max_q_error,
        advice=advice,
        aqe_replans=replans,
        guard_trips=guard_trips,
    )


def analyze_dataset(dataset_path: str, top_k: int = 10, **kwargs: Any) -> WorkloadAnalysis:
    """Analyze the persistent journal of a stored dataset."""
    from repro.obs.journal import read_dataset_journal

    return analyze_journal(read_dataset_journal(dataset_path), top_k=top_k, **kwargs)
