"""Session-level metrics: named counters and bounded histograms.

The per-query :class:`~repro.engine.metrics.ExecutionMetrics` object answers
"what did this query cost"; the :class:`MetricsRegistry` answers "what has
this session been doing" — it aggregates across queries, appends, compactions
and cold opens, snapshots to a JSON-serialisable dict and renders
Prometheus-style text exposition so an external scraper (or a benchmark
harness) can consume it without bespoke parsing.

Histograms are *bounded*: a fixed set of bucket boundaries, one integer per
bucket plus sum/count/min/max, so memory use is constant no matter how many
observations a long-lived serving session records.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Dict, Optional, Sequence, Tuple

#: Default bucket upper bounds, tuned for millisecond-scale latencies but
#: serviceable for ratios (the sub-1 buckets) and byte counts (the tail).
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
)


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Histogram:
    """A fixed-bucket histogram: constant memory, cumulative-bucket export."""

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS, help: str = ""
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty ascending sequence")
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        # One count per bound plus the overflow (+Inf) bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        cumulative = 0
        buckets: Dict[str, int] = {}
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative += bucket_count
            buckets[f"{bound:g}"] = cumulative
        buckets["+Inf"] = self.count
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named counters + histograms with JSON and Prometheus-text export.

    ``inc``/``observe`` lazily create their instrument, so call sites stay
    one-liners; creation and updates are lock-protected because the parallel
    runtime records task durations from pool threads.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                if name in self._histograms:
                    raise ValueError(f"{name!r} is already registered as a histogram")
                instrument = self._counters[name] = Counter(name, help)
            return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS, help: str = ""
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                if name in self._counters:
                    raise ValueError(f"{name!r} is already registered as a counter")
                instrument = self._histograms[name] = Histogram(name, bounds, help)
            return instrument

    def inc(self, name: str, amount: float = 1, help: str = "") -> None:
        counter = self.counter(name, help)
        with self._lock:
            counter.inc(amount)

    def observe(
        self, name: str, value: float, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS, help: str = ""
    ) -> None:
        histogram = self.histogram(name, bounds, help)
        with self._lock:
            histogram.observe(value)

    def counter_value(self, name: str) -> float:
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serialisable dump of every instrument."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self._counters.items())},
                "histograms": {name: h.snapshot() for name, h in sorted(self._histograms.items())},
            }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (counters and histograms)."""
        lines = []
        with self._lock:
            for name, counter in sorted(self._counters.items()):
                if counter.help:
                    lines.append(f"# HELP {name} {counter.help}")
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_format_value(counter.value)}")
            for name, histogram in sorted(self._histograms.items()):
                if histogram.help:
                    lines.append(f"# HELP {name} {histogram.help}")
                lines.append(f"# TYPE {name} histogram")
                cumulative = 0
                for bound, bucket_count in zip(histogram.bounds, histogram.bucket_counts):
                    cumulative += bucket_count
                    lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {histogram.count}')
                lines.append(f"{name}_sum {_format_value(histogram.sum)}")
                lines.append(f"{name}_count {histogram.count}")
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)
