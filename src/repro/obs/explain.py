"""EXPLAIN ANALYZE rendering: the executed plan, annotated with observations.

``S2RDFSession.explain_analyze`` executes a query and feeds this module the
logical plan, the per-node estimates captured *before* execution, the
per-node/per-exchange observations captured by the runtime, and the physical
plan's strategy annotations.  The renderer draws the operator tree with, per
operator:

* estimated vs. observed rows (``est=?`` when statistics were missing —
  exactly the inputs that make the static planner mis-plan);
* the join strategy that was chosen statically and, when it differs, the
  strategy adaptive execution actually ran plus the revision's reason;
* elapsed wall-clock milliseconds (cumulative over the operator's subtree);
* bytes moved and task counts for shuffle/broadcast exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.catalog import Catalog
from repro.engine.ops import (
    AggregateNode,
    DistinctNode,
    EmptyNode,
    FilterNode,
    LimitNode,
    Operation as PlanNode,
    OperationVisitor,
    OrderByNode,
    ProjectNode,
    SubqueryNode,
    UnionNode,
)
from repro.engine.plan import NodeExecution
from repro.engine.runtime.adaptive import ReplanEvent
from repro.engine.runtime.executor import ExchangeStats
from repro.engine.runtime.strategies import UNKNOWN_ROWS, PhysicalPlan, estimate_rows


def collect_estimates(
    plan: PlanNode, catalog: Catalog, use_observed: bool = True
) -> Dict[int, int]:
    """Pre-execution cardinality estimates for every node, keyed by ``id()``.

    Must be called *before* the plan runs: execution feeds observed
    cardinalities back into the catalog, and estimating afterwards would
    compare observed rows against themselves.
    """
    return {
        id(node): estimate_rows(node, catalog, use_observed) for node in plan.walk()
    }


@dataclass
class ExplainAnalyzeResult:
    """The outcome of ``explain_analyze``: the query result plus the report."""

    result: Any  # QueryResult; untyped to keep obs free of core imports.
    text: str

    def __str__(self) -> str:
        return self.text


def _format_rows(rows: Optional[int]) -> str:
    if rows is None or rows == UNKNOWN_ROWS:
        return "?"
    return str(rows)


def format_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(count) < 1024.0 or unit == "GiB":
            return f"{count:.1f} {unit}" if unit != "B" else f"{int(count)} {unit}"
        count /= 1024.0
    return f"{count:.1f} GiB"


class _NodeLabeler(OperationVisitor):
    """One-line operator labels for the explain tree."""

    def generic_visit(self, node: PlanNode) -> str:
        return type(node).__name__

    def visit_table_scan(self, node) -> str:
        return f"Scan {node.table_name}"

    def visit_subquery(self, node: SubqueryNode) -> str:
        label = f"Scan {node.table_name}"
        if node.conditions:
            conditions = ", ".join(column for column, _ in node.conditions)
            label += f" [pushdown: {conditions}]"
        return label

    def visit_empty(self, node: EmptyNode) -> str:
        return "Empty (statically pruned)"

    def _visit_join(self, node) -> str:
        left = node.left.output_columns()
        right = node.right.output_columns()
        keys = [c for c in left if c in right]
        kind = "LeftOuterJoin" if node.is_outer_join else "Join"
        return f"{kind} [{', '.join(keys)}]" if keys else f"{kind} [cross]"

    visit_natural_join = _visit_join
    visit_left_outer_join = _visit_join

    def visit_project(self, node: ProjectNode) -> str:
        return f"Project [{', '.join(node.columns)}]"

    def visit_filter(self, node: FilterNode) -> str:
        return f"Filter [{node.expression.to_sql()}]"

    def visit_union(self, node: UnionNode) -> str:
        return "Union"

    def visit_distinct(self, node: DistinctNode) -> str:
        return "Distinct"

    def visit_order_by(self, node: OrderByNode) -> str:
        keys = ", ".join(f"{c} {'ASC' if asc else 'DESC'}" for c, asc in node.keys)
        return f"OrderBy [{keys}]"

    def visit_limit(self, node: LimitNode) -> str:
        parts = []
        if node.limit is not None:
            parts.append(f"LIMIT {node.limit}")
        if node.offset:
            parts.append(f"OFFSET {node.offset}")
        return f"Limit [{' '.join(parts) or 'all'}]"

    def visit_aggregate(self, node: AggregateNode) -> str:
        specs = ", ".join(spec.describe() for spec in node.aggregates)
        if node.group_keys:
            return f"Aggregate [group by {', '.join(node.group_keys)}; {specs}]"
        return f"Aggregate [{specs}]"


_LABELER = _NodeLabeler()


def _node_label(node: PlanNode) -> str:
    return _LABELER.visit(node)


def _strategy_lines(
    node: PlanNode,
    physical: Optional[PhysicalPlan],
    replan_events: Sequence[ReplanEvent],
) -> List[str]:
    """Chosen vs. executed strategy, with the AQE reason when they differ."""
    if physical is None or not node.is_join:
        return []
    initial = physical.strategy_for(node)
    if initial is None:
        return []
    executed = physical.executed_strategy_for(node)
    if executed is None or executed.same_decision(initial):
        suffix = " (as planned)" if executed is not None else " (not executed)"
        return [f"strategy: {initial.describe()}{suffix}"]
    lines = [f"strategy: {initial.name} -> {executed.name}"]
    lines.append(f"  planned:  {initial.describe()}")
    lines.append(f"  executed: {executed.describe()}")
    for event in replan_events:
        if event.node_id == id(node):
            lines.append(f"  reason:   {event.reason}")
            break
    else:
        if executed.name == "SerialJoin":
            reason = getattr(executed, "reason", "")
            lines.append(f"  reason:   serial fallback ({reason or 'degenerate input'})")
    return lines


def _exchange_line(stats: ExchangeStats) -> str:
    return (
        f"exchange: {stats.kind}, {format_bytes(stats.transferred_bytes)} moved, "
        f"{stats.tasks} task(s), critical path {stats.critical_path_ms:.2f} ms"
    )


def render_explain_analyze(
    plan: PlanNode,
    estimates: Dict[int, int],
    node_stats: Dict[int, NodeExecution],
    exchange_stats: Dict[int, ExchangeStats],
    physical: Optional[PhysicalPlan] = None,
    replan_events: Sequence[ReplanEvent] = (),
) -> str:
    """Draw the annotated operator tree, root first."""
    lines: List[str] = []

    def annotate(node: PlanNode) -> str:
        est = _format_rows(estimates.get(id(node)))
        execution = node_stats.get(id(node))
        if execution is None:
            return f"(est={est} rows, not executed)"
        marker = ", vectorized" if getattr(execution, "vectorized", False) else ""
        return (
            f"(est={est} rows, actual={execution.rows} rows, "
            f"{execution.elapsed_ms:.2f} ms{marker})"
        )

    def walk(node: PlanNode, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        lines.append(f"{prefix}{connector}{_node_label(node)}  {annotate(node)}")
        detail_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        children = list(node.children())
        child_bar = "│  " if children else "   "
        for line in _strategy_lines(node, physical, replan_events):
            bullet = "  " if line.startswith(" ") else "* "
            lines.append(f"{detail_prefix}{child_bar}{bullet}{line}")
        exchange = exchange_stats.get(id(node))
        if exchange is not None:
            lines.append(f"{detail_prefix}{child_bar}* {_exchange_line(exchange)}")
        for index, child in enumerate(children):
            walk(child, detail_prefix, index == len(children) - 1, False)

    walk(plan, "", True, True)
    return "\n".join(lines)
