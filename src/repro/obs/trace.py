"""Low-overhead span tracing for the query lifecycle.

A :class:`Tracer` records a tree of timed :class:`Span`\\ s — parse → compile →
table-selection → physical-plan → execute → render, with child spans for every
operator, exchange and per-partition task — plus point-in-time *events* inside
a span (AQE replans, skew splits, zone-map/bucket pruning decisions).

The design constraint is the disabled path: a session with
``tracing_enabled=False`` must pay essentially nothing.  ``Tracer.span()``
therefore returns the shared :data:`NULL_SPAN` singleton when tracing is off —
no allocation, no lock, no timestamp — and every instrumentation site is an
unconditional ``with tracer.span(...)`` / ``span.event(...)`` call with no
branching at the call site.

Finished spans export to the Chrome trace-event JSON format
(:meth:`Tracer.to_chrome_trace` / :meth:`Tracer.write_chrome_trace`), loadable
in Perfetto or ``chrome://tracing``: spans become complete (``"ph": "X"``)
events on their recording thread's timeline, so the thread-pool schedule of a
parallel join is visually inspectable; span events become instant
(``"ph": "i"``) events.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple


def _now_us() -> int:
    return time.perf_counter_ns() // 1_000


class _NullSpan:
    """The do-nothing span returned by a disabled tracer.

    A single shared instance (:data:`NULL_SPAN`): entering, exiting, tagging
    and emitting events are all no-ops, so instrumentation sites need no
    ``if tracing:`` branches.
    """

    __slots__ = ()

    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass


#: Shared no-op span; identity-comparable in tests (zero-allocation contract).
NULL_SPAN = _NullSpan()


class Span:
    """One timed section of work, nested under a parent span.

    Spans are created by :meth:`Tracer.span` and used as context managers; the
    interval is measured between ``__enter__`` and ``__exit__``.  ``set()``
    attaches attributes (rendered into the Chrome trace's ``args``), and
    ``event()`` records a named instant within the span.
    """

    __slots__ = (
        "tracer",
        "name",
        "category",
        "attrs",
        "span_id",
        "parent_id",
        "thread_id",
        "start_us",
        "duration_us",
        "events",
    )

    enabled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs
        self.span_id = next(tracer._ids)
        self.parent_id = parent_id
        self.thread_id = 0
        self.start_us = 0
        self.duration_us = 0
        self.events: List[Tuple[str, int, Dict[str, Any]]] = []

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        if self.parent_id is None and stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.thread_id = threading.get_ident()
        self.start_us = _now_us()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.duration_us = _now_us() - self.start_us
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer._record(self)
        return False

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        self.events.append((name, _now_us(), attrs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class Tracer:
    """Collects spans for one session; thread-safe; no-op when disabled.

    The per-thread span stack makes nesting automatic: a span opened while
    another is active on the same thread becomes its child.  Work handed to a
    pool thread passes its parent explicitly (``tracer.span(..., parent=s)``),
    which both preserves the logical tree and puts the task's interval on the
    worker thread's timeline in the Chrome trace.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._ids = itertools.count(1)
        self._finished: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    def span(self, name: str, category: str = "query", parent: Optional[Span] = None, **attrs: Any):
        """Open a span (use as a context manager); no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        parent_id = parent.span_id if isinstance(parent, Span) else None
        return Span(self, name, category, parent_id, attrs)

    def current(self):
        """The innermost active span on this thread (:data:`NULL_SPAN` if none)."""
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        return stack[-1] if stack else NULL_SPAN

    # ------------------------------------------------------------------ #
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    # ------------------------------------------------------------------ #
    def finished_spans(self) -> List[Span]:
        """All completed spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished = []

    def children_of(self, span: Optional[Span]) -> List[Span]:
        """Completed spans whose parent is ``span`` (``None`` for roots)."""
        parent_id = span.span_id if span is not None else None
        return [s for s in self.finished_spans() if s.parent_id == parent_id]

    def find(self, name: str) -> List[Span]:
        return [s for s in self.finished_spans() if s.name == name]

    def summary(self) -> Dict[str, Any]:
        """Aggregate view of the recorded spans (for benchmark JSON output)."""
        spans = self.finished_spans()
        by_category: Dict[str, int] = {}
        events = 0
        for span in spans:
            by_category[span.category] = by_category.get(span.category, 0) + 1
            events += len(span.events)
        return {"spans": len(spans), "events": events, "spans_by_category": by_category}

    # ------------------------------------------------------------------ #
    # Chrome trace-event export
    # ------------------------------------------------------------------ #
    def to_chrome_trace(self) -> Dict[str, Any]:
        """Render finished spans as a Chrome trace-event JSON object.

        Load the written file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``.  Spans are complete events (``"ph": "X"``) keyed
        to the thread they ran on; span events are thread-scoped instants.
        """
        pid = os.getpid()
        trace_events: List[Dict[str, Any]] = []
        for span in self.finished_spans():
            args = {str(k): _json_safe(v) for k, v in span.attrs.items()}
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_span_id"] = span.parent_id
            trace_events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start_us,
                    "dur": span.duration_us,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
            for event_name, ts, attrs in span.events:
                trace_events.append(
                    {
                        "name": event_name,
                        "cat": span.category,
                        "ph": "i",
                        "ts": ts,
                        "pid": pid,
                        "tid": span.thread_id,
                        "s": "t",
                        "args": {str(k): _json_safe(v) for k, v in attrs.items()},
                    }
                )
        trace_events.sort(key=lambda event: event["ts"])
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> str:
        """Write the Chrome trace JSON to ``path`` and return the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)
            handle.write("\n")
        return path


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


#: Shared disabled tracer: the default for components constructed without one,
#: so instrumentation sites never need a None check.
NULL_TRACER = Tracer(enabled=False)
