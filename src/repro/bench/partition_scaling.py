"""Partition-scaling benchmark for the parallel execution runtime.

Runs the WatDiv Basic Testing workload on one shared ExtVP layout while
varying ``num_partitions`` and reports how the join work scales: wall-clock
time, the join *critical path* (per join, the slowest partition task — the
time a cluster with one core per partition would spend on the join stage) and
the observed shuffle/broadcast exchange volume.

CPython threads serialize CPU-bound joins under the GIL, so the wall-clock
column barely moves; the critical-path speedup is the honest scaling signal
and is what the acceptance check asserts on.  A ``broadcast_threshold`` of 0
forces shuffle joins everywhere, making the partition count the only variable.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.bench.reporting import ExperimentReport
from repro.core.session import S2RDFSession, SessionConfig
from repro.mappings.extvp import ExtVPLayout
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.template import instantiate_many


def _run_workload(session: S2RDFSession, queries: Sequence[str]) -> Tuple[float, float, int, int]:
    """Execute all queries; return (wall ms, critical-path ms, shuffled B, broadcast B)."""
    wall_ms = 0.0
    critical_ms = 0.0
    shuffled_bytes = 0
    broadcast_bytes = 0
    for query_text in queries:
        start = time.perf_counter()
        result = session.query(query_text)
        wall_ms += (time.perf_counter() - start) * 1000.0
        critical_ms += result.metrics.critical_path_ms
        shuffled_bytes += result.metrics.shuffled_bytes
        broadcast_bytes += result.metrics.broadcast_bytes
    return wall_ms, critical_ms, shuffled_bytes, broadcast_bytes


def run_partition_scaling(
    scale_factor: float = 3.0,
    seed: int = 42,
    instantiations: int = 1,
    partition_counts: Sequence[int] = (1, 2, 4, 8),
    broadcast_threshold: int = 0,
    dataset: Optional[WatDivDataset] = None,
    template_names: Optional[Sequence[str]] = None,
    selectivity_threshold: float = 1.0,
) -> ExperimentReport:
    """Measure join scaling of the parallel runtime across partition counts."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)

    # One layout shared by every session: only the execution axis varies.
    layout = ExtVPLayout(selectivity_threshold=selectivity_threshold)
    layout.build(dataset.graph)

    queries: List[str] = []
    for template in BASIC_TEMPLATES:
        if template_names is not None and template.name not in template_names:
            continue
        queries.extend(instantiate_many(template, dataset, instantiations, seed=seed))

    report = ExperimentReport(
        name="Partition scaling — parallel runtime",
        description=(
            f"WatDiv Basic workload ({len(queries)} queries, scale factor {dataset.scale_factor:g}) on one "
            f"ExtVP layout; num_partitions varies, broadcast_threshold={broadcast_threshold}"
        ),
        columns=[
            "partitions",
            "wall_ms",
            "critical_path_ms",
            "speedup",
            "shuffled_bytes",
            "broadcast_bytes",
        ],
    )

    baseline_critical: Optional[float] = None
    for partitions in partition_counts:
        session = S2RDFSession(
            layout,
            config=SessionConfig.from_flat(
                selectivity_threshold=selectivity_threshold,
                num_partitions=partitions,
                broadcast_threshold=broadcast_threshold,
                # This benchmark isolates the partition-count axis; adaptive
                # replanning and skew splitting are measured by repro.bench.aqe.
                adaptive_enabled=False,
            ),
        )
        wall_ms, critical_ms, shuffled_bytes, broadcast_bytes = _run_workload(session, queries)
        session.close()
        if baseline_critical is None:
            baseline_critical = critical_ms
        speedup = baseline_critical / critical_ms if critical_ms > 0 else float("inf")
        report.add_row(
            partitions=partitions,
            wall_ms=round(wall_ms, 1),
            critical_path_ms=round(critical_ms, 1),
            speedup=round(speedup, 2),
            shuffled_bytes=shuffled_bytes,
            broadcast_bytes=broadcast_bytes,
        )

    report.add_note(
        "critical_path_ms sums, per join, the slowest partition task — the join-stage time of a cluster "
        "with one core per partition.  Wall-clock barely moves under the GIL; see README."
    )
    return report
