"""Table 5 / Figure 15: Incremental Linear Testing across all systems.

Linear queries of diameter 5–10, bound to a user (IL-1), a retailer (IL-2) or
unbound (IL-3), executed on every engine.  Besides the per-query runtimes the
report aggregates per query type (AM-IL-1/2/3) and per diameter (AM-5..AM-10),
like the paper's Table 5.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from repro.baselines import SparqlEngine
from repro.bench.reporting import ExperimentReport, arithmetic_mean
from repro.bench.scaling import PAPER_SF10000_TRIPLES, paper_work_scale
from repro.bench.table4_basic import default_engines
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.incremental_queries import INCREMENTAL_TEMPLATES
from repro.watdiv.template import instantiate_many


def run_table5_incremental(
    scale_factor: float = 2.0,
    seed: int = 42,
    instantiations: int = 2,
    engines: Optional[List[SparqlEngine]] = None,
    dataset: Optional[WatDivDataset] = None,
    query_types: Sequence[str] = ("IL-1", "IL-2", "IL-3"),
    max_diameter: int = 10,
    paper_triples: int = PAPER_SF10000_TRIPLES,
) -> ExperimentReport:
    """Regenerate Table 5 / Fig. 15 (Incremental Linear Testing)."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    engines = engines if engines is not None else default_engines(paper_work_scale(dataset.graph, paper_triples))
    for engine in engines:
        engine.load(dataset.graph)

    report = ExperimentReport(
        name="Table 5 / Fig. 15 — WatDiv Incremental Linear Testing",
        description=(
            f"Arithmetic-mean simulated runtimes (ms) for linear queries of diameter 5-{max_diameter}, "
            f"scale factor {dataset.scale_factor:g} ('F' marks failed/timed-out runs)"
        ),
        columns=["query", "type", "diameter"] + [engine.name for engine in engines] + ["result_rows"],
    )

    by_type: Dict[str, Dict[str, List[float]]] = defaultdict(lambda: defaultdict(list))
    by_diameter: Dict[int, Dict[str, List[float]]] = defaultdict(lambda: defaultdict(list))

    for template in INCREMENTAL_TEMPLATES:
        if template.category not in query_types:
            continue
        diameter = int(template.name.rsplit("-", 1)[1])
        if diameter > max_diameter:
            continue
        queries = instantiate_many(template, dataset, instantiations if template.is_parameterized() else 1, seed=seed)
        per_engine: Dict[str, List[float]] = defaultdict(list)
        rows = 0
        for query_text in queries:
            for engine in engines:
                result = engine.query(query_text)
                per_engine[engine.name].append(result.simulated_runtime_ms)
                if not result.failed:
                    rows = max(rows, len(result))
        row = {"query": template.name, "type": template.category, "diameter": diameter, "result_rows": rows}
        for engine in engines:
            mean_runtime = arithmetic_mean(per_engine[engine.name])
            row[engine.name] = round(mean_runtime, 2) if mean_runtime != float("inf") else float("inf")
            by_type[template.category][engine.name].append(mean_runtime)
            by_diameter[diameter][engine.name].append(mean_runtime)
        report.add_row(**row)

    for query_type in sorted(by_type):
        row = {"query": f"AM-{query_type}", "type": query_type, "diameter": None, "result_rows": None}
        for engine in engines:
            row[engine.name] = round(arithmetic_mean(by_type[query_type][engine.name]), 2)
        report.add_row(**row)
    for diameter in sorted(by_diameter):
        row = {"query": f"AM-{diameter}", "type": "all", "diameter": diameter, "result_rows": None}
        for engine in engines:
            row[engine.name] = round(arithmetic_mean(by_diameter[diameter][engine.name]), 2)
        report.add_row(**row)

    report.add_note(
        "Expected shape: S2RDF runtimes grow slowly with the diameter; MapReduce systems grow linearly with a "
        "multi-second per-job constant; the centralized store struggles or fails on the unbound IL-3 queries."
    )
    return report
