"""Row-dict executor vs the vectorized id-column kernel on WatDiv Basic.

Both paths execute the same compiled plan IR over the same persisted dataset
— the row path materialises every intermediate as per-tuple Python objects,
the vectorized path (``vectorized_enabled=True``) runs scans, filters, hash
joins, projection and DISTINCT on flat ``array('q')`` dictionary-id columns
and decodes terms once at the ``to_relation()`` boundary.  This benchmark
asserts bag-equality on every query before any timing counts (a perf number
for a wrong answer is worthless), then reports per-query wall clocks and
scan throughput (scanned input tuples per second) side by side.

The headline number is the *scan-heavy* aggregate: per the paper's workload
shape, WatDiv Basic mixes point lookups (where per-query parse/plan overhead
dominates and vectorization is moot) with star/snowflake queries scanning
thousands of tuples — the queries the kernel exists for.  Queries whose row
path scans at least ``scan_heavy_min_rows`` tuples form that subset, and in
full (non-smoke) mode the run asserts the subset's throughput speedup meets
``require_speedup``.

Run directly (used by CI in smoke mode)::

    PYTHONPATH=src python -c "from repro.bench.vectorized import main; main(['--smoke', '--json'])"
"""

from __future__ import annotations

import tempfile
import time
from typing import List, Optional, Sequence, Tuple

from repro.bench.reporting import ExperimentReport, write_bench_json
from repro.core.session import S2RDFSession
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.template import instantiate_template

#: Queries whose row path scans at least this many input tuples (scaled by
#: ``scale_factor``) count as scan-heavy; the speedup gate runs on their
#: aggregate.  At the default full-mode scale this selects the star,
#: snowflake and complex classes the kernel targets.
SCAN_HEAVY_MIN_ROWS_PER_SCALE = 65.0


def _bag(relation) -> List[str]:
    return sorted(map(repr, relation.rows))


def _time_query(session: S2RDFSession, query_text: str, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall clock (ms) and the best run's metrics."""
    best = float("inf")
    metrics = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = session.query(query_text)
        elapsed = (time.perf_counter() - start) * 1000.0
        if elapsed < best:
            best = elapsed
            metrics = result.metrics
    return best, metrics


def _throughput(scanned: int, milliseconds: float) -> float:
    """Scanned input tuples per second (0 when nothing was scanned)."""
    if milliseconds <= 0 or scanned <= 0:
        return 0.0
    return scanned / (milliseconds / 1000.0)


def run_vectorized(
    scale_factor: float = 30.0,
    seed: int = 42,
    repeats: int = 3,
    num_partitions: int = 1,
    require_speedup: Optional[float] = 3.0,
    dataset: Optional[WatDivDataset] = None,
) -> ExperimentReport:
    """Compare row-dict and vectorized execution on a persisted dataset.

    ``require_speedup`` (when not ``None``) asserts the scan-heavy subset's
    throughput ratio after the run — smoke mode passes ``None`` because at
    tiny scale per-query parse/plan overhead dominates both paths equally.
    """
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    queries = [
        (template.name, instantiate_template(template, dataset))
        for template in BASIC_TEMPLATES
    ]
    scan_heavy_min_rows = SCAN_HEAVY_MIN_ROWS_PER_SCALE * dataset.scale_factor

    report = ExperimentReport(
        name="Vectorized kernel — row-dict executor vs id-column batches (WatDiv Basic)",
        description=(
            f"WatDiv Basic subset at scale factor {dataset.scale_factor:g} on a persisted "
            f"dataset ({num_partitions} partition(s)), best of {repeats} runs per path; every "
            "query is bag-equality-checked across paths before timing counts. krows_s is "
            "scanned input tuples per second; queries scanning >= "
            f"{scan_heavy_min_rows:.0f} tuples form the scan-heavy aggregate the gate runs on."
        ),
        columns=[
            "query",
            "rows",
            "scanned",
            "row_ms",
            "vec_ms",
            "row_krows_s",
            "vec_krows_s",
            "speedup",
        ],
    )

    totals = {
        "row_ms": 0.0,
        "vec_ms": 0.0,
        "heavy_row_ms": 0.0,
        "heavy_vec_ms": 0.0,
        "heavy_scanned": 0,
        "scanned": 0,
        "vectorized_batches": 0,
        "vectorized_rows": 0,
    }
    heavy_queries: List[str] = []

    with tempfile.TemporaryDirectory() as root:
        path = f"{root}/dataset"
        builder = S2RDFSession.from_graph(dataset.graph, num_partitions=num_partitions)
        builder.save_dataset(path)
        builder.close()

        config = {"journal_enabled": False, "tracing_enabled": False}
        row_session = S2RDFSession.open_dataset(path, **config)
        vec_session = S2RDFSession.open_dataset(path, vectorized_enabled=True, **config)
        try:
            for name, query_text in queries:
                row_result = row_session.query(query_text)
                vec_result = vec_session.query(query_text)
                assert _bag(row_result.relation) == _bag(vec_result.relation), (
                    f"path mismatch on {name}"
                )
                row_ms, row_metrics = _time_query(row_session, query_text, repeats)
                vec_ms, vec_metrics = _time_query(vec_session, query_text, repeats)
                scanned = row_metrics.input_tuples
                assert vec_metrics.input_tuples == scanned, f"scan drift on {name}"
                totals["row_ms"] += row_ms
                totals["vec_ms"] += vec_ms
                totals["scanned"] += scanned
                totals["vectorized_batches"] += vec_metrics.vectorized_batches
                totals["vectorized_rows"] += vec_metrics.vectorized_rows
                heavy = scanned >= scan_heavy_min_rows
                if heavy:
                    heavy_queries.append(name)
                    totals["heavy_row_ms"] += row_ms
                    totals["heavy_vec_ms"] += vec_ms
                    totals["heavy_scanned"] += scanned
                report.add_row(
                    query=name + ("*" if heavy else ""),
                    rows=len(row_result),
                    scanned=scanned,
                    row_ms=round(row_ms, 3),
                    vec_ms=round(vec_ms, 3),
                    # Throughput and speedup are rendered as text on purpose:
                    # run-to-run noisy ratios must not become gated counters
                    # in the machine-readable output.
                    row_krows_s=f"{_throughput(scanned, row_ms) / 1000.0:.1f}",
                    vec_krows_s=f"{_throughput(scanned, vec_ms) / 1000.0:.1f}",
                    speedup=f"{row_ms / vec_ms:.2f}x" if vec_ms > 0 else "-",
                )
        finally:
            row_session.close()
            vec_session.close()

    assert totals["vectorized_batches"] > 0, "vectorized path never produced a batch"

    overall_speedup = totals["row_ms"] / totals["vec_ms"] if totals["vec_ms"] else 0.0
    heavy_speedup = (
        totals["heavy_row_ms"] / totals["heavy_vec_ms"] if totals["heavy_vec_ms"] else 0.0
    )
    report.add_note(
        f"overall: {totals['row_ms']:.1f} ms row vs {totals['vec_ms']:.1f} ms vectorized "
        f"({overall_speedup:.2f}x)"
    )
    report.add_note(
        f"scan-heavy aggregate (*): {len(heavy_queries)} queries, "
        f"{_throughput(totals['heavy_scanned'], totals['heavy_row_ms']) / 1000.0:.1f} -> "
        f"{_throughput(totals['heavy_scanned'], totals['heavy_vec_ms']) / 1000.0:.1f} krows/s "
        f"({heavy_speedup:.2f}x)"
    )
    report.add_note(
        f"vectorized path processed {totals['vectorized_rows']} ids in "
        f"{totals['vectorized_batches']} batches (best timed runs)"
    )
    report.stash = {
        "queries": len(queries),
        "mismatches": 0,  # every query above is asserted bag-equal
        "scan_heavy_queries": heavy_queries,
        "total_row_ms": totals["row_ms"],
        "total_vec_ms": totals["vec_ms"],
        "scan_heavy_row_ms": totals["heavy_row_ms"],
        "scan_heavy_vec_ms": totals["heavy_vec_ms"],
        "overall_speedup": overall_speedup,
        "scan_heavy_speedup": heavy_speedup,
        "vectorized_batches": totals["vectorized_batches"],
        "vectorized_rows": totals["vectorized_rows"],
    }
    if require_speedup is not None:
        assert heavy_speedup >= require_speedup, (
            f"scan-heavy speedup {heavy_speedup:.2f}x below required {require_speedup:.2f}x "
            f"(queries: {heavy_queries})"
        )
    return report


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description="Row-dict vs vectorized execution benchmark")
    parser.add_argument("--scale", type=float, default=30.0, help="WatDiv-like scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="timed runs per query per path")
    parser.add_argument(
        "--partitions", type=int, default=1, help="stored dataset partition count"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny scale, asserts bag-equality but not the speedup gate",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write machine-readable benchmarks/output/BENCH_vectorized.json",
    )
    args = parser.parse_args(argv)
    scale = min(args.scale, 1.0) if args.smoke else args.scale
    report = run_vectorized(
        scale_factor=scale,
        repeats=args.repeats,
        num_partitions=args.partitions,
        require_speedup=None if args.smoke else 3.0,
    )
    print(report.to_text())
    if args.json:
        print(f"wrote {write_bench_json(report, 'vectorized')}")
    assert report.stash["mismatches"] == 0
    print(
        f"equality check passed on {report.stash['queries']} queries; "
        f"scan-heavy speedup {report.stash['scan_heavy_speedup']:.2f}x"
    )


if __name__ == "__main__":
    main()
