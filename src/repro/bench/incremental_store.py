"""Incremental-store benchmark: append + query vs. full rebuild, plus compaction.

The scenario is the paper's incremental workload (Table 5 / Fig. 15) hitting a
*live* dataset: a base graph is persisted once, then update batches arrive and
the Incremental Linear queries run after every batch.  Two maintenance
strategies compete on identical data:

* **incremental** — ``S2RDFSession.append_triples``: each batch lands as delta
  segments (no existing segment or dictionary line is rewritten; VP/ExtVP
  statistics are maintained for the affected predicate pairs only);
* **rebuild** — the only option before delta segments existed: rebuild the
  whole layout from the cumulative graph (VP build + all ExtVP semi-joins) and
  ``save_dataset`` it from scratch.

After every batch the Incremental Linear queries must return the same bag of
rows on both datasets; a final ``compact()`` folds the accumulated deltas back
into base segments and must preserve those bags while scanning fewer segments.

Run directly (used by CI in smoke mode)::

    PYTHONPATH=src python -m repro.bench.incremental_store --smoke
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.reporting import ExperimentReport, write_bench_json
from repro.core.session import S2RDFSession
from repro.rdf.graph import Graph
from repro.store.format import read_manifest
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.incremental_queries import INCREMENTAL_TEMPLATES
from repro.watdiv.template import instantiate_many


def _bag(relation) -> List[str]:
    return sorted(map(repr, relation.rows))


def _workload_queries(
    dataset: WatDivDataset,
    seed: int,
    instantiations: int,
    query_types: Sequence[str],
    max_diameter: int,
) -> List[str]:
    queries: List[str] = []
    for template in INCREMENTAL_TEMPLATES:
        if template.category not in query_types:
            continue
        diameter = int(template.name.rsplit("-", 1)[1])
        if diameter > max_diameter:
            continue
        queries.extend(
            instantiate_many(
                template,
                dataset,
                instantiations if template.is_parameterized() else 1,
                seed=seed,
            )
        )
    return queries


def _run_queries(session: S2RDFSession, queries: Sequence[str]) -> Dict[str, object]:
    start = time.perf_counter()
    bags = []
    segments_scanned = 0
    result_rows = 0
    for query_text in queries:
        result = session.query(query_text)
        bags.append(_bag(result.relation))
        segments_scanned += result.metrics.store_segments_scanned
        result_rows += len(result)
    return {
        "seconds": time.perf_counter() - start,
        "bags": bags,
        "segments_scanned": segments_scanned,
        "result_rows": result_rows,
    }


def _segment_count(path: str) -> int:
    manifest = read_manifest(path)
    return sum(entry.segment_count() for entry in manifest.tables.values())


def run_incremental_store(
    scale_factor: float = 2.0,
    seed: int = 42,
    num_buckets: int = 4,
    batches: int = 3,
    update_fraction: float = 0.2,
    instantiations: int = 1,
    query_types: Sequence[str] = ("IL-1", "IL-2", "IL-3"),
    max_diameter: int = 6,
    dataset: Optional[WatDivDataset] = None,
    path: Optional[str] = None,
) -> ExperimentReport:
    """Measure append+query against full rebuild on the table-5 workload."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    if path is None:
        path = tempfile.mkdtemp(prefix="s2rdf-incremental-")
    incremental_path = os.path.join(path, "incremental")
    rebuild_path = os.path.join(path, "rebuild")

    # Deterministic split: the last `update_fraction` of a seeded shuffle
    # arrives in `batches` equal update batches.
    triples = sorted(
        dataset.graph, key=lambda t: (t.subject.n3(), t.predicate.n3(), t.object.n3())
    )
    random.Random(seed).shuffle(triples)
    update_count = max(batches, int(len(triples) * update_fraction))
    base_triples, update_triples = triples[:-update_count], triples[-update_count:]
    batch_size = (update_count + batches - 1) // batches
    update_batches = [
        update_triples[i : i + batch_size] for i in range(0, update_count, batch_size)
    ]
    queries = _workload_queries(dataset, seed, instantiations, query_types, max_diameter)

    report = ExperimentReport(
        name="Incremental store — append + query vs. full rebuild",
        description=(
            f"WatDiv graph ({len(dataset.graph)} triples, scale factor {dataset.scale_factor:g}): "
            f"{len(base_triples)} base triples persisted once, {update_count} update triples in "
            f"{len(update_batches)} batches; {len(queries)} Incremental Linear queries "
            f"(diameter <= {max_diameter}) after every batch; {num_buckets} hash buckets"
        ),
        columns=["step", "incremental_s", "rebuild_s", "speedup", "detail"],
    )

    # One-time base build, shared starting point of both strategies.
    start = time.perf_counter()
    base_session = S2RDFSession.from_graph(Graph(base_triples), num_partitions=num_buckets)
    base_session.save_dataset(incremental_path, num_buckets=num_buckets)
    base_seconds = time.perf_counter() - start
    base_session.close()
    report.add_row(
        step="base build + save (once)",
        incremental_s=round(base_seconds, 4),
        rebuild_s=round(base_seconds, 4),
        speedup=None,
        detail=f"{len(base_triples)} triples",
    )

    incremental = S2RDFSession.open_dataset(incremental_path)
    cumulative = list(base_triples)
    total_append = 0.0
    total_rebuild = 0.0
    append_bytes = 0
    rebuild_bytes = 0
    mismatches = 0
    for index, batch in enumerate(update_batches, start=1):
        cumulative.extend(batch)

        start = time.perf_counter()
        append_report = incremental.append_triples(batch)
        append_seconds = time.perf_counter() - start
        append_bytes += append_report.bytes_written
        incremental_run = _run_queries(incremental, queries)

        start = time.perf_counter()
        rebuilt = S2RDFSession.from_graph(Graph(cumulative), num_partitions=num_buckets)
        rebuild_report = rebuilt.save_dataset(rebuild_path, num_buckets=num_buckets, overwrite=True)
        rebuild_seconds = time.perf_counter() - start
        rebuild_bytes += rebuild_report.total_bytes
        rebuilt_run = _run_queries(rebuilt, queries)
        rebuilt.close()

        mismatches += sum(
            1 for a, b in zip(incremental_run["bags"], rebuilt_run["bags"]) if a != b
        )
        total_append += append_seconds
        total_rebuild += rebuild_seconds
        report.add_row(
            step=f"batch {index} maintain",
            incremental_s=round(append_seconds, 4),
            rebuild_s=round(rebuild_seconds, 4),
            speedup=round(rebuild_seconds / append_seconds, 2) if append_seconds > 0 else None,
            detail=(
                f"{append_report.triples_appended} triples, {append_report.delta_segments} delta "
                f"segments, {append_report.extvp_pairs_updated} ExtVP pairs maintained"
            ),
        )
        report.add_row(
            step=f"batch {index} queries",
            incremental_s=round(incremental_run["seconds"], 4),
            rebuild_s=round(rebuilt_run["seconds"], 4),
            speedup=None,
            detail=(
                f"{incremental_run['result_rows']} result rows, "
                f"{mismatches} bag mismatches so far"
            ),
        )
    if mismatches:
        raise AssertionError(f"{mismatches} query bags diverged between append and rebuild")

    report.add_row(
        step="total maintenance",
        incremental_s=round(total_append, 4),
        rebuild_s=round(total_rebuild, 4),
        speedup=round(total_rebuild / total_append, 2) if total_append > 0 else None,
        detail=(
            f"{len(update_batches)} batches, 0 bag mismatches; bytes written: "
            f"{append_bytes} append vs {rebuild_bytes} rebuild "
            f"({rebuild_bytes / max(append_bytes, 1):.0f}x write amplification avoided)"
        ),
    )

    # Compaction: same answers, fewer segments scanned.
    before_scan = _run_queries(incremental, queries)
    segments_before = _segment_count(incremental_path)
    compaction = incremental.compact()
    after_scan = _run_queries(incremental, queries)
    compaction_mismatches = sum(
        1 for a, b in zip(before_scan["bags"], after_scan["bags"]) if a != b
    )
    report.add_row(
        step="compact()",
        incremental_s=round(compaction.compact_seconds, 4),
        rebuild_s=None,
        speedup=None,
        detail=(
            f"{segments_before} -> {compaction.segments_after} segments on disk; workload scans "
            f"{before_scan['segments_scanned']} -> {after_scan['segments_scanned']} segments; "
            f"{compaction_mismatches} bag mismatches"
        ),
    )
    if compaction_mismatches:
        raise AssertionError("compaction changed query results")
    incremental.close()

    report.add_note(
        "incremental_s covers append_triples (delta segments + append-only dictionary + "
        "incremental ExtVP maintenance); rebuild_s covers the full from_graph build (all ExtVP "
        "semi-joins) plus save_dataset rewrite — the only way to ingest updates before PR 4."
    )
    report.add_note(
        "query bags are asserted equal between the two datasets after every batch, and again "
        "across compact(); compaction must also reduce the segments the workload scans."
    )
    report.stash = {
        "total_append": total_append,
        "total_rebuild": total_rebuild,
        "append_bytes": append_bytes,
        "rebuild_bytes": rebuild_bytes,
        "segments_scanned_before_compaction": before_scan["segments_scanned"],
        "segments_scanned_after_compaction": after_scan["segments_scanned"],
    }
    return report


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description="Incremental dataset store benchmark")
    parser.add_argument("--scale", type=float, default=2.0, help="WatDiv-like scale factor")
    parser.add_argument("--batches", type=int, default=3, help="number of update batches")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale for CI: asserts equivalence, speedup and compaction wins",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write machine-readable benchmarks/output/BENCH_incremental_store.json",
    )
    args = parser.parse_args(argv)
    scale = 0.5 if args.smoke else args.scale
    batches = 2 if args.smoke else args.batches
    report = run_incremental_store(scale_factor=scale, batches=batches)
    print(report.to_text())
    if args.json:
        print(f"wrote {write_bench_json(report, 'incremental_store')}")
    if args.smoke:
        stash = report.stash
        # The deterministic win: appends write only deltas, rebuilds rewrite
        # every segment plus the dictionary — orders of magnitude more bytes.
        assert stash["append_bytes"] * 5 < stash["rebuild_bytes"], (
            f"append wrote {stash['append_bytes']} bytes, rebuild {stash['rebuild_bytes']}"
        )
        # Wall clock is noisy on a loaded CI machine at smoke scale; the
        # committed full-scale benchmark output shows the real margin.
        assert stash["total_append"] < stash["total_rebuild"] * 1.25, (
            "append must not be slower than full rebuild: "
            f"{stash['total_append']:.4f}s vs {stash['total_rebuild']:.4f}s"
        )
        assert (
            stash["segments_scanned_after_compaction"]
            < stash["segments_scanned_before_compaction"]
        ), "compaction must reduce segments scanned"
        print(
            "smoke checks passed: bag-equal after every batch and across compact(), "
            f"append {stash['total_rebuild'] / stash['total_append']:.1f}x faster than rebuild "
            f"({stash['rebuild_bytes'] // max(stash['append_bytes'], 1)}x fewer bytes written), "
            "fewer segments scanned after compaction"
        )


if __name__ == "__main__":
    main()
