"""Table 6 / Figure 16: effect of the ExtVP selectivity-factor threshold.

The experiment sweeps the SF threshold (0 = plain VP, 1 = full ExtVP), builds
the layout once per threshold, reports the storage footprint (Table 6) and the
runtime of the Basic Testing workload relative to the VP baseline, grouped by
shape category (Fig. 16).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from repro.bench.reporting import ExperimentReport, arithmetic_mean
from repro.bench.scaling import PAPER_SF10000_TRIPLES, paper_work_scale
from repro.core.session import S2RDFSession
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.template import instantiate_many

DEFAULT_THRESHOLDS = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def run_table6_threshold(
    scale_factor: float = 3.0,
    seed: int = 42,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    instantiations: int = 1,
    dataset: Optional[WatDivDataset] = None,
    template_names: Optional[Sequence[str]] = None,
    paper_triples: int = PAPER_SF10000_TRIPLES,
) -> ExperimentReport:
    """Regenerate Table 6 / Fig. 16 (SF threshold sweep)."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    work_scale = paper_work_scale(dataset.graph, paper_triples)
    templates = [
        template
        for template in BASIC_TEMPLATES
        if template_names is None or template.name in template_names
    ]

    report = ExperimentReport(
        name="Table 6 / Fig. 16 — ExtVP selectivity threshold sweep",
        description=(
            f"Storage footprint and Basic Testing runtime per SF threshold, scale factor {dataset.scale_factor:g}. "
            "Runtimes are arithmetic means of the simulated runtimes, also reported relative to threshold 0 (VP)."
        ),
        columns=[
            "threshold",
            "tables",
            "tuples",
            "hdfs_bytes",
            "tuples_vs_full",
            "runtime_ms",
            "runtime_vs_vp",
            "runtime_L",
            "runtime_S",
            "runtime_F",
            "runtime_C",
        ],
    )

    per_threshold: List[Dict[str, float]] = []
    for threshold in thresholds:
        use_extvp = threshold > 0.0
        session = S2RDFSession.from_graph(
            dataset.graph,
            selectivity_threshold=threshold if use_extvp else 1.0,
            use_extvp=use_extvp,
            work_scale=work_scale,
        )
        summary = session.storage_summary()
        runtimes: List[float] = []
        per_category: Dict[str, List[float]] = defaultdict(list)
        for template in templates:
            queries = instantiate_many(template, dataset, instantiations, seed=seed)
            template_runtimes = [session.query(q).simulated_runtime_ms for q in queries]
            mean_runtime = arithmetic_mean(template_runtimes)
            runtimes.append(mean_runtime)
            per_category[template.category].append(mean_runtime)
        per_threshold.append(
            {
                "threshold": threshold,
                "tables": summary["table_counts"]["total"],
                "tuples": summary["total_tuples"],
                "hdfs_bytes": summary["hdfs_bytes"],
                "runtime_ms": arithmetic_mean(runtimes),
                "runtime_L": arithmetic_mean(per_category.get("L", [0.0])),
                "runtime_S": arithmetic_mean(per_category.get("S", [0.0])),
                "runtime_F": arithmetic_mean(per_category.get("F", [0.0])),
                "runtime_C": arithmetic_mean(per_category.get("C", [0.0])),
            }
        )

    full_tuples = per_threshold[-1]["tuples"] if per_threshold else 1
    vp_runtime = per_threshold[0]["runtime_ms"] if per_threshold else 1.0
    for entry in per_threshold:
        report.add_row(
            threshold=entry["threshold"],
            tables=entry["tables"],
            tuples=entry["tuples"],
            hdfs_bytes=entry["hdfs_bytes"],
            tuples_vs_full=round(entry["tuples"] / full_tuples, 3) if full_tuples else 0.0,
            runtime_ms=round(entry["runtime_ms"], 2),
            runtime_vs_vp=round(entry["runtime_ms"] / vp_runtime, 3) if vp_runtime else 0.0,
            runtime_L=round(entry["runtime_L"], 2),
            runtime_S=round(entry["runtime_S"], 2),
            runtime_F=round(entry["runtime_F"], 2),
            runtime_C=round(entry["runtime_C"], 2),
        )

    report.add_note(
        "Expected shape: threshold 0.25 already captures most of the runtime benefit of full ExtVP while "
        "storing only a fraction of its tuples (paper: ~95 % of the benefit at ~25 % of the tuples)."
    )
    return report
