"""Native engine vs the sqlite SQL-lowering backend on WatDiv Basic.

Both engines execute the *same* compiled plan IR — the native engine as a
visitor of in-process operators, the sqlite backend as one parameterized SQL
statement over an in-memory sqlite3 database loaded from the catalog.  This
benchmark runs the WatDiv Basic subset on both, asserts bag-equality on every
query (a perf number for a wrong answer is worthless) and reports per-query
wall clocks side by side.

The sqlite numbers separate the one-time table load (paid on the first query
that touches each table, like Spark reading Parquet into the scan cache) from
steady-state statement execution: each query is warmed once before timing, so
``sqlite_ms`` is the statement cost against already-loaded tables, and the
load cost is reported once as ``load_ms``.

Run directly (used by CI in smoke mode)::

    PYTHONPATH=src python -c "from repro.bench.sql_backend import main; main(['--smoke', '--json'])"
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.bench.reporting import ExperimentReport, write_bench_json
from repro.core.session import S2RDFSession, SessionConfig
from repro.mappings.extvp import ExtVPLayout
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.template import instantiate_template


def _bag(relation) -> List[str]:
    return sorted(map(repr, relation.rows))


def _time_query(session: S2RDFSession, query_text: str, repeats: int) -> Tuple[float, int]:
    """Best-of-``repeats`` wall clock (ms) and the result cardinality."""
    best = float("inf")
    rows = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = session.query(query_text)
        best = min(best, (time.perf_counter() - start) * 1000.0)
        rows = len(result)
    return best, rows


def run_sql_backend(
    scale_factor: float = 1.0,
    seed: int = 42,
    repeats: int = 3,
    dataset: Optional[WatDivDataset] = None,
) -> ExperimentReport:
    """Compare native and sqlite execution on the WatDiv Basic subset."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    layout = ExtVPLayout(selectivity_threshold=1.0)
    layout.build(dataset.graph)
    queries = [
        (template.name, instantiate_template(template, dataset))
        for template in BASIC_TEMPLATES
    ]

    config = {"journal_enabled": False, "tracing_enabled": False}
    native = S2RDFSession(layout, config=SessionConfig.from_flat(**config))
    sqlite = S2RDFSession(layout, config=SessionConfig.from_flat(engine="sqlite", **config))

    # Pay the one-time sqlite table load up front (first touch per table) so
    # the per-query numbers measure statement execution, not bulk INSERTs.
    load_start = time.perf_counter()
    for _, query_text in queries:
        sqlite.query(query_text)
    load_ms = (time.perf_counter() - load_start) * 1000.0

    report = ExperimentReport(
        name="SQL backend — native operators vs sqlite lowering (WatDiv Basic)",
        description=(
            f"WatDiv Basic subset at scale factor {dataset.scale_factor:g}, best of {repeats} "
            "runs per engine; every query is bag-equality-checked across engines before timing "
            "counts. sqlite numbers are steady-state (tables pre-loaded); the one-time load is "
            "reported separately."
        ),
        columns=["query", "rows", "native_ms", "sqlite_ms", "speedup"],
    )

    total_native = 0.0
    total_sqlite = 0.0
    try:
        for name, query_text in queries:
            native_result = native.query(query_text)
            sqlite_result = sqlite.query(query_text)
            assert sqlite_result.engine == "sqlite"
            assert _bag(native_result.relation) == _bag(sqlite_result.relation), (
                f"engine mismatch on {name}"
            )
            native_ms, native_rows = _time_query(native, query_text, repeats)
            sqlite_ms, sqlite_rows = _time_query(sqlite, query_text, repeats)
            assert native_rows == sqlite_rows == len(native_result)
            total_native += native_ms
            total_sqlite += sqlite_ms
            report.add_row(
                query=name,
                rows=native_rows,
                native_ms=round(native_ms, 3),
                sqlite_ms=round(sqlite_ms, 3),
                # Rendered as text on purpose: a run-to-run noisy ratio must
                # not become a gated counter in the machine-readable output.
                speedup=f"{native_ms / sqlite_ms:.2f}x" if sqlite_ms > 0 else "-",
            )
    finally:
        native.close()
        sqlite.close()

    report.add_note(
        f"one-time sqlite table load (all {len(queries)} queries' scan sets): {load_ms:.1f} ms"
    )
    report.stash = {
        "queries": len(queries),
        "mismatches": 0,  # every query above is asserted bag-equal
        "load_ms": load_ms,
        "total_native_ms": total_native,
        "total_sqlite_ms": total_sqlite,
    }
    return report


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description="Native vs sqlite backend benchmark")
    parser.add_argument("--scale", type=float, default=1.0, help="WatDiv-like scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="timed runs per query per engine")
    parser.add_argument(
        "--smoke", action="store_true", help="CI mode: tiny scale, asserts cross-engine equality"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write machine-readable benchmarks/output/BENCH_sql_backend.json",
    )
    args = parser.parse_args(argv)
    scale = min(args.scale, 1.0) if args.smoke else args.scale
    report = run_sql_backend(scale_factor=scale, repeats=args.repeats)
    print(report.to_text())
    if args.json:
        print(f"wrote {write_bench_json(report, 'sql_backend')}")
    assert report.stash["mismatches"] == 0
    print(f"equality check passed on {report.stash['queries']} queries")


if __name__ == "__main__":
    main()
