"""Table 2: load times, tuple counts and storage sizes per system and scale.

The paper reports, for every WatDiv scale factor, the number of tuples and the
HDFS footprint of the original data, VP, ExtVP and the competitor systems,
plus load times.  This experiment regenerates the same rows at laptop scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines import (
    H2RDFPlusEngine,
    PigSparqlEngine,
    S2RDFExtVPEngine,
    S2RDFVPEngine,
    SempalaEngine,
    ShardEngine,
)
from repro.bench.reporting import ExperimentReport
from repro.engine.relation import Relation
from repro.engine.storage import HdfsSimulator
from repro.watdiv.generator import generate_dataset


def run_table2_load(
    scale_factors: Sequence[float] = (1.0, 2.0, 4.0),
    seed: int = 42,
    engines: Optional[List] = None,
    selectivity_threshold: float = 1.0,
) -> ExperimentReport:
    """Regenerate Table 2 at the given scale factors."""
    report = ExperimentReport(
        name="Table 2 — load times and store sizes",
        description=(
            "Tuples, simulated HDFS size and load time per layout/system and scale factor "
            "(paper: WatDiv SF10..SF10000; here: scaled-down WatDiv-like data)"
        ),
        columns=[
            "scale_factor",
            "triples",
            "system",
            "tuples",
            "tables",
            "hdfs_bytes",
            "simulated_load_s",
            "wallclock_s",
        ],
    )
    for scale_factor in scale_factors:
        dataset = generate_dataset(scale_factor=scale_factor, seed=seed)
        graph = dataset.graph

        # The "original" row: the dataset in N-Triples text form.
        hdfs = HdfsSimulator()
        triples_relation = Relation(("s", "p", "o"), ((t.subject, t.predicate, t.object) for t in graph))
        original = hdfs.write_text("original/dataset.nt", triples_relation)
        report.add_row(
            scale_factor=scale_factor,
            triples=len(graph),
            system="original (N-Triples)",
            tuples=len(graph),
            tables=1,
            hdfs_bytes=original.size_bytes,
            simulated_load_s=0.0,
            wallclock_s=0.0,
        )

        engine_instances = engines if engines is not None else [
            S2RDFVPEngine(),
            S2RDFExtVPEngine(selectivity_threshold=selectivity_threshold),
            H2RDFPlusEngine(),
            SempalaEngine(),
            PigSparqlEngine(),
            ShardEngine(),
        ]
        for engine in engine_instances:
            load = engine.load(graph)
            report.add_row(
                scale_factor=scale_factor,
                triples=len(graph),
                system=load.engine,
                tuples=load.tuples_stored,
                tables=load.table_count,
                hdfs_bytes=load.hdfs_bytes,
                simulated_load_s=round(load.simulated_load_seconds, 3),
                wallclock_s=round(load.wallclock_seconds, 3),
            )
    report.add_note(
        "Expected shape: ExtVP stores an order of magnitude more tuples than VP and its "
        "load time dominates every other system, mirroring the paper's Table 2."
    )
    return report
