"""Observability overhead guard: tracing must be free when disabled.

The tracer is threaded through every operator, exchange and pool task, so the
query hot path now calls ``tracer.span(...)`` everywhere.  The design promise
is that a *disabled* tracer costs nothing measurable: ``span()`` returns one
shared no-op singleton, so each instrumentation site is a method call plus a
``with`` block — no allocation, no lock, no clock read.

This benchmark quantifies that promise on the partition-scaling workload and
asserts it stays below a 2 % overhead budget.  Comparing two wall-clock runs
of the same workload is far too noisy at this duration (scheduler jitter
between two identical runs routinely exceeds 2 %), so the guard is computed
deterministically instead:

1. run the workload with tracing *enabled* once and count the span/event
   operations it performs (the instrumentation-site traffic);
2. micro-time the no-op span path (``span()`` + ``__enter__`` + ``__exit__``
   on a disabled tracer) over millions of iterations;
3. overhead budget check: ``span_ops x noop_cost`` must be < 2 % of the
   workload's tracing-disabled wall-clock time.

The raw disabled-vs-enabled wall clocks are reported as well, informationally.

Run directly (used by CI in smoke mode)::

    PYTHONPATH=src python -m repro.bench.obs_overhead --smoke
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.bench.reporting import ExperimentReport, write_bench_json
from repro.core.session import S2RDFSession, SessionConfig
from repro.mappings.extvp import ExtVPLayout
from repro.obs.trace import Tracer
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.template import instantiate_many

#: The promise this benchmark enforces.
OVERHEAD_BUDGET = 0.02


def measure_noop_span_cost(iterations: int = 200_000) -> float:
    """Seconds per ``span()`` + enter/exit round trip on a disabled tracer."""
    tracer = Tracer(enabled=False)
    span = tracer.span  # bind once; instrumentation sites hold the tracer too
    start = time.perf_counter()
    for _ in range(iterations):
        with span("noop", category="bench"):
            pass
    elapsed = time.perf_counter() - start
    return elapsed / iterations


def _workload(dataset: WatDivDataset, instantiations: int, seed: int) -> List[str]:
    queries: List[str] = []
    for template in BASIC_TEMPLATES:
        queries.extend(instantiate_many(template, dataset, instantiations, seed=seed))
    return queries


def _run(session: S2RDFSession, queries: Sequence[str]) -> float:
    start = time.perf_counter()
    for query_text in queries:
        session.query(query_text)
    return (time.perf_counter() - start) * 1000.0


def run_obs_overhead(
    scale_factor: float = 1.0,
    seed: int = 42,
    num_partitions: int = 4,
    instantiations: int = 1,
    repeats: int = 3,
    dataset: Optional[WatDivDataset] = None,
) -> ExperimentReport:
    """Quantify the cost of the tracing instrumentation, enabled and disabled."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    layout = ExtVPLayout(selectivity_threshold=1.0)
    layout.build(dataset.graph)
    queries = _workload(dataset, instantiations, seed)

    def session_for(tracing_enabled: bool) -> S2RDFSession:
        return S2RDFSession(
            layout,
            config=SessionConfig(
                num_partitions=num_partitions,
                tracing_enabled=tracing_enabled,
            ),
        )

    # Wall clocks, best-of-N to shave scheduler noise (still informational).
    disabled_ms = float("inf")
    enabled_ms = float("inf")
    span_ops = 0
    for _ in range(repeats):
        with session_for(tracing_enabled=False) as session:
            disabled_ms = min(disabled_ms, _run(session, queries))
        with session_for(tracing_enabled=True) as session:
            enabled_ms = min(enabled_ms, _run(session, queries))
            summary = session.tracer.summary()
            span_ops = summary["spans"] + summary["events"]
            session.tracer.clear()

    noop_seconds = measure_noop_span_cost()
    # The deterministic guard: what the instrumentation sites cost when the
    # tracer is disabled, as a fraction of the workload they instrument.
    estimated_overhead_ms = span_ops * noop_seconds * 1000.0
    overhead_fraction = estimated_overhead_ms / disabled_ms if disabled_ms > 0 else 0.0

    report = ExperimentReport(
        name="Observability overhead — disabled tracing must be free",
        description=(
            f"WatDiv Basic workload ({len(queries)} queries, scale factor {dataset.scale_factor:g}), "
            f"num_partitions={num_partitions}, best of {repeats} runs; guard: span-site traffic x "
            f"no-op span cost < {OVERHEAD_BUDGET:.0%} of the tracing-disabled wall clock"
        ),
        columns=["metric", "value"],
    )
    report.add_row(metric="workload wall (tracing disabled)", value=f"{disabled_ms:.1f} ms")
    report.add_row(metric="workload wall (tracing enabled)", value=f"{enabled_ms:.1f} ms")
    report.add_row(metric="span operations per workload pass", value=span_ops)
    report.add_row(metric="no-op span round trip", value=f"{noop_seconds * 1e9:.0f} ns")
    report.add_row(
        metric="estimated disabled-tracing overhead", value=f"{estimated_overhead_ms:.3f} ms"
    )
    report.add_row(
        metric="overhead fraction (guarded < 2%)", value=f"{overhead_fraction:.5f}"
    )
    report.add_note(
        "the guard is deterministic (site count x measured no-op cost) because two wall-clock runs "
        "of a sub-second workload differ by more than 2% from scheduler noise alone; the raw wall "
        "clocks are informational."
    )
    report.stash = {
        "disabled_ms": disabled_ms,
        "enabled_ms": enabled_ms,
        "span_ops": span_ops,
        "noop_span_ns": noop_seconds * 1e9,
        "estimated_overhead_ms": estimated_overhead_ms,
        "overhead_fraction": overhead_fraction,
    }
    return report


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description="Observability overhead guard")
    parser.add_argument("--scale", type=float, default=1.0, help="WatDiv-like scale factor")
    parser.add_argument("--partitions", type=int, default=4, help="shuffle partition count")
    parser.add_argument(
        "--smoke", action="store_true", help="tiny scale for CI: asserts the 2% budget"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write machine-readable benchmarks/output/BENCH_obs_overhead.json",
    )
    args = parser.parse_args(argv)
    scale = 0.3 if args.smoke else args.scale
    report = run_obs_overhead(scale_factor=scale, num_partitions=args.partitions)
    print(report.to_text())
    if args.json:
        print(f"wrote {write_bench_json(report, 'obs_overhead')}")
    fraction = report.stash["overhead_fraction"]
    assert fraction < OVERHEAD_BUDGET, (
        f"disabled-tracing overhead {fraction:.4f} exceeds the {OVERHEAD_BUDGET:.0%} budget"
    )
    print(f"overhead guard passed: {fraction:.5f} < {OVERHEAD_BUDGET:.0%}")


if __name__ == "__main__":
    main()
