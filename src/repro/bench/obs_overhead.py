"""Observability overhead guard: tracing and journaling must stay near-free.

The tracer is threaded through every operator, exchange and pool task, so the
query hot path now calls ``tracer.span(...)`` everywhere.  The design promise
is that a *disabled* tracer costs nothing measurable: ``span()`` returns one
shared no-op singleton, so each instrumentation site is a method call plus a
``with`` block — no allocation, no lock, no clock read.

This benchmark quantifies that promise on the partition-scaling workload and
asserts it stays below a 2 % overhead budget.  Comparing two wall-clock runs
of the same workload is far too noisy at this duration (scheduler jitter
between two identical runs routinely exceeds 2 %), so the guard is computed
deterministically instead:

1. run the workload with tracing *enabled* once and count the span/event
   operations it performs (the instrumentation-site traffic);
2. micro-time the no-op span path (``span()`` + ``__enter__`` + ``__exit__``
   on a disabled tracer) over millions of iterations;
3. overhead budget check: ``span_ops x noop_cost`` must be < 2 % of the
   workload's tracing-disabled wall-clock time.

The *query journal* (one structured record appended per executed query, on by
default) is guarded the same way: one journal record costs a template
rendering, a fingerprint hash, a dataclass build and a buffered JSONL append,
so the guard micro-times that whole path (best of three runs — a single pass
is vulnerable to scheduler noise) on a representative workload query and
asserts ``queries x per-record cost`` stays under the same 2 % budget.

The raw disabled-vs-enabled wall clocks are reported as well, informationally.

Run directly (used by CI in smoke mode)::

    PYTHONPATH=src python -m repro.bench.obs_overhead --smoke
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import List, Optional, Sequence, Tuple

from repro.bench.reporting import ExperimentReport, write_bench_json
from repro.core.session import S2RDFSession, SessionConfig
from repro.mappings.extvp import ExtVPLayout
from repro.obs.journal import JournalRecord, QueryJournal
from repro.obs.trace import Tracer
from repro.sparql.parser import parse_query
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.template import instantiate_many

#: The promise this benchmark enforces (tracing and journaling alike).
OVERHEAD_BUDGET = 0.02


def measure_noop_span_cost(iterations: int = 100_000) -> float:
    """Seconds per ``span()`` + enter/exit round trip on a disabled tracer."""
    tracer = Tracer(enabled=False)
    span = tracer.span  # bind once; instrumentation sites hold the tracer too
    start = time.perf_counter()
    for _ in range(iterations):
        with span("noop", category="bench"):
            pass
    elapsed = time.perf_counter() - start
    return elapsed / iterations


def measure_journal_record_cost(
    query_text: str, iterations: int = 1_000, repeats: int = 2
) -> float:
    """Seconds per journal record: template render + fingerprint + append.

    Times the full per-query journal path on an already parsed query (parsing
    happens regardless of journaling) against a *persistent* journal in a
    temporary directory, so the measured cost includes the buffered JSONL
    write (and its amortised flushes) a stored-dataset session pays.  Best of
    ``repeats`` runs — a single pass is vulnerable to scheduler noise.
    """
    parsed = parse_query(query_text)
    best = float("inf")
    with tempfile.TemporaryDirectory() as scratch:
        journal = QueryJournal(directory=os.path.join(scratch, "journal"))
        for _ in range(repeats):
            start = time.perf_counter()
            for index in range(iterations):
                journal.append(
                    JournalRecord(
                        fingerprint="",
                        template="",
                        epoch=0,
                        rows=index,
                        wall_ms=1.0,
                        phase_ms={"parse": 0.1, "compile": 0.2, "plan": 0.1, "execute": 0.5},
                        scanned_tables={"vp_likes": 10, "extvp_os_follows__likes": 4},
                        estimated_rows=index,
                        estimate_q_error=1.0,
                    ),
                    query=parsed,
                )
            best = min(best, (time.perf_counter() - start) / iterations)
        journal.close()
    return best


def _workload(dataset: WatDivDataset, instantiations: int, seed: int) -> List[str]:
    queries: List[str] = []
    for template in BASIC_TEMPLATES:
        queries.extend(instantiate_many(template, dataset, instantiations, seed=seed))
    return queries


def _run(session: S2RDFSession, queries: Sequence[str]) -> float:
    start = time.perf_counter()
    for query_text in queries:
        session.query(query_text)
    return (time.perf_counter() - start) * 1000.0


def run_obs_overhead(
    scale_factor: float = 1.0,
    seed: int = 42,
    num_partitions: int = 4,
    instantiations: int = 1,
    repeats: int = 3,
    dataset: Optional[WatDivDataset] = None,
) -> ExperimentReport:
    """Quantify the cost of the tracing instrumentation, enabled and disabled."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    layout = ExtVPLayout(selectivity_threshold=1.0)
    layout.build(dataset.graph)
    queries = _workload(dataset, instantiations, seed)

    def session_for(tracing_enabled: bool) -> S2RDFSession:
        # Journaling is disabled here so the tracing guard measures tracing
        # alone; the journal path has its own deterministic guard below.
        return S2RDFSession(
            layout,
            config=SessionConfig.from_flat(
                num_partitions=num_partitions,
                tracing_enabled=tracing_enabled,
                journal_enabled=False,
            ),
        )

    # All four measurements are interleaved round by round and reduced with
    # min(): the guarded numbers are *ratios*, so numerator and denominator
    # must be sampled under the same machine conditions — measuring the micro
    # costs only after all the wall clocks lets a load spike inflate one side
    # of the ratio but not the other.
    disabled_ms = float("inf")
    enabled_ms = float("inf")
    noop_seconds = float("inf")
    record_seconds = float("inf")
    span_ops = 0
    for _ in range(repeats):
        with session_for(tracing_enabled=False) as session:
            disabled_ms = min(disabled_ms, _run(session, queries))
        with session_for(tracing_enabled=True) as session:
            enabled_ms = min(enabled_ms, _run(session, queries))
            summary = session.tracer.summary()
            span_ops = summary["spans"] + summary["events"]
            session.tracer.clear()
        noop_seconds = min(noop_seconds, measure_noop_span_cost())
        record_seconds = min(record_seconds, measure_journal_record_cost(queries[0]))

    # The deterministic guard: what the instrumentation sites cost when the
    # tracer is disabled, as a fraction of the workload they instrument.
    estimated_overhead_ms = span_ops * noop_seconds * 1000.0
    overhead_fraction = estimated_overhead_ms / disabled_ms if disabled_ms > 0 else 0.0

    # Journal guard, same shape: one record per query, micro-timed on a
    # representative workload query (persistent JSONL path included).
    journal_overhead_ms = len(queries) * record_seconds * 1000.0
    journal_fraction = journal_overhead_ms / disabled_ms if disabled_ms > 0 else 0.0

    report = ExperimentReport(
        name="Observability overhead — disabled tracing must be free",
        description=(
            f"WatDiv Basic workload ({len(queries)} queries, scale factor {dataset.scale_factor:g}), "
            f"num_partitions={num_partitions}, best of {repeats} runs; guard: span-site traffic x "
            f"no-op span cost < {OVERHEAD_BUDGET:.0%} of the tracing-disabled wall clock"
        ),
        columns=["metric", "value"],
    )
    report.add_row(metric="workload wall (tracing disabled)", value=f"{disabled_ms:.1f} ms")
    report.add_row(metric="workload wall (tracing enabled)", value=f"{enabled_ms:.1f} ms")
    report.add_row(metric="span operations per workload pass", value=span_ops)
    report.add_row(metric="no-op span round trip", value=f"{noop_seconds * 1e9:.0f} ns")
    report.add_row(
        metric="estimated disabled-tracing overhead", value=f"{estimated_overhead_ms:.3f} ms"
    )
    report.add_row(
        metric="overhead fraction (guarded < 2%)", value=f"{overhead_fraction:.5f}"
    )
    report.add_row(metric="journal record cost", value=f"{record_seconds * 1e6:.1f} us")
    report.add_row(
        metric="estimated journaling overhead", value=f"{journal_overhead_ms:.3f} ms"
    )
    report.add_row(
        metric="journal overhead fraction (guarded < 2%)", value=f"{journal_fraction:.5f}"
    )
    report.add_note(
        "the guard is deterministic (site count x measured no-op cost) because two wall-clock runs "
        "of a sub-second workload differ by more than 2% from scheduler noise alone; the raw wall "
        "clocks are informational."
    )
    report.stash = {
        "disabled_ms": disabled_ms,
        "enabled_ms": enabled_ms,
        "span_ops": span_ops,
        "noop_span_ns": noop_seconds * 1e9,
        "estimated_overhead_ms": estimated_overhead_ms,
        "overhead_fraction": overhead_fraction,
        "journal_record_us": record_seconds * 1e6,
        "journal_overhead_ms": journal_overhead_ms,
        "journal_overhead_fraction": journal_fraction,
    }
    return report


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description="Observability overhead guard")
    parser.add_argument("--scale", type=float, default=1.0, help="WatDiv-like scale factor")
    parser.add_argument("--partitions", type=int, default=4, help="shuffle partition count")
    parser.add_argument(
        "--smoke", action="store_true", help="CI mode: asserts the 2% budget"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write machine-readable benchmarks/output/BENCH_obs_overhead.json",
    )
    args = parser.parse_args(argv)
    # Smoke mode used to shrink the scale factor, but the full workload runs
    # in about a second anyway — and at tiny scales the queries degenerate
    # into sub-millisecond microqueries against which a fixed per-record
    # journal cost cannot meaningfully be expressed as a percentage.
    report = run_obs_overhead(scale_factor=args.scale, num_partitions=args.partitions)
    print(report.to_text())
    if args.json:
        print(f"wrote {write_bench_json(report, 'obs_overhead')}")
    fraction = report.stash["overhead_fraction"]
    assert fraction < OVERHEAD_BUDGET, (
        f"disabled-tracing overhead {fraction:.4f} exceeds the {OVERHEAD_BUDGET:.0%} budget"
    )
    print(f"overhead guard passed: {fraction:.5f} < {OVERHEAD_BUDGET:.0%}")
    journal_fraction = report.stash["journal_overhead_fraction"]
    assert journal_fraction < OVERHEAD_BUDGET, (
        f"journaling overhead {journal_fraction:.4f} exceeds the {OVERHEAD_BUDGET:.0%} budget"
    )
    print(f"journal guard passed: {journal_fraction:.5f} < {OVERHEAD_BUDGET:.0%}")


if __name__ == "__main__":
    main()
