"""Ablation experiments for the design choices DESIGN.md calls out.

* Join-order optimisation (Algorithm 4 vs Algorithm 3): compare intermediate
  result sizes and simulated runtimes with and without the size-based ordering
  (the paper motivates this with query Q1 / Fig. 12).
* OO correlations: the paper chooses not to materialise OO ExtVP tables
  because they rarely reduce anything; the ablation materialises them and
  measures how many would be stored and how much they would shrink VP.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.reporting import ExperimentReport
from repro.core.session import S2RDFSession
from repro.mappings.extvp import CorrelationKind, ExtVPLayout
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.incremental_queries import INCREMENTAL_TEMPLATES
from repro.watdiv.template import instantiate_template


def run_join_order_ablation(
    scale_factor: float = 2.0,
    seed: int = 42,
    dataset: Optional[WatDivDataset] = None,
    template_names: Optional[Sequence[str]] = None,
) -> ExperimentReport:
    """Algorithm 4 (size-ordered joins) versus Algorithm 3 (textual order)."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    optimized = S2RDFSession.from_graph(dataset.graph, optimize_join_order=True)
    unoptimized = S2RDFSession.from_graph(dataset.graph, optimize_join_order=False)

    report = ExperimentReport(
        name="Ablation — join order optimisation (Algorithm 4 vs Algorithm 3)",
        description=f"Intermediate tuples and simulated runtime with and without size-based join ordering, SF {dataset.scale_factor:g}",
        columns=[
            "query",
            "optimized_ms",
            "unoptimized_ms",
            "optimized_intermediate",
            "unoptimized_intermediate",
            "intermediate_ratio",
            "results",
        ],
    )
    templates = BASIC_TEMPLATES + [t for t in INCREMENTAL_TEMPLATES if t.name.endswith("-5")]
    for template in templates:
        if template_names is not None and template.name not in template_names:
            continue
        query_text = instantiate_template(template, dataset)
        optimized_result = optimized.query(query_text)
        unoptimized_result = unoptimized.query(query_text)
        if len(optimized_result) != len(unoptimized_result):
            raise AssertionError(f"{template.name}: join order changed the result size")
        ratio = (
            optimized_result.metrics.intermediate_tuples / unoptimized_result.metrics.intermediate_tuples
            if unoptimized_result.metrics.intermediate_tuples
            else 1.0
        )
        report.add_row(
            query=template.name,
            optimized_ms=round(optimized_result.simulated_runtime_ms, 2),
            unoptimized_ms=round(unoptimized_result.simulated_runtime_ms, 2),
            optimized_intermediate=optimized_result.metrics.intermediate_tuples,
            unoptimized_intermediate=unoptimized_result.metrics.intermediate_tuples,
            intermediate_ratio=round(ratio, 3),
            results=len(optimized_result),
        )
    report.add_note("Expected shape: the optimised order never produces more intermediate tuples than the textual order.")
    return report


def run_oo_correlation_ablation(
    scale_factor: float = 2.0,
    seed: int = 42,
    dataset: Optional[WatDivDataset] = None,
) -> ExperimentReport:
    """Quantify what materialising OO correlation tables would buy (Sec. 5.2)."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    layout = ExtVPLayout(include_oo=True)
    layout.build(dataset.graph)

    report = ExperimentReport(
        name="Ablation — OO correlation tables",
        description=(
            f"Size and selectivity statistics of the OO ExtVP tables the paper chooses not to build, SF {dataset.scale_factor:g}"
        ),
        columns=["kind", "tables_total", "tables_materialized", "tables_empty", "tuples", "mean_selectivity"],
    )
    for kind in (CorrelationKind.SS, CorrelationKind.OS, CorrelationKind.SO, CorrelationKind.OO):
        infos = [info for info in layout.statistics.tables.values() if info.kind == kind]
        materialized = [info for info in infos if info.materialized]
        non_empty = [info for info in infos if not info.is_empty]
        mean_selectivity = (
            sum(info.selectivity for info in non_empty) / len(non_empty) if non_empty else 0.0
        )
        report.add_row(
            kind=kind.value.upper(),
            tables_total=len(infos),
            tables_materialized=len(materialized),
            tables_empty=len([info for info in infos if info.is_empty]),
            tuples=sum(info.row_count for info in materialized),
            mean_selectivity=round(mean_selectivity, 3),
        )
    report.add_note(
        "Expected shape: OO tables have selectivities close to 1 (or are self-join duplicates), confirming the "
        "paper's decision to skip them."
    )
    return report
