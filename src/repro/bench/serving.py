"""Closed-loop multi-client serving benchmark on WatDiv Basic.

N client threads each run a private shuffled copy of the WatDiv Basic query
mix through one :class:`~repro.serve.scheduler.QueryScheduler` in a closed
loop (submit → await result → next query), at 1, 4 and 16 concurrent
clients.  The scheduler executes on a persisted dataset in
``execution_mode="process"`` — whole queries dispatch to the partition worker
pool, so concurrent clients actually run on multiple cores instead of
time-slicing the GIL.

Every result collected during the timed runs is bag-equality-checked against
a serial single-threaded execution of the same query before any number is
reported (a throughput number for wrong answers is worthless).  Reported per
client level: total wall clock, per-query latency p50/p99, and QPS.  The
headline is the *scaling* ratio QPS(16 clients) / QPS(1 client); full
(non-smoke) mode asserts it meets ``require_scaling`` (the ISSUE's >= 2x
acceptance bar).  QPS and the scaling ratio are rendered as strings on
purpose: run-to-run noisy ratios must not become gated counters in the
machine-readable output.

Run directly (used by CI in smoke mode)::

    PYTHONPATH=src python -c "from repro.bench.serving import main; main(['--smoke', '--json'])"
"""

from __future__ import annotations

import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.reporting import ExperimentReport, write_bench_json
from repro.core.config import ServingConfig
from repro.core.session import S2RDFSession
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.template import instantiate_template


def _bag(relation) -> List[str]:
    return sorted(map(repr, relation.rows))


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _run_client_level(
    session: S2RDFSession,
    serving: ServingConfig,
    queries: List[Tuple[str, str]],
    clients: int,
    reference: Dict[str, List[str]],
) -> Tuple[float, List[float], int, int]:
    """One closed-loop load level: returns (wall_ms, latencies, queries, mismatches)."""
    mismatches = [0]
    latencies: List[float] = []
    latency_lock = threading.Lock()

    with session.serve(serving=serving) as scheduler:
        # Warm the pool/caches outside the timed window (worker cold opens
        # and first-touch segment decodes are startup costs, not throughput).
        scheduler.submit(queries[0][1]).result(timeout=120)

        def client(offset: int) -> None:
            # Each client walks the mix from its own offset so concurrent
            # clients exercise different queries at any instant.
            own: List[float] = []
            for step in range(len(queries)):
                name, text = queries[(offset + step) % len(queries)]
                start = time.perf_counter()
                result = scheduler.submit(text).result(timeout=300)
                own.append((time.perf_counter() - start) * 1000.0)
                if _bag(result.relation) != reference[name]:
                    with latency_lock:
                        mismatches[0] += 1
            with latency_lock:
                latencies.extend(own)

        threads = [
            threading.Thread(target=client, args=(i * 3,), name=f"client-{i}")
            for i in range(clients)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_ms = (time.perf_counter() - wall_start) * 1000.0
    return wall_ms, latencies, clients * len(queries), mismatches[0]


def run_serving(
    scale_factor: float = 20.0,
    seed: int = 42,
    client_levels: Sequence[int] = (1, 4, 16),
    num_partitions: int = 2,
    worker_processes: Optional[int] = None,
    require_scaling: Optional[float] = 2.0,
    dataset: Optional[WatDivDataset] = None,
) -> ExperimentReport:
    """Measure closed-loop serving throughput at increasing client counts.

    ``require_scaling`` (when not ``None``) asserts QPS at the highest client
    level reaches that multiple of single-client QPS — smoke mode passes
    ``None`` because two-core CI runners cannot promise parallel speedups.
    """
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    queries = [
        (template.name, instantiate_template(template, dataset))
        for template in BASIC_TEMPLATES
    ]

    report = ExperimentReport(
        name="Concurrent serving — closed-loop clients on the process worker pool",
        description=(
            f"WatDiv Basic mix at scale factor {dataset.scale_factor:g}, persisted dataset "
            f"({num_partitions} partition(s)), execution_mode='process'. Each client runs the "
            f"{len(queries)}-query mix once, closed loop, through one QueryScheduler; results "
            "are bag-equality-checked against serial execution. qps and the scaling ratio are "
            "text (noisy ratios are not gated counters)."
        ),
        columns=["clients", "queries", "rows", "wall_ms", "p50_ms", "p99_ms", "qps"],
    )

    qps_by_level: Dict[int, float] = {}
    total_mismatches = 0
    with tempfile.TemporaryDirectory() as root:
        path = f"{root}/dataset"
        builder = S2RDFSession.from_graph(
            dataset.graph, num_partitions=num_partitions, journal_enabled=False
        )
        builder.save_dataset(path)
        builder.close()

        # Serial single-threaded reference: the bag every concurrent result
        # must reproduce, and the row counts reported per level.
        serial = S2RDFSession.open_dataset(path, journal_enabled=False)
        reference = {name: _bag(serial.query(text).relation) for name, text in queries}
        reference_rows = sum(len(bag) for bag in reference.values())
        serial.close()

        session = S2RDFSession.open_dataset(
            path,
            journal_enabled=False,
            execution_mode="process",
            worker_processes=worker_processes,
        )
        try:
            for clients in client_levels:
                serving = ServingConfig(
                    # One dispatcher per client keeps the closed loop from
                    # queueing behind an artificially small concurrency cap;
                    # the worker pool bounds true parallelism.
                    max_concurrent_queries=max(4, clients),
                    admission_queue_limit=max(64, clients * len(queries)),
                    # Clients run identical texts at different times; sharing
                    # would let coalescing fake the throughput numbers.
                    share_results=False,
                )
                wall_ms, latencies, executed, mismatches = _run_client_level(
                    session, serving, queries, clients, reference
                )
                total_mismatches += mismatches
                latencies.sort()
                qps = executed / (wall_ms / 1000.0) if wall_ms > 0 else 0.0
                qps_by_level[clients] = qps
                report.add_row(
                    clients=clients,
                    queries=executed,
                    rows=reference_rows * clients,
                    wall_ms=round(wall_ms, 3),
                    p50_ms=round(_percentile(latencies, 0.50), 3),
                    p99_ms=round(_percentile(latencies, 0.99), 3),
                    qps=f"{qps:.1f}",
                )
        finally:
            session.close()

    assert total_mismatches == 0, f"{total_mismatches} results diverged from serial execution"

    low = min(client_levels)
    high = max(client_levels)
    scaling = qps_by_level[high] / qps_by_level[low] if qps_by_level[low] > 0 else 0.0
    report.add_note(
        f"QPS {qps_by_level[low]:.1f} at {low} client(s) -> {qps_by_level[high]:.1f} at "
        f"{high} clients ({scaling:.2f}x)"
    )
    report.add_note(
        f"every result bag-equality-checked against serial execution "
        f"({len(queries)} distinct queries, 0 mismatches)"
    )
    report.stash = {
        "client_levels": list(client_levels),
        "queries_per_client": len(queries),
        "mismatches": 0,  # asserted above
        "qps": {str(level): qps for level, qps in qps_by_level.items()},
        "scaling": scaling,
    }
    if require_scaling is not None:
        assert scaling >= require_scaling, (
            f"QPS scaling {scaling:.2f}x at {high} clients below required "
            f"{require_scaling:.2f}x"
        )
    return report


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description="Closed-loop multi-client serving benchmark")
    parser.add_argument("--scale", type=float, default=20.0, help="WatDiv-like scale factor")
    parser.add_argument(
        "--workers", type=int, default=None, help="partition worker processes (default: auto)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny scale, 1/4 clients, asserts bag-equality but not the scaling gate",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write machine-readable benchmarks/output/BENCH_serving.json",
    )
    args = parser.parse_args(argv)
    smoke = args.smoke
    report = run_serving(
        scale_factor=min(args.scale, 1.0) if smoke else args.scale,
        client_levels=(1, 4) if smoke else (1, 4, 16),
        worker_processes=args.workers if args.workers is not None else (2 if smoke else None),
        require_scaling=None if smoke else 2.0,
    )
    print(report.to_text())
    if args.json:
        print(f"wrote {write_bench_json(report, 'serving')}")
    assert report.stash["mismatches"] == 0
    print(
        f"equality check passed on {report.stash['queries_per_client']} queries; "
        f"QPS scaling {report.stash['scaling']:.2f}x"
    )


if __name__ == "__main__":
    main()
