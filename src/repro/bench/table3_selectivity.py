"""Table 3 / Figure 13: Selectivity Testing — ExtVP versus VP in S2RDF.

For every ST query the experiment reports the simulated runtime on ExtVP and
on plain VP, the speedup, and the input-tuple reduction, grouped the way
Fig. 13 groups the queries (varying OS / SO / SS selectivity, high-selectivity
queries, OS-vs-SO choice and empty-result queries).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.reporting import ExperimentReport
from repro.bench.scaling import PAPER_SF10000_TRIPLES, paper_work_scale
from repro.core.session import S2RDFSession
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.selectivity_queries import SELECTIVITY_TEMPLATES
from repro.watdiv.template import instantiate_template


def run_table3_selectivity(
    scale_factor: float = 4.0,
    seed: int = 42,
    dataset: Optional[WatDivDataset] = None,
    query_names: Optional[Sequence[str]] = None,
    paper_triples: int = PAPER_SF10000_TRIPLES,
) -> ExperimentReport:
    """Regenerate Table 3 / Fig. 13 (ExtVP vs VP on the ST workload)."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    work_scale = paper_work_scale(dataset.graph, paper_triples)
    extvp_session = S2RDFSession.from_graph(
        dataset.graph, selectivity_threshold=1.0, use_extvp=True, work_scale=work_scale
    )
    vp_session = S2RDFSession.from_graph(dataset.graph, use_extvp=False, work_scale=work_scale)

    report = ExperimentReport(
        name="Table 3 / Fig. 13 — WatDiv Selectivity Testing (ExtVP vs VP)",
        description=f"Simulated runtimes of the ST queries on ExtVP and VP, scale factor {dataset.scale_factor:g}",
        columns=[
            "query",
            "category",
            "extvp_ms",
            "vp_ms",
            "speedup",
            "extvp_input_tuples",
            "vp_input_tuples",
            "input_reduction",
            "results",
        ],
    )

    for template in SELECTIVITY_TEMPLATES:
        if query_names is not None and template.name not in query_names:
            continue
        query_text = instantiate_template(template, dataset)
        extvp_result = extvp_session.query(query_text)
        vp_result = vp_session.query(query_text)
        if len(extvp_result) != len(vp_result):
            raise AssertionError(
                f"{template.name}: ExtVP and VP disagree ({len(extvp_result)} vs {len(vp_result)} rows)"
            )
        speedup = (
            vp_result.simulated_runtime_ms / extvp_result.simulated_runtime_ms
            if extvp_result.simulated_runtime_ms > 0
            else float("inf")
        )
        reduction = (
            extvp_result.metrics.input_tuples / vp_result.metrics.input_tuples
            if vp_result.metrics.input_tuples
            else 0.0
        )
        report.add_row(
            query=template.name,
            category=template.category,
            extvp_ms=round(extvp_result.simulated_runtime_ms, 2),
            vp_ms=round(vp_result.simulated_runtime_ms, 2),
            speedup=round(speedup, 2),
            extvp_input_tuples=extvp_result.metrics.input_tuples,
            vp_input_tuples=vp_result.metrics.input_tuples,
            input_reduction=round(reduction, 3),
            results=len(extvp_result),
        )
    report.add_note(
        "Expected shape: the lower the ExtVP selectivity factor of the probed correlation, the larger the "
        "ExtVP speedup (ST-1-3 and ST-3-3 benefit most); ST-8-x run in ~0 work thanks to statistics."
    )
    return report
