"""Shared reporting utilities for the experiment harness."""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Schema tag of the machine-readable benchmark output; bump on breaking
#: changes so downstream tooling (``benchmarks/check_bench_schema.py``) can
#: reject files it does not understand.
BENCH_SCHEMA = "s2rdf-bench/v1"

#: Column-name suffixes treated as wall-clock timings in :meth:`ExperimentReport.as_dict`.
_TIMING_SUFFIXES = ("_ms", "_s", "_seconds")


def _jsonable(value: Any) -> Any:
    """Coerce a report value into strict-JSON territory.

    Failed runs are recorded as ``float("inf")``, which strict JSON cannot
    represent; they become ``None``.  Unknown objects fall back to ``str``.
    """
    if isinstance(value, float) and (math.isinf(value) or math.isnan(value)):
        return None
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    return str(value)


def arithmetic_mean(values: Sequence[float]) -> float:
    """Arithmetic mean; infinite values (failed runs) are ignored."""
    finite = [v for v in values if v != float("inf")]
    if not finite:
        return float("inf")
    return sum(finite) / len(finite)


def geometric_mean(values: Sequence[float]) -> float:
    finite = [v for v in values if v != float("inf") and v > 0]
    if not finite:
        return float("inf")
    return math.exp(sum(math.log(v) for v in finite) / len(finite))


def format_runtime(milliseconds: float) -> str:
    """Render a runtime like the paper's tables (ms, 'F' for failed runs)."""
    if milliseconds == float("inf"):
        return "F"
    if milliseconds >= 100:
        return f"{milliseconds:.0f}"
    return f"{milliseconds:.1f}"


@dataclass
class ExperimentReport:
    """Rows of one experiment plus rendering helpers."""

    name: str
    description: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Machine-readable side results (raw totals, counters) for callers that
    #: assert on an experiment beyond its rendered rows — e.g. smoke modes.
    stash: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def row_for(self, **match: Any) -> Optional[Dict[str, Any]]:
        """First row whose values match all the given key/value pairs."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in match.items()):
                return row
        return None

    def to_text(self, max_width: int = 28) -> str:
        """Render the report as a fixed-width text table."""

        def render(value: Any) -> str:
            if value is None:
                return ""
            if isinstance(value, float):
                if value == float("inf"):
                    return "F"
                return f"{value:.3g}" if abs(value) < 1000 else f"{value:.0f}"
            return str(value)[:max_width]

        widths = {c: len(c) for c in self.columns}
        rendered_rows = []
        for row in self.rows:
            rendered = {c: render(row.get(c)) for c in self.columns}
            rendered_rows.append(rendered)
            for c in self.columns:
                widths[c] = max(widths[c], len(rendered[c]))
        lines = [f"== {self.name} ==", self.description, ""]
        lines.append(" | ".join(c.ljust(widths[c]) for c in self.columns))
        lines.append("-+-".join("-" * widths[c] for c in self.columns))
        for rendered in rendered_rows:
            lines.append(" | ".join(rendered[c].ljust(widths[c]) for c in self.columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable form of the report (``s2rdf-bench/v1``).

        Besides the raw rows/notes/stash, numeric columns are aggregated:
        columns with a timing suffix (``_ms``/``_s``/``_seconds``) sum into
        ``timings``, every other numeric column sums into ``counters`` — so a
        dashboard can plot totals without knowing each experiment's shape.
        """
        counters: Dict[str, float] = {}
        timings: Dict[str, float] = {}
        for column in self.columns:
            values = [
                v
                for v in self.column(column)
                if isinstance(v, (int, float))
                and not isinstance(v, bool)
                and not math.isinf(v)
                and not math.isnan(v)
            ]
            if not values:
                continue
            total = round(float(sum(values)), 3)
            if column.endswith(_TIMING_SUFFIXES):
                timings[column] = total
            else:
                counters[column] = total
        return {
            "schema": BENCH_SCHEMA,
            "name": self.name,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [_jsonable(row) for row in self.rows],
            "notes": list(self.notes),
            "counters": counters,
            "timings": timings,
            "stash": _jsonable(self.stash),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def __len__(self) -> int:
        return len(self.rows)


def default_bench_output_dir() -> Path:
    """``benchmarks/output/`` at the repository root (created on demand)."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "output"


def write_bench_json(
    report: ExperimentReport, slug: str, output_dir: Optional[Path] = None
) -> Path:
    """Write ``BENCH_<slug>.json`` for one experiment; returns the path."""
    directory = Path(output_dir) if output_dir is not None else default_bench_output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{slug}.json"
    path.write_text(report.to_json() + "\n", encoding="utf-8")
    return path


def read_bench_json(path: Path) -> Dict[str, Any]:
    """Load one ``BENCH_<slug>.json`` file (as written by :func:`write_bench_json`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
