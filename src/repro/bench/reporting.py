"""Shared reporting utilities for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


def arithmetic_mean(values: Sequence[float]) -> float:
    """Arithmetic mean; infinite values (failed runs) are ignored."""
    finite = [v for v in values if v != float("inf")]
    if not finite:
        return float("inf")
    return sum(finite) / len(finite)


def geometric_mean(values: Sequence[float]) -> float:
    finite = [v for v in values if v != float("inf") and v > 0]
    if not finite:
        return float("inf")
    return math.exp(sum(math.log(v) for v in finite) / len(finite))


def format_runtime(milliseconds: float) -> str:
    """Render a runtime like the paper's tables (ms, 'F' for failed runs)."""
    if milliseconds == float("inf"):
        return "F"
    if milliseconds >= 100:
        return f"{milliseconds:.0f}"
    return f"{milliseconds:.1f}"


@dataclass
class ExperimentReport:
    """Rows of one experiment plus rendering helpers."""

    name: str
    description: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Machine-readable side results (raw totals, counters) for callers that
    #: assert on an experiment beyond its rendered rows — e.g. smoke modes.
    stash: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def row_for(self, **match: Any) -> Optional[Dict[str, Any]]:
        """First row whose values match all the given key/value pairs."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in match.items()):
                return row
        return None

    def to_text(self, max_width: int = 28) -> str:
        """Render the report as a fixed-width text table."""

        def render(value: Any) -> str:
            if value is None:
                return ""
            if isinstance(value, float):
                if value == float("inf"):
                    return "F"
                return f"{value:.3g}" if abs(value) < 1000 else f"{value:.0f}"
            return str(value)[:max_width]

        widths = {c: len(c) for c in self.columns}
        rendered_rows = []
        for row in self.rows:
            rendered = {c: render(row.get(c)) for c in self.columns}
            rendered_rows.append(rendered)
            for c in self.columns:
                widths[c] = max(widths[c], len(rendered[c]))
        lines = [f"== {self.name} ==", self.description, ""]
        lines.append(" | ".join(c.ljust(widths[c]) for c in self.columns))
        lines.append("-+-".join("-" * widths[c] for c in self.columns))
        for rendered in rendered_rows:
            lines.append(" | ".join(rendered[c].ljust(widths[c]) for c in self.columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)
