"""The bench regression gate: compare fresh ``BENCH_*.json`` files to baselines.

The benchmarks emit machine-readable reports (``s2rdf-bench/v1``: aggregated
``counters`` and ``timings`` plus rows/notes/stash).  This module turns the
committed copies under ``benchmarks/output/`` into an *enforced contract*:
CI re-runs the smoke benches, then compares every fresh report against its
committed baseline with per-kind tolerances and fails the build on a
violation.

The two metric kinds need different rules:

* **counters** (tuples scanned, joins, replans, bytes …) are deterministic on
  a fixed smoke workload, so they must match the baseline within a small
  symmetric relative tolerance — a drop is as suspicious as a rise, since it
  usually means the workload silently shrank;
* **timings** are machine-dependent, so only *increases* beyond a generous
  ratio fail — enough headroom that a slow CI runner never trips it, while a
  genuine complexity regression (10×–100×) still does.

Verdicts per baseline file: ``PASS``, ``REGRESS`` (tolerance violated),
``MISSING_METRIC`` (a baseline counter/timing disappeared), ``SCHEMA_DRIFT``
(schema tag changed), ``MISSING_FILE`` (no fresh counterpart).  Extra current
files or metrics are fine — new benchmarks and new counters are growth, not
regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.bench.reporting import BENCH_SCHEMA, read_bench_json

#: Symmetric relative tolerance for counter totals (|cur-base| / max(|base|, 1)).
DEFAULT_COUNTER_TOLERANCE = 0.25

#: A timing may grow to this multiple of its baseline before failing.  Timings
#: compare across machines (committed baseline vs. CI runner), so the ratio is
#: deliberately generous: it catches complexity blowups, not jitter.
DEFAULT_TIMING_RATIO = 20.0

#: Timings below this baseline (ms or s alike) are never compared — the
#: relative error of a sub-millisecond measurement is meaningless.
MIN_COMPARABLE_TIMING = 1.0

PASS = "PASS"
REGRESS = "REGRESS"
MISSING_METRIC = "MISSING_METRIC"
SCHEMA_DRIFT = "SCHEMA_DRIFT"
MISSING_FILE = "MISSING_FILE"


@dataclass
class MetricCheck:
    """One compared metric and its outcome."""

    metric: str
    kind: str  # "counter" | "timing"
    baseline: Optional[float]
    current: Optional[float]
    verdict: str
    detail: str = ""


@dataclass
class FileResult:
    """All checks of one baseline BENCH file."""

    name: str
    verdict: str
    checks: List[MetricCheck] = field(default_factory=list)
    detail: str = ""

    @property
    def failed_checks(self) -> List[MetricCheck]:
        return [c for c in self.checks if c.verdict != PASS]


@dataclass
class RegressionReport:
    """The gate's outcome over a whole baseline directory."""

    results: List[FileResult] = field(default_factory=list)

    @property
    def failures(self) -> List[FileResult]:
        return [r for r in self.results if r.verdict != PASS]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render_text(self) -> str:
        lines = ["== Bench regression gate =="]
        for result in self.results:
            lines.append(f"{result.verdict:>14}  {result.name}")
            if result.detail:
                lines.append(f"                ({result.detail})")
            for check in result.failed_checks:
                lines.append(
                    f"                - [{check.kind}] {check.metric}: "
                    f"baseline={check.baseline} current={check.current} "
                    f"({check.verdict}: {check.detail})"
                )
        lines.append(
            f"{len(self.results)} baseline file(s) checked, {len(self.failures)} failing"
        )
        return "\n".join(lines)


def _check_counter(
    metric: str, baseline: float, current: Optional[float], tolerance: float
) -> MetricCheck:
    if current is None:
        return MetricCheck(
            metric, "counter", baseline, None, MISSING_METRIC, "counter absent in current run"
        )
    deviation = abs(current - baseline) / max(abs(baseline), 1.0)
    if deviation > tolerance:
        return MetricCheck(
            metric,
            "counter",
            baseline,
            current,
            REGRESS,
            f"relative deviation {deviation:.2f} > tolerance {tolerance:.2f}",
        )
    return MetricCheck(metric, "counter", baseline, current, PASS)


def _check_timing(
    metric: str, baseline: float, current: Optional[float], ratio: float
) -> MetricCheck:
    if current is None:
        return MetricCheck(
            metric, "timing", baseline, None, MISSING_METRIC, "timing absent in current run"
        )
    if baseline < MIN_COMPARABLE_TIMING:
        return MetricCheck(
            metric, "timing", baseline, current, PASS, "baseline below comparison floor"
        )
    if current > baseline * ratio:
        return MetricCheck(
            metric,
            "timing",
            baseline,
            current,
            REGRESS,
            f"grew {current / baseline:.1f}x > allowed {ratio:.1f}x",
        )
    return MetricCheck(metric, "timing", baseline, current, PASS)


def compare_reports(
    name: str,
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    counter_tolerance: float = DEFAULT_COUNTER_TOLERANCE,
    timing_ratio: float = DEFAULT_TIMING_RATIO,
) -> FileResult:
    """Compare one fresh BENCH dict against its baseline dict."""
    base_schema = baseline.get("schema")
    current_schema = current.get("schema")
    if base_schema != current_schema or current_schema != BENCH_SCHEMA:
        return FileResult(
            name,
            SCHEMA_DRIFT,
            detail=f"baseline schema {base_schema!r} vs current {current_schema!r} "
            f"(gate expects {BENCH_SCHEMA!r})",
        )
    checks: List[MetricCheck] = []
    current_counters = current.get("counters", {})
    current_timings = current.get("timings", {})
    for metric, value in sorted(baseline.get("counters", {}).items()):
        checks.append(
            _check_counter(metric, value, current_counters.get(metric), counter_tolerance)
        )
    for metric, value in sorted(baseline.get("timings", {}).items()):
        checks.append(_check_timing(metric, value, current_timings.get(metric), timing_ratio))
    failed = [c for c in checks if c.verdict != PASS]
    if not failed:
        return FileResult(name, PASS, checks=checks)
    # The file verdict is the most severe check verdict: REGRESS > MISSING.
    verdict = REGRESS if any(c.verdict == REGRESS for c in failed) else MISSING_METRIC
    return FileResult(name, verdict, checks=checks)


def compare_directories(
    baseline_dir: Path,
    current_dir: Path,
    counter_tolerance: float = DEFAULT_COUNTER_TOLERANCE,
    timing_ratio: float = DEFAULT_TIMING_RATIO,
) -> RegressionReport:
    """Gate every ``BENCH_*.json`` baseline against its fresh counterpart.

    Every baseline file must have a current counterpart; current files without
    a baseline are ignored (new benchmarks land with their baseline in the
    same PR).
    """
    report = RegressionReport()
    baseline_files = sorted(Path(baseline_dir).glob("BENCH_*.json"))
    if not baseline_files:
        report.results.append(
            FileResult(
                str(baseline_dir), MISSING_FILE, detail="no BENCH_*.json baselines found"
            )
        )
        return report
    for baseline_path in baseline_files:
        name = baseline_path.name
        current_path = Path(current_dir) / name
        try:
            baseline = read_bench_json(baseline_path)
        except (OSError, ValueError) as error:
            report.results.append(
                FileResult(name, SCHEMA_DRIFT, detail=f"unreadable baseline: {error}")
            )
            continue
        if not current_path.is_file():
            report.results.append(
                FileResult(name, MISSING_FILE, detail=f"no fresh run at {current_path}")
            )
            continue
        try:
            current = read_bench_json(current_path)
        except (OSError, ValueError) as error:
            report.results.append(
                FileResult(name, SCHEMA_DRIFT, detail=f"unreadable current file: {error}")
            )
            continue
        report.results.append(
            compare_reports(name, baseline, current, counter_tolerance, timing_ratio)
        )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_regression.py",
        description="Compare fresh BENCH_*.json smoke outputs against committed baselines.",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        required=True,
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        required=True,
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=DEFAULT_COUNTER_TOLERANCE,
        help="symmetric relative tolerance for counter totals",
    )
    parser.add_argument(
        "--timing-ratio",
        type=float,
        default=DEFAULT_TIMING_RATIO,
        help="allowed growth multiple for timing totals",
    )
    parser.add_argument("--json", action="store_true", help="emit the verdicts as JSON")
    args = parser.parse_args(argv)
    report = compare_directories(
        args.baseline_dir,
        args.current_dir,
        counter_tolerance=args.counter_tolerance,
        timing_ratio=args.timing_ratio,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "ok": report.ok,
                    "results": [
                        {
                            "name": r.name,
                            "verdict": r.verdict,
                            "detail": r.detail,
                            "failed_checks": [
                                {
                                    "metric": c.metric,
                                    "kind": c.kind,
                                    "baseline": c.baseline,
                                    "current": c.current,
                                    "verdict": c.verdict,
                                    "detail": c.detail,
                                }
                                for c in r.failed_checks
                            ],
                        }
                        for r in report.results
                    ],
                },
                indent=2,
            )
        )
    else:
        print(report.render_text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
