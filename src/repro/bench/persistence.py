"""Persistence benchmark: cold-open vs. rebuild, plus scan pushdown.

S2RDF's premise is that the expensive ExtVP materialisation happens *once*;
every later session reads the persisted Parquet tables.  This experiment
measures exactly that trade on the reproduction's dataset store:

1. **rebuild** — parse-free in-memory build (``S2RDFSession.from_graph``),
   i.e. the full VP + ExtVP semi-join computation;
2. **save** — writing the layout as hash-bucketed columnar segments;
3. **cold open** — ``S2RDFSession.open_dataset``, which only reads the
   manifest and dictionary (tables stay on disk until scanned);
4. **equivalence** — every WatDiv Basic query must return the same bag of
   rows on the cold session as on the in-memory one;
5. **zone-map pruning** — a store scan with an equality predicate that
   provably skips at least one segment without reading it;
6. **partition alignment** — shuffle joins consuming stored buckets directly
   (zero re-partitioning for that input).
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import List, Optional, Sequence, Tuple

from repro.bench.reporting import ExperimentReport
from repro.core.session import S2RDFSession
from repro.store.format import Manifest, StoredTermDictionary, read_manifest
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.template import instantiate_many


def _bag(relation) -> List[str]:
    return sorted(map(repr, relation.rows))


def find_zone_pruned_predicate(manifest: Manifest) -> Optional[Tuple[str, str, int]]:
    """Find ``(table, column, term_id)`` where a zone map prunes a segment.

    Looks for a multi-bucket table and a non-partition-key column whose
    per-segment id ranges differ, then picks an id that at least one segment
    provably lacks — the canonical zone-map win.
    """
    for name, entry in sorted(manifest.tables.items()):
        if entry.num_partitions < 2:
            continue
        for column in entry.columns:
            if column in entry.partition_keys:
                continue
            zones = [p.zones[column] for p in entry.partitions if p.row_count > 0]
            if len(zones) < 2:
                continue
            target = max(zone.max_id for zone in zones)
            if any(not zone.may_contain(target) for zone in zones):
                return name, column, target
    return None


def run_persistence(
    scale_factor: float = 3.0,
    seed: int = 42,
    path: Optional[str] = None,
    num_buckets: int = 4,
    instantiations: int = 1,
    template_names: Optional[Sequence[str]] = None,
    selectivity_threshold: float = 1.0,
    dataset: Optional[WatDivDataset] = None,
) -> ExperimentReport:
    """Measure the dataset store against an in-memory rebuild."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    if path is None:
        path = os.path.join(tempfile.mkdtemp(prefix="s2rdf-store-"), "dataset")

    report = ExperimentReport(
        name="Persistence — columnar dataset store",
        description=(
            f"WatDiv graph ({len(dataset.graph)} triples, scale factor {dataset.scale_factor:g}), "
            f"{num_buckets} hash buckets, SF threshold {selectivity_threshold:g}"
        ),
        columns=["step", "seconds", "speedup", "detail"],
    )

    # 1. Full in-memory rebuild: the cost every fresh session pays today.
    start = time.perf_counter()
    warm = S2RDFSession.from_graph(
        dataset.graph,
        selectivity_threshold=selectivity_threshold,
        num_partitions=num_buckets,
    )
    rebuild_seconds = time.perf_counter() - start
    report.add_row(
        step="rebuild (VP + ExtVP build)",
        seconds=round(rebuild_seconds, 4),
        speedup=None,
        detail=f"{warm.layout.report.table_count} tables, {warm.layout.report.tuple_count} tuples",
    )

    # 2. Persist once.
    write = warm.save_dataset(path, num_buckets=num_buckets, overwrite=True)
    report.add_row(
        step="save_dataset",
        seconds=round(write.write_seconds, 4),
        speedup=None,
        detail=(
            f"{write.segment_count} segments, {write.dictionary_terms} dictionary terms, "
            f"{write.total_bytes} bytes"
        ),
    )

    # 3. Cold open: manifest + dictionary I/O only.
    start = time.perf_counter()
    cold = S2RDFSession.open_dataset(path)
    cold_open_seconds = time.perf_counter() - start
    assert cold.load_report is not None
    assert not cold.load_report.ntriples_parsed and not cold.load_report.extvp_rebuilt
    report.add_row(
        step="cold open_dataset",
        seconds=round(cold_open_seconds, 4),
        speedup=round(rebuild_seconds / cold_open_seconds, 2) if cold_open_seconds > 0 else None,
        detail=(
            f"{cold.load_report.table_count} stored tables, "
            f"{cold.load_report.statistics_only_count} statistics-only entries, no parse/rebuild"
        ),
    )

    # 4. Result equivalence on the Basic Testing workload.
    queries: List[str] = []
    for template in BASIC_TEMPLATES:
        if template_names is not None and template.name not in template_names:
            continue
        queries.extend(instantiate_many(template, dataset, instantiations, seed=seed))
    mismatches = 0
    for query_text in queries:
        if _bag(warm.query(query_text).relation) != _bag(cold.query(query_text).relation):
            mismatches += 1
    report.add_row(
        step="result equivalence",
        seconds=None,
        speedup=None,
        detail=f"{len(queries)} Basic queries, {mismatches} mismatches",
    )
    if mismatches:
        raise AssertionError(f"{mismatches} of {len(queries)} queries disagree after the roundtrip")

    # 5. A zone-map-pruned scan: the predicate's id range excludes segments.
    manifest = read_manifest(path)
    pruned_demo = find_zone_pruned_predicate(manifest)
    fresh = S2RDFSession.open_dataset(path)  # unscanned store, nothing cached
    if pruned_demo is not None:
        table, column, term_id = pruned_demo
        probe_term = StoredTermDictionary.open(path).decode(term_id)
        entry = manifest.tables[table]
        scan = fresh.layout.catalog.scan(
            table, columns=list(entry.columns), conditions={column: probe_term}
        )
        report.add_row(
            step="zone-map-pruned scan",
            seconds=None,
            speedup=None,
            detail=(
                f"{table}[{column} = id {term_id}]: {scan.segments_pruned} segments pruned, "
                f"{scan.segments_scanned} scanned, {scan.rows_scanned}/{entry.row_count} rows read"
            ),
        )
        if scan.segments_pruned < 1:
            raise AssertionError("expected at least one zone-map-pruned segment")
    else:
        report.add_row(
            step="zone-map-pruned scan",
            seconds=None,
            speedup=None,
            detail="no prunable (table, column) found — dataset too uniform",
        )

    # 6. Partition-aligned shuffle joins: stored buckets consumed directly.
    aligned_session = S2RDFSession.open_dataset(path, broadcast_threshold=0)
    aligned_inputs = 0
    shuffled_bytes = 0
    for query_text in queries:
        metrics = aligned_session.query(query_text).metrics
        aligned_inputs += metrics.partition_aligned_inputs
        shuffled_bytes += metrics.shuffled_bytes
    report.add_row(
        step="partition-aligned joins",
        seconds=None,
        speedup=None,
        detail=(
            f"{aligned_inputs} join inputs consumed pre-bucketed "
            f"(shuffle forced, {shuffled_bytes} bytes still exchanged)"
        ),
    )

    report.add_note(
        "cold open reads MANIFEST.json + dictionary.nt only; segments decode lazily at first scan."
    )
    report.add_note(
        "zone maps prune on dictionary-id ranges; predicates on the partition key additionally "
        "prune to a single hash bucket."
    )
    warm.close()
    cold.close()
    fresh.close()
    aligned_session.close()
    return report
