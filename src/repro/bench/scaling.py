"""Work-scale extrapolation.

The paper's headline experiments run on WatDiv SF10000 (≈1.09 billion
triples); this reproduction generates datasets that fit on a laptop.  All
execution *counters* (tuples scanned, shuffled, compared) are measured on the
small dataset and then multiplied by ``paper_triples / |G|`` before the cost
models convert them to simulated runtimes.  Constant costs (driver latency,
MapReduce job startup) are not scaled, exactly as they would not shrink on a
real cluster.  This keeps the measured work honest while restoring the
runtime *shape* of the paper's tables.
"""

from __future__ import annotations

from repro.rdf.graph import Graph

#: Triple count of the paper's largest dataset (WatDiv SF10000, Table 2).
PAPER_SF10000_TRIPLES = 1_091_500_000
#: Triple counts of the smaller paper datasets, for completeness.
PAPER_SF1000_TRIPLES = 109_200_000
PAPER_SF100_TRIPLES = 10_910_000
PAPER_SF10_TRIPLES = 1_080_000


def paper_work_scale(graph: Graph, paper_triples: int = PAPER_SF10000_TRIPLES) -> float:
    """Multiplier that maps this graph's counters to the paper's data scale."""
    if len(graph) == 0:
        return 1.0
    return paper_triples / len(graph)
