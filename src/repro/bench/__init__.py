"""Experiment harness: one module per table / figure of the paper's evaluation.

Each experiment returns an :class:`~repro.bench.reporting.ExperimentReport`
whose rows mirror the paper's table rows (or figure series) and can be printed
with ``report.to_text()``.  The ``benchmarks/`` directory wraps these
experiments with pytest-benchmark entry points; ``EXPERIMENTS.md`` records the
measured outcomes next to the paper's numbers.
"""

from repro.bench.reporting import ExperimentReport, arithmetic_mean, format_runtime, geometric_mean
from repro.bench.regression import RegressionReport, compare_directories, compare_reports
from repro.bench.aqe import run_aqe
from repro.bench.incremental_store import run_incremental_store
from repro.bench.partition_scaling import run_partition_scaling
from repro.bench.persistence import run_persistence
from repro.bench.serving import run_serving
from repro.bench.sql_backend import run_sql_backend
from repro.bench.table2_load import run_table2_load
from repro.bench.table3_selectivity import run_table3_selectivity
from repro.bench.table4_basic import run_table4_basic
from repro.bench.table5_incremental import run_table5_incremental
from repro.bench.table6_threshold import run_table6_threshold
from repro.bench.vectorized import run_vectorized
from repro.bench.ablations import run_join_order_ablation, run_oo_correlation_ablation

__all__ = [
    "ExperimentReport",
    "RegressionReport",
    "compare_directories",
    "compare_reports",
    "arithmetic_mean",
    "geometric_mean",
    "format_runtime",
    "run_aqe",
    "run_incremental_store",
    "run_partition_scaling",
    "run_persistence",
    "run_serving",
    "run_sql_backend",
    "run_table2_load",
    "run_table3_selectivity",
    "run_table4_basic",
    "run_table5_incremental",
    "run_table6_threshold",
    "run_vectorized",
    "run_join_order_ablation",
    "run_oo_correlation_ablation",
]
