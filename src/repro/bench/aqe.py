"""Adaptive-query-execution benchmark: stale statistics on a skewed workload.

The scenario is the one AQE exists for: the catalog's statistics are wrong
(here, deliberately staled by a large factor after the layout is built), so
the static planner shuffles joins whose build sides are actually tiny, and
the data is skewed (one hub user is followed by everybody), so the shuffled
hub partition dominates the join's critical path.

The benchmark runs one skew-heavy WatDiv-style workload in five modes over a
single shared ExtVP layout:

* ``static`` — stale statistics, ``adaptive_enabled=False``: every join
  executes exactly as (mis-)planned.
* ``adaptive`` — the same stale statistics with AQE on: shuffles whose
  observed build side fits the broadcast threshold are demoted on the fly.
* ``adaptive_warm`` — the same session again: the first run fed observed
  cardinalities back into the catalog, so the static plan is already right
  and no replans are needed.
* ``static_shuffle_only`` / ``adaptive_shuffle_only`` — ``broadcast_threshold=0``
  isolates the skew-splitting axis: every join must shuffle, and AQE's only
  lever is subdividing the hub partition into median-sized tasks.

``speedup`` compares each row's summed join critical path against its static
counterpart (the first static row for the first three modes, the shuffle-only
static row for the last two).  ``result_tuples`` is reported so bag-equality
across modes is checkable at a glance.

Run directly (used by CI in smoke mode)::

    PYTHONPATH=src python -m repro.bench.aqe --smoke
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.bench.reporting import ExperimentReport, write_bench_json
from repro.core.session import S2RDFSession, SessionConfig
from repro.mappings.extvp import ExtVPLayout
from repro.rdf.graph import Graph
from repro.rdf.triple import Triple
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.schema import FOLLOWS, LIKES, EntityClass, entity_iri

#: How much the statistics lie by: every materialised table's row count is
#: multiplied by this factor, so every join side estimates far above the
#: broadcast threshold and the static planner shuffles everything.  The
#: factor is deliberately huge — even a 30-row ExtVP table must estimate
#: past Spark's 10 MB ``autoBroadcastJoinThreshold`` (~220 k rows at two
#: 24-byte columns) for the mis-plan to materialise at laptop scales.
DEFAULT_STALE_FACTOR = 1_000_000


def _skewed_graph(dataset: WatDivDataset) -> Graph:
    """Copy the WatDiv graph and make ``User0`` a hub everyone follows.

    The extra edges skew the object column of the ``follows`` table: joins on
    the followed user hash the hub's rows into one partition, which is the
    straggler the skew splitter exists for.  The hub also likes a handful of
    products so follows->likes paths produce results through it.
    """
    graph = Graph(dataset.graph, name=dataset.graph.name + "-skewed")
    hub = entity_iri(EntityClass.USER, 0)
    users = dataset.entity_counts.get(EntityClass.USER, 0)
    products = dataset.entity_counts.get(EntityClass.PRODUCT, 0)
    for index in range(1, users):
        graph.add(Triple(entity_iri(EntityClass.USER, index), FOLLOWS, hub))
    for index in range(min(10, products)):
        graph.add(Triple(hub, LIKES, entity_iri(EntityClass.PRODUCT, index)))
    return graph


def _stale_statistics(catalog, factor: int) -> None:
    """Multiply every materialised table's statistics by ``factor``.

    Scaling all row counts by one constant preserves their relative order, so
    table selection is unaffected — only the absolute size estimates (and
    with them the broadcast decisions) go wrong, which is exactly the failure
    mode of statistics collected on yesterday's much smaller dataset.
    Statistics-only entries (empty tables) keep their zero row counts so the
    compiler's static empty-result short-circuit stays correct.
    """
    for name in list(catalog.statistics_names()):
        statistics = catalog.statistics(name)
        if name in catalog and statistics.row_count > 0:
            catalog.register_statistics_only(name, statistics.row_count * factor, statistics.selectivity)


def _workload() -> List[str]:
    follows = FOLLOWS.n3()
    likes = LIKES.n3()
    return [
        # Path through the skewed join variable ?y (the hub).
        f"SELECT ?x ?z WHERE {{ ?x {follows} ?y . ?y {likes} ?z }}",
        # Two-hop follows path, skewed on both join variables.
        f"SELECT ?x ?z WHERE {{ ?x {follows} ?y . ?y {follows} ?z }}",
        # Star on ?x: unskewed control query.
        f"SELECT ?x ?y ?z WHERE {{ ?x {follows} ?y . ?x {likes} ?z }}",
    ]


def _run_workload(session: S2RDFSession, queries: Sequence[str]) -> Dict[str, float]:
    wall_ms = 0.0
    critical_ms = 0.0
    shuffle_joins = 0
    broadcast_joins = 0
    replans = 0
    skew_splits = 0
    result_tuples = 0
    for query_text in queries:
        start = time.perf_counter()
        result = session.query(query_text)
        wall_ms += (time.perf_counter() - start) * 1000.0
        critical_ms += result.metrics.critical_path_ms
        shuffle_joins += result.metrics.shuffle_joins
        broadcast_joins += result.metrics.broadcast_joins
        replans += result.metrics.aqe_replans
        skew_splits += result.metrics.aqe_skew_splits
        result_tuples += len(result)
    return {
        "wall_ms": wall_ms,
        "critical_path_ms": critical_ms,
        "shuffle_joins": shuffle_joins,
        "broadcast_joins": broadcast_joins,
        "replans": replans,
        "skew_splits": skew_splits,
        "result_tuples": result_tuples,
    }


def run_aqe(
    scale_factor: float = 2.0,
    seed: int = 42,
    num_partitions: int = 8,
    skew_factor: float = 2.0,
    stale_factor: int = DEFAULT_STALE_FACTOR,
    dataset: Optional[WatDivDataset] = None,
    selectivity_threshold: float = 1.0,
) -> ExperimentReport:
    """Measure adaptive vs. static execution under stale statistics and skew."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    graph = _skewed_graph(dataset)

    # One layout shared by every mode; only the execution axis varies.  The
    # static modes run first because the adaptive modes feed observed
    # cardinalities back into the shared catalog.
    layout = ExtVPLayout(selectivity_threshold=selectivity_threshold)
    layout.build(graph)
    _stale_statistics(layout.catalog, stale_factor)
    queries = _workload()

    def session_for(
        adaptive: bool,
        broadcast_threshold: Optional[int] = None,
        tracing_enabled: bool = False,
    ) -> S2RDFSession:
        config = SessionConfig.from_flat(
            selectivity_threshold=selectivity_threshold,
            num_partitions=num_partitions,
            adaptive_enabled=adaptive,
            skew_factor=skew_factor,
            tracing_enabled=tracing_enabled,
        )
        if broadcast_threshold is not None:
            config.broadcast_threshold = broadcast_threshold
        return S2RDFSession(layout, config=config)

    report = ExperimentReport(
        name="Adaptive query execution — stale statistics, skewed workload",
        description=(
            f"{len(queries)} skew-heavy queries, WatDiv-like scale factor {dataset.scale_factor:g} "
            f"plus a hub followed by all users; statistics staled x{stale_factor}; "
            f"num_partitions={num_partitions}, skew_factor={skew_factor:g}"
        ),
        columns=[
            "mode",
            "wall_ms",
            "critical_path_ms",
            "speedup",
            "shuffle_joins",
            "broadcast_joins",
            "replans",
            "skew_splits",
            "result_tuples",
        ],
    )

    def add_row(mode: str, measured: Dict[str, float], baseline_ms: float) -> None:
        critical = measured["critical_path_ms"]
        speedup = baseline_ms / critical if critical > 0 else float("inf")
        report.add_row(
            mode=mode,
            wall_ms=round(measured["wall_ms"], 1),
            critical_path_ms=round(critical, 1),
            speedup=round(speedup, 2),
            shuffle_joins=int(measured["shuffle_joins"]),
            broadcast_joins=int(measured["broadcast_joins"]),
            replans=int(measured["replans"]),
            skew_splits=int(measured["skew_splits"]),
            result_tuples=int(measured["result_tuples"]),
        )

    # --- default threshold: demotion axis --------------------------------- #
    with session_for(adaptive=False) as static_session:
        static = _run_workload(static_session, queries)
    with session_for(adaptive=True) as adaptive_session:
        adaptive = _run_workload(adaptive_session, queries)
        # Same session again: plans now start from observed cardinalities.
        warm = _run_workload(adaptive_session, queries)
    add_row("static", static, static["critical_path_ms"])
    add_row("adaptive", adaptive, static["critical_path_ms"])
    add_row("adaptive_warm", warm, static["critical_path_ms"])

    # --- threshold 0: skew-splitting axis (every join must shuffle) ------- #
    # The adaptive runs above cached observed cardinalities in the shared
    # catalog, but static sessions plan from the stale statistics alone by
    # construction (adaptive_enabled=False ignores the observed cache).
    with session_for(adaptive=False, broadcast_threshold=0) as static_session:
        static_shuffle = _run_workload(static_session, queries)
    with session_for(adaptive=True, broadcast_threshold=0) as adaptive_session:
        adaptive_shuffle = _run_workload(adaptive_session, queries)
    add_row("static_shuffle_only", static_shuffle, static_shuffle["critical_path_ms"])
    add_row("adaptive_shuffle_only", adaptive_shuffle, static_shuffle["critical_path_ms"])

    report.add_note(
        "critical_path_ms sums, per join, the slowest partition task.  'adaptive' demotes the "
        "mis-planned shuffles to broadcasts from observed sizes; 'adaptive_warm' shows the catalog's "
        "observed-cardinality cache removing the need to replan; the *_shuffle_only rows isolate "
        "skew splitting with broadcasts disabled."
    )
    report.add_note(
        "result_tuples must be identical in every mode: adaptivity changes schedules, never answers."
    )

    # One extra *traced* pass, outside the measured rows, so the machine-
    # readable output carries a span-level picture of the adaptive run.  A
    # fresh layout copy is not needed: tracing never changes plans, and this
    # pass runs after every measurement.
    with session_for(adaptive=True, tracing_enabled=True) as traced_session:
        _run_workload(traced_session, queries)
        report.stash["trace"] = traced_session.tracer.summary()
        report.stash["metrics"] = traced_session.metrics.snapshot()["counters"]
    return report


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description="Adaptive query execution benchmark")
    parser.add_argument("--scale", type=float, default=2.0, help="WatDiv-like scale factor")
    parser.add_argument("--partitions", type=int, default=8, help="shuffle partition count")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale for CI: exercises every mode, asserts the invariants",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write machine-readable benchmarks/output/BENCH_aqe.json",
    )
    args = parser.parse_args(argv)
    scale = 0.3 if args.smoke else args.scale
    partitions = 4 if args.smoke else args.partitions
    report = run_aqe(scale_factor=scale, num_partitions=partitions)
    print(report.to_text())
    if args.json:
        print(f"wrote {write_bench_json(report, 'aqe')}")
    if args.smoke:
        tuples = {row["result_tuples"] for row in report.rows}
        assert len(tuples) == 1, f"modes disagree on results: {tuples}"
        assert report.row_for(mode="adaptive")["replans"] >= 1, "adaptive run never replanned"
        assert report.row_for(mode="adaptive_warm")["replans"] == 0, "warm run should not replan"
        print("smoke checks passed: bag-equal modes, replans observed, warm run stable")


if __name__ == "__main__":
    main()
