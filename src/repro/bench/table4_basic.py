"""Table 4 / Figure 14: WatDiv Basic Testing across all systems.

Every Basic Testing template is instantiated several times; each engine
executes every instantiation and the arithmetic-mean simulated runtime is
reported per query, per shape category (AM-L/S/F/C) and in total (AM-T),
matching the paper's Table 4 layout.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from repro.baselines import (
    H2RDFPlusEngine,
    PigSparqlEngine,
    S2RDFExtVPEngine,
    S2RDFVPEngine,
    SempalaEngine,
    ShardEngine,
    SparqlEngine,
    VirtuosoEngine,
)
from repro.bench.reporting import ExperimentReport, arithmetic_mean
from repro.bench.scaling import PAPER_SF10000_TRIPLES, paper_work_scale
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.generator import WatDivDataset, generate_dataset
from repro.watdiv.template import instantiate_many


def default_engines(work_scale: float = 1.0) -> List[SparqlEngine]:
    """The engine line-up of the paper's Fig. 14."""
    return [
        S2RDFExtVPEngine(work_scale=work_scale),
        S2RDFVPEngine(work_scale=work_scale),
        H2RDFPlusEngine(work_scale=work_scale),
        SempalaEngine(work_scale=work_scale),
        PigSparqlEngine(work_scale=work_scale),
        ShardEngine(work_scale=work_scale),
        VirtuosoEngine(warm_cache=False, work_scale=work_scale),
    ]


def run_table4_basic(
    scale_factor: float = 3.0,
    seed: int = 42,
    instantiations: int = 2,
    engines: Optional[List[SparqlEngine]] = None,
    dataset: Optional[WatDivDataset] = None,
    template_names: Optional[Sequence[str]] = None,
    check_results_agree: bool = True,
    paper_triples: int = PAPER_SF10000_TRIPLES,
) -> ExperimentReport:
    """Regenerate Table 4 / Fig. 14 (Basic Testing, all systems)."""
    dataset = dataset if dataset is not None else generate_dataset(scale_factor=scale_factor, seed=seed)
    engines = engines if engines is not None else default_engines(paper_work_scale(dataset.graph, paper_triples))
    for engine in engines:
        engine.load(dataset.graph)

    report = ExperimentReport(
        name="Table 4 / Fig. 14 — WatDiv Basic Testing",
        description=(
            f"Arithmetic-mean simulated runtimes (ms) per query and engine, scale factor {dataset.scale_factor:g}, "
            f"{instantiations} instantiations per template"
        ),
        columns=["query", "category"] + [engine.name for engine in engines] + ["result_rows"],
    )

    category_runtimes: Dict[str, Dict[str, List[float]]] = defaultdict(lambda: defaultdict(list))
    total_runtimes: Dict[str, List[float]] = defaultdict(list)

    for template in BASIC_TEMPLATES:
        if template_names is not None and template.name not in template_names:
            continue
        queries = instantiate_many(template, dataset, instantiations, seed=seed)
        per_engine: Dict[str, List[float]] = defaultdict(list)
        result_rows: List[int] = []
        for query_text in queries:
            reference_size: Optional[int] = None
            for engine in engines:
                result = engine.query(query_text)
                per_engine[engine.name].append(result.simulated_runtime_ms)
                if result.failed:
                    continue
                if reference_size is None:
                    reference_size = len(result)
                elif check_results_agree and len(result) != reference_size:
                    raise AssertionError(
                        f"{template.name}: {engine.name} returned {len(result)} rows, expected {reference_size}"
                    )
            result_rows.append(reference_size or 0)
        row = {"query": template.name, "category": template.category, "result_rows": max(result_rows)}
        for engine in engines:
            mean_runtime = arithmetic_mean(per_engine[engine.name])
            row[engine.name] = round(mean_runtime, 2) if mean_runtime != float("inf") else float("inf")
            category_runtimes[template.category][engine.name].append(mean_runtime)
            total_runtimes[engine.name].append(mean_runtime)
        report.add_row(**row)

    # Category aggregates (AM-L, AM-S, AM-F, AM-C) and the total (AM-T).
    for category in sorted(category_runtimes):
        row = {"query": f"AM-{category}", "category": category, "result_rows": None}
        for engine in engines:
            row[engine.name] = round(arithmetic_mean(category_runtimes[category][engine.name]), 2)
        report.add_row(**row)
    total_row = {"query": "AM-T", "category": "all", "result_rows": None}
    for engine in engines:
        total_row[engine.name] = round(arithmetic_mean(total_runtimes[engine.name]), 2)
    report.add_row(**total_row)

    report.add_note(
        "Expected shape: S2RDF ExtVP <= S2RDF VP < Sempala < H2RDF+ << PigSPARQL/SHARD for every category; "
        "MapReduce systems sit orders of magnitude above the in-memory engines."
    )
    return report
