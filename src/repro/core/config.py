"""Session configuration, grouped by concern.

The session's knobs grew one flat field at a time across the first nine PRs;
with the concurrent serving layer the flat list stopped scaling.  The
configuration is now four nested dataclasses composed on
:class:`SessionConfig`:

* :class:`ExecutionConfig` — how a single query executes (engine, partitions,
  join thresholds, adaptive execution, vectorization, process workers);
* :class:`StoreConfig` — what the data layout materialises and how the
  persistent store compacts;
* :class:`ObservabilityConfig` — tracing and the workload journal;
* :class:`ServingConfig` — the concurrent scheduler's admission policy.

Every historical flat knob still works as a constructor keyword —
``SessionConfig(num_partitions=8)`` — but warns ``DeprecationWarning`` with
the new spelling (``SessionConfig(execution=ExecutionConfig(num_partitions=8))``).
Reading ``config.num_partitions`` keeps working silently: the flat names are
aliases (properties) for their single nested home, and
:data:`FLAT_FIELD_HOMES` records that mapping so a test can audit that every
old knob maps to exactly one new home.

Validation happens at *construction*: each group dataclass checks its own
invariants in ``__post_init__``, so an invalid configuration fails wherever
it is built — session, scheduler, benchmark or example — rather than deep
inside ``S2RDFSession.__init__``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from repro.engine.runtime import (
    DEFAULT_BROADCAST_MEMORY_LIMIT,
    DEFAULT_BROADCAST_THRESHOLD,
    DEFAULT_SKEW_FACTOR,
)

#: Engines a session can execute plans on.
VALID_ENGINES = ("native", "sqlite")

#: How the parallel runtime runs partition tasks: ``"thread"`` uses the
#: in-process pool (always available), ``"process"`` dispatches join tasks to
#: the persistent partition worker pool (requires a stored dataset; ephemeral
#: sessions silently keep the thread pool as fallback).
VALID_EXECUTION_MODES = ("thread", "process")

#: What :meth:`~repro.serve.scheduler.QueryScheduler.submit` does when the
#: admission queue is full: ``"queue"`` blocks the submitter until a slot
#: frees, ``"reject"`` raises :class:`~repro.serve.scheduler.AdmissionError`.
VALID_ADMISSION_POLICIES = ("queue", "reject")


@dataclass
class ExecutionConfig:
    """How one query executes on the relational runtime."""

    #: Execution engine: ``"native"`` runs plans on the in-process relational
    #: operators (with the parallel/adaptive runtime); ``"sqlite"`` lowers
    #: plans to SQL on an in-memory SQLite database (:mod:`repro.engine.sql`).
    engine: str = "native"
    #: Partitions used by the parallel runtime; 1 keeps joins serial but still
    #: annotates every join with its physical strategy.
    num_partitions: int = 1
    #: Spark's ``autoBroadcastJoinThreshold``: a join side estimated at or
    #: below this many bytes is broadcast instead of shuffled.
    broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD
    #: Hard memory cap on the *observed* materialized build side of a
    #: broadcast join; exceeding it demotes the join to a shuffle.
    broadcast_memory_limit: int = DEFAULT_BROADCAST_MEMORY_LIMIT
    #: Adaptive query execution: re-decide join strategies from observed
    #: input sizes, split skewed partitions, cache observed cardinalities.
    adaptive_enabled: bool = True
    #: A shuffle partition larger than this multiple of the median partition
    #: is subdivided before its join task runs (adaptive execution only).
    skew_factor: float = DEFAULT_SKEW_FACTOR
    #: Vectorized execution (native engine, stored datasets only): scans emit
    #: dictionary-id column batches, operators run on raw ids.
    vectorized_enabled: bool = False
    #: Apply Algorithm 4's join-order optimisation.
    optimize_join_order: bool = True
    #: Multiplier applied to data-proportional execution counters before the
    #: cost model converts them to a simulated runtime.
    work_scale: float = 1.0
    #: ``"thread"`` (default) or ``"process"``: where partition join tasks
    #: run.  Process mode sidesteps the GIL by dispatching tasks to the
    #: persistent worker pool of the session's stored dataset; sessions
    #: without a dataset fall back to the thread pool.
    execution_mode: str = "thread"
    #: Processes in the partition worker pool (``None`` = a small default
    #: derived from the machine's CPU count).
    worker_processes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.engine not in VALID_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {VALID_ENGINES}"
            )
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if self.broadcast_memory_limit < 1:
            raise ValueError("broadcast_memory_limit must be >= 1")
        if self.execution_mode not in VALID_EXECUTION_MODES:
            raise ValueError(
                f"unknown execution_mode {self.execution_mode!r}; "
                f"expected one of {VALID_EXECUTION_MODES}"
            )
        if self.worker_processes is not None and self.worker_processes < 1:
            raise ValueError("worker_processes must be >= 1 (or None for the default)")
        if self.work_scale <= 0:
            raise ValueError("work_scale must be > 0")


@dataclass
class StoreConfig:
    """What the layout materialises and how the persistent store compacts."""

    #: SF threshold for ExtVP materialisation (1.0 = all non-trivial tables).
    selectivity_threshold: float = 1.0
    #: Use ExtVP tables during table selection; ``False`` degrades to plain VP.
    use_extvp: bool = True
    #: Materialise OO correlation tables (ablation only).
    include_oo: bool = False
    #: :meth:`~repro.core.session.S2RDFSession.compact` merges a table's
    #: delta segments once it has accumulated at least this many of them.
    compaction_threshold: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity_threshold <= 1.0:
            raise ValueError("selectivity_threshold must be within [0, 1]")
        if self.compaction_threshold < 1:
            raise ValueError("compaction_threshold must be >= 1")


@dataclass
class ObservabilityConfig:
    """Tracing and the workload journal."""

    #: Record query-lifecycle spans (parse → compile → plan → execute) on the
    #: session's tracer; disabled keeps the query path allocation-free.
    tracing_enabled: bool = False
    #: Append one structured record per executed query to the session's
    #: journal (:mod:`repro.obs.journal`).
    journal_enabled: bool = True

    def __post_init__(self) -> None:
        pass  # Boolean-only group today; the hook keeps validate() uniform.


@dataclass
class ServingConfig:
    """Admission control of the concurrent query scheduler."""

    #: Queries executing at once; further admitted queries wait in the queue.
    max_concurrent_queries: int = 4
    #: Admitted-but-not-running queries the scheduler holds before
    #: backpressure applies (the *admission queue*).
    admission_queue_limit: int = 64
    #: ``"queue"`` blocks a submitter when the admission queue is full;
    #: ``"reject"`` raises :class:`~repro.serve.scheduler.AdmissionError`.
    admission_policy: str = "queue"
    #: Coalesce identical concurrent queries: a submission textually equal to
    #: one already in flight on the same dataset epoch shares its result
    #: instead of executing again.
    share_results: bool = True

    def __post_init__(self) -> None:
        if self.max_concurrent_queries < 1:
            raise ValueError("max_concurrent_queries must be >= 1")
        if self.admission_queue_limit < 1:
            raise ValueError("admission_queue_limit must be >= 1")
        if self.admission_policy not in VALID_ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission_policy {self.admission_policy!r}; "
                f"expected one of {VALID_ADMISSION_POLICIES}"
            )


#: Every flat knob name → the config group (attribute of SessionConfig) that
#: is its single home.  The audit test in ``tests/core/test_config.py`` checks
#: this map against the group dataclasses field by field.
FLAT_FIELD_HOMES: Dict[str, str] = {}
for _group_name, _group_cls in (
    ("execution", ExecutionConfig),
    ("store", StoreConfig),
    ("observability", ObservabilityConfig),
    ("serving", ServingConfig),
):
    for _field in fields(_group_cls):
        if _field.name in FLAT_FIELD_HOMES:  # pragma: no cover - construction guard
            raise RuntimeError(
                f"flat knob {_field.name!r} would map to two homes: "
                f"{FLAT_FIELD_HOMES[_field.name]} and {_group_name}"
            )
        FLAT_FIELD_HOMES[_field.name] = _group_name

#: The knobs that existed as flat ``SessionConfig`` fields before the
#: config split (PR 10); kept for the audit test and the docs.
LEGACY_FLAT_FIELDS: Tuple[str, ...] = (
    "selectivity_threshold",
    "use_extvp",
    "optimize_join_order",
    "include_oo",
    "work_scale",
    "num_partitions",
    "broadcast_threshold",
    "broadcast_memory_limit",
    "adaptive_enabled",
    "skew_factor",
    "compaction_threshold",
    "tracing_enabled",
    "journal_enabled",
    "engine",
    "vectorized_enabled",
)


class SessionConfig:
    """Tunable knobs of a session, grouped by concern.

    Preferred construction nests the groups::

        SessionConfig(
            execution=ExecutionConfig(num_partitions=8, engine="native"),
            serving=ServingConfig(max_concurrent_queries=16),
        )

    The historical flat spelling ``SessionConfig(num_partitions=8)`` still
    works but emits a :class:`DeprecationWarning` naming the new home.
    Reading ``config.num_partitions`` (and every other flat name) remains
    silent — the flat names are aliases for their nested field.
    """

    __slots__ = ("execution", "store", "observability", "serving")

    def __init__(
        self,
        execution: Optional[ExecutionConfig] = None,
        store: Optional[StoreConfig] = None,
        observability: Optional[ObservabilityConfig] = None,
        serving: Optional[ServingConfig] = None,
        **flat: object,
    ) -> None:
        self.execution = execution if execution is not None else ExecutionConfig()
        self.store = store if store is not None else StoreConfig()
        self.observability = (
            observability if observability is not None else ObservabilityConfig()
        )
        self.serving = serving if serving is not None else ServingConfig()
        if flat:
            for name in flat:
                home = FLAT_FIELD_HOMES.get(name)
                if home is None:
                    raise TypeError(f"SessionConfig got an unexpected keyword {name!r}")
                group = getattr(self, home)
                warnings.warn(
                    f"flat SessionConfig knob {name!r} is deprecated; use "
                    f"SessionConfig({home}={type(group).__name__}({name}=...))",
                    DeprecationWarning,
                    stacklevel=2,
                )
            self._apply_flat(flat)

    @classmethod
    def from_flat(cls, **flat: object) -> "SessionConfig":
        """Build a config from flat knob names *without* deprecation warnings.

        This is the internal mapper behind :meth:`S2RDFSession.from_graph`,
        :meth:`S2RDFSession.open_dataset`, :func:`repro.connect` and
        :func:`repro.create`, whose keyword surfaces remain flat on purpose —
        the deprecation applies to the old ``SessionConfig(knob=...)``
        spelling, not to those factory signatures.
        """
        config = cls()
        unknown = [name for name in flat if name not in FLAT_FIELD_HOMES]
        if unknown:
            raise TypeError(f"unknown session knob(s): {sorted(unknown)}")
        config._apply_flat(flat)
        return config

    def _apply_flat(self, flat: Dict[str, object]) -> None:
        for name, value in flat.items():
            setattr(getattr(self, FLAT_FIELD_HOMES[name]), name, value)
        self.validate()

    def validate(self) -> None:
        """Re-run every group's construction-time validation."""
        self.execution.__post_init__()
        self.store.__post_init__()
        self.observability.__post_init__()
        self.serving.__post_init__()

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SessionConfig):
            return NotImplemented
        return (
            self.execution == other.execution
            and self.store == other.store
            and self.observability == other.observability
            and self.serving == other.serving
        )

    def __repr__(self) -> str:
        return (
            f"SessionConfig(execution={self.execution!r}, store={self.store!r}, "
            f"observability={self.observability!r}, serving={self.serving!r})"
        )


def _flat_alias(home: str, name: str) -> property:
    def fget(self: SessionConfig) -> object:
        return getattr(getattr(self, home), name)

    def fset(self: SessionConfig, value: object) -> None:
        setattr(getattr(self, home), name, value)

    fget.__name__ = name
    return property(fget, fset, doc=f"Alias for ``config.{home}.{name}``.")


for _name, _home in FLAT_FIELD_HOMES.items():
    setattr(SessionConfig, _name, _flat_alias(_home, _name))
del _name, _home, _group_name, _group_cls, _field
