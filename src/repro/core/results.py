"""Query results.

A :class:`QueryResult` bundles the solution bindings with everything the
benchmark harness needs: the generated SQL text, the execution metrics, the
simulated cluster runtime and the wall-clock time spent in the local engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation
from repro.rdf.terms import Term

SolutionBinding = Dict[str, Term]


@dataclass
class QueryResult:
    """The outcome of executing one SPARQL query."""

    relation: Relation
    sql: str
    metrics: ExecutionMetrics
    simulated_runtime_ms: float
    #: Total wall-clock time of the query() call, in milliseconds.
    wall_clock_ms: float
    statically_empty: bool = False
    #: Wall-clock milliseconds per query phase (``parse``, ``compile``,
    #: ``plan``, ``execute``).  Populated even when tracing is disabled — the
    #: session times the phases directly; the tracer only adds span detail.
    phase_ms: Dict[str, float] = field(default_factory=dict)
    selected_tables: List[str] = field(default_factory=list)
    #: Physical join strategies chosen by the runtime's *static* planning
    #: step, in bottom-up order (e.g. ``"BroadcastHashJoin(build=right, ...)"``).
    join_strategies: List[str] = field(default_factory=list)
    #: The strategies the runtime actually executed, same order.  Differs from
    #: :attr:`join_strategies` when adaptive execution replanned a join from
    #: observed sizes or the executor fell back to the serial operator.
    executed_join_strategies: List[str] = field(default_factory=list)
    #: Human-readable ``"initial -> executed"`` entries for every join whose
    #: executed strategy differs from the plan.
    replanned_joins: List[str] = field(default_factory=list)
    #: Which engine executed the plan: ``"native"`` (in-process operators) or
    #: ``"sqlite"`` (the SQL lowering backend).
    engine: str = "native"
    #: Manifest append epoch of the dataset snapshot this query read, or
    #: ``None`` for sessions without a persisted dataset.  Under concurrent
    #: appends this identifies exactly which store state produced the rows.
    epoch: Optional[int] = None

    @property
    def wallclock_ms(self) -> float:
        """Backwards-compatible alias for :attr:`wall_clock_ms`."""
        return self.wall_clock_ms

    @property
    def variables(self) -> Sequence[str]:
        return self.relation.columns

    @property
    def bindings(self) -> List[SolutionBinding]:
        """Solution mappings as dictionaries (unbound variables omitted)."""
        return [
            {column: value for column, value in zip(self.relation.columns, row) if value is not None}
            for row in self.relation.rows
        ]

    def __len__(self) -> int:
        return len(self.relation)

    def __iter__(self) -> Iterator[SolutionBinding]:
        return iter(self.bindings)

    def to_dicts(self) -> List[Dict[str, str]]:
        """Solution mappings as plain-string dictionaries.

        Unlike :attr:`bindings` (which keeps :class:`~repro.rdf.terms.Term`
        objects), every value is rendered to its lexical form — the shape to
        hand to JSON encoders, CSV writers or test fixtures.
        """
        return [
            {
                variable: str(getattr(term, "value", term))
                for variable, term in binding.items()
            }
            for binding in self.bindings
        ]

    def values(self, variable: str) -> List[Any]:
        """All values bound to ``variable`` across the result."""
        return self.relation.column_values(variable)

    def as_table(self, limit: Optional[int] = 20) -> str:
        """Human-readable tabular rendering (used by the examples)."""
        columns = list(self.relation.columns)
        rows = self.relation.rows[:limit] if limit is not None else self.relation.rows

        def render(value: Any) -> str:
            if value is None:
                return ""
            if hasattr(value, "n3"):
                return value.n3()
            return str(value)

        rendered = [[render(v) for v in row] for row in rows]
        widths = [
            max([len(c)] + [len(r[i]) for r in rendered]) if rendered else len(c)
            for i, c in enumerate(columns)
        ]
        header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
        separator = "-+-".join("-" * w for w in widths)
        body = "\n".join(" | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rendered)
        suffix = ""
        if limit is not None and len(self.relation) > limit:
            suffix = f"\n... ({len(self.relation) - limit} more rows)"
        return "\n".join(filter(None, [header, separator, body])) + suffix
