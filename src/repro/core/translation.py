"""Triple pattern to SQL translation (Algorithm 2 of the paper).

Every triple pattern becomes a ``SELECT ... FROM <table> [WHERE ...]``
subquery: variables rename the physical columns to variable names (so the
surrounding joins are natural joins on variable names) and bound subject /
object values become equality conditions.  A bound predicate is already
implied by the chosen VP/ExtVP table; for the triples table it becomes an
additional condition on the ``p`` column.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.table_selection import TableChoice
from repro.engine.plan import SubqueryNode
from repro.rdf.terms import Term, Variable
from repro.sparql.algebra import TriplePattern


def triple_pattern_to_subquery(pattern: TriplePattern, choice: TableChoice) -> SubqueryNode:
    """Build the subquery plan node for ``pattern`` over the selected table."""
    projections: List[Tuple[str, str]] = []
    conditions: List[Tuple[str, Term]] = []

    def handle(position_column: str, term: Term) -> None:
        if isinstance(term, Variable):
            projections.append((position_column, term.name))
        else:
            conditions.append((position_column, term))

    handle("s", pattern.subject)
    if choice.is_triples_table:
        handle("p", pattern.predicate)
    # For VP/ExtVP tables a bound predicate is implied by the table itself.
    handle("o", pattern.object)

    if not projections:
        # All positions bound: project a constant-free existence check on the
        # subject column so the node still has a schema.
        projections.append(("s", "__exists"))

    return SubqueryNode(
        table_name=choice.table_name,
        projections=tuple(projections),
        conditions=tuple(conditions),
    )
