"""Full SPARQL-to-SQL compiler (Sec. 6 of the paper).

BGPs are compiled through :func:`repro.core.bgp.compile_bgp`; the remaining
SPARQL 1.0 operators map to their relational counterparts: ``FILTER`` to a
selection, ``OPTIONAL`` to a left outer join, ``UNION`` to a bag union,
``DISTINCT`` / ``ORDER BY`` / ``LIMIT`` / ``OFFSET`` to their SQL equivalents
and the ``SELECT`` clause to a projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.bgp import BGPCompilationResult, compile_bgp
from repro.core.table_selection import TableSelector
from repro.obs.trace import NULL_TRACER, Tracer
from repro.engine.ops import (
    AggregateNode,
    AggregateSpec,
    DistinctNode,
    FilterNode,
    LeftOuterJoinNode,
    LimitNode,
    NaturalJoinNode,
    OrderByNode,
    PlanNode,
    ProjectNode,
    UnionNode,
)
from repro.sparql.algebra import (
    BGP,
    Distinct,
    Filter,
    Join,
    LeftJoin,
    OrderBy,
    OrderCondition,
    PatternVisitor,
    Projection,
    Query,
    Slice,
    Union,
)
from repro.sparql.expressions import VariableExpression


@dataclass
class CompiledQuery:
    """A compiled query: the root plan plus per-BGP compilation details."""

    plan: PlanNode
    bgp_results: List[BGPCompilationResult] = field(default_factory=list)

    @property
    def statically_empty(self) -> bool:
        """True when statistics prove every BGP empty (e.g. both UNION branches).

        A single empty branch of a UNION does not make the query empty, so all
        BGPs must be statically empty, and an absence of BGPs proves nothing.
        """
        return bool(self.bgp_results) and all(result.statically_empty for result in self.bgp_results)

    @property
    def selected_tables(self) -> List[str]:
        tables: List[str] = []
        for result in self.bgp_results:
            tables.extend(result.selected_tables)
        return tables

    def sql(self) -> str:
        return self.plan.to_sql()


class QueryCompiler(PatternVisitor):
    """Compiles parsed SPARQL queries into logical plans.

    The pattern lowering is a :class:`~repro.sparql.algebra.PatternVisitor`:
    each algebra operator dispatches to its ``visit_*`` hook, which compiles
    children via :meth:`~repro.sparql.algebra.PatternVisitor.visit` and wraps
    them in the corresponding plan IR node.  Per-BGP compilation details are
    threaded through the visit as the ``bgp_results`` accumulator.
    """

    def __init__(
        self,
        selector: TableSelector,
        optimize_join_order: bool = True,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.selector = selector
        self.optimize_join_order = optimize_join_order
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------ #
    def compile(self, query: Query) -> CompiledQuery:
        bgp_results: List[BGPCompilationResult] = []
        plan = self.visit(query.pattern, bgp_results)

        if query.aggregates or query.group_by:
            plan = AggregateNode(
                plan,
                tuple(v.name for v in query.group_by),
                tuple(
                    AggregateSpec(
                        function=binding.function,
                        column=binding.variable.name if binding.variable is not None else None,
                        alias=binding.alias.name,
                        distinct=binding.distinct,
                    )
                    for binding in query.aggregates
                ),
            )
        if query.order_by:
            keys = self._order_keys(query.order_by)
            if keys:
                plan = OrderByNode(plan, keys)
        if query.select_variables:
            plan = ProjectNode(plan, tuple(v.name for v in query.select_variables))
        if query.distinct:
            # DISTINCT applies to the projected solutions (SPARQL algebra:
            # Distinct(Project(...))); our distinct preserves the sort order.
            plan = DistinctNode(plan)
        if query.limit is not None or query.offset:
            plan = LimitNode(plan, query.limit, query.offset)
        return CompiledQuery(plan=plan, bgp_results=bgp_results)

    # ------------------------------------------------------------------ #
    # Algebra visitor hooks
    # ------------------------------------------------------------------ #
    def visit_bgp(self, node: BGP, bgp_results: List[BGPCompilationResult]) -> PlanNode:
        with self.tracer.span(
            "table-selection", category="compile", patterns=len(node.patterns)
        ) as span:
            result = compile_bgp(node, self.selector, self.optimize_join_order)
            span.set(
                selected_tables=list(result.selected_tables),
                statically_empty=result.statically_empty,
            )
        bgp_results.append(result)
        return result.plan

    def visit_filter(self, node: Filter, bgp_results: List[BGPCompilationResult]) -> PlanNode:
        return FilterNode(self.visit(node.pattern, bgp_results), node.expression)

    def visit_join(self, node: Join, bgp_results: List[BGPCompilationResult]) -> PlanNode:
        left = self.visit(node.left, bgp_results)
        right = self.visit(node.right, bgp_results)
        return NaturalJoinNode(left, right)

    def visit_left_join(self, node: LeftJoin, bgp_results: List[BGPCompilationResult]) -> PlanNode:
        left = self.visit(node.left, bgp_results)
        right = self.visit(node.right, bgp_results)
        return LeftOuterJoinNode(left, right, node.expression)

    def visit_union(self, node: Union, bgp_results: List[BGPCompilationResult]) -> PlanNode:
        left = self.visit(node.left, bgp_results)
        right = self.visit(node.right, bgp_results)
        return UnionNode(left, right)

    def visit_projection(self, node: Projection, bgp_results: List[BGPCompilationResult]) -> PlanNode:
        child = self.visit(node.pattern, bgp_results)
        if node.variables_list:
            return ProjectNode(child, tuple(v.name for v in node.variables_list))
        return child

    def visit_distinct(self, node: Distinct, bgp_results: List[BGPCompilationResult]) -> PlanNode:
        return DistinctNode(self.visit(node.pattern, bgp_results))

    def visit_order_by(self, node: OrderBy, bgp_results: List[BGPCompilationResult]) -> PlanNode:
        child = self.visit(node.pattern, bgp_results)
        keys = self._order_keys(node.conditions)
        return OrderByNode(child, keys) if keys else child

    def visit_slice(self, node: Slice, bgp_results: List[BGPCompilationResult]) -> PlanNode:
        return LimitNode(self.visit(node.pattern, bgp_results), node.limit, node.offset)

    @staticmethod
    def _order_keys(conditions: Tuple[OrderCondition, ...]) -> Tuple[Tuple[str, bool], ...]:
        keys: List[Tuple[str, bool]] = []
        for condition in conditions:
            if isinstance(condition.expression, VariableExpression):
                keys.append((condition.expression.variable.name, condition.ascending))
        return tuple(keys)
