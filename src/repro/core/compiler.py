"""Full SPARQL-to-SQL compiler (Sec. 6 of the paper).

BGPs are compiled through :func:`repro.core.bgp.compile_bgp`; the remaining
SPARQL 1.0 operators map to their relational counterparts: ``FILTER`` to a
selection, ``OPTIONAL`` to a left outer join, ``UNION`` to a bag union,
``DISTINCT`` / ``ORDER BY`` / ``LIMIT`` / ``OFFSET`` to their SQL equivalents
and the ``SELECT`` clause to a projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.bgp import BGPCompilationResult, compile_bgp
from repro.core.table_selection import TableSelector
from repro.obs.trace import NULL_TRACER, Tracer
from repro.engine.plan import (
    DistinctNode,
    EmptyNode,
    FilterNode,
    LeftOuterJoinNode,
    LimitNode,
    NaturalJoinNode,
    OrderByNode,
    PlanNode,
    ProjectNode,
    UnionNode,
)
from repro.sparql.algebra import (
    BGP,
    Distinct,
    Filter,
    Join,
    LeftJoin,
    OrderBy,
    OrderCondition,
    PatternNode,
    Projection,
    Query,
    Slice,
    Union,
)
from repro.sparql.expressions import VariableExpression


@dataclass
class CompiledQuery:
    """A compiled query: the root plan plus per-BGP compilation details."""

    plan: PlanNode
    bgp_results: List[BGPCompilationResult] = field(default_factory=list)

    @property
    def statically_empty(self) -> bool:
        """True when statistics prove every BGP empty (e.g. both UNION branches).

        A single empty branch of a UNION does not make the query empty, so all
        BGPs must be statically empty, and an absence of BGPs proves nothing.
        """
        return bool(self.bgp_results) and all(result.statically_empty for result in self.bgp_results)

    @property
    def selected_tables(self) -> List[str]:
        tables: List[str] = []
        for result in self.bgp_results:
            tables.extend(result.selected_tables)
        return tables

    def sql(self) -> str:
        return self.plan.to_sql()


class QueryCompiler:
    """Compiles parsed SPARQL queries into logical plans."""

    def __init__(
        self,
        selector: TableSelector,
        optimize_join_order: bool = True,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.selector = selector
        self.optimize_join_order = optimize_join_order
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------ #
    def compile(self, query: Query) -> CompiledQuery:
        bgp_results: List[BGPCompilationResult] = []
        plan = self._compile_pattern(query.pattern, bgp_results)

        if query.order_by:
            keys = self._order_keys(query.order_by)
            if keys:
                plan = OrderByNode(plan, keys)
        if query.select_variables:
            plan = ProjectNode(plan, tuple(v.name for v in query.select_variables))
        if query.distinct:
            # DISTINCT applies to the projected solutions (SPARQL algebra:
            # Distinct(Project(...))); our distinct preserves the sort order.
            plan = DistinctNode(plan)
        if query.limit is not None or query.offset:
            plan = LimitNode(plan, query.limit, query.offset)
        return CompiledQuery(plan=plan, bgp_results=bgp_results)

    # ------------------------------------------------------------------ #
    def _compile_pattern(self, node: PatternNode, bgp_results: List[BGPCompilationResult]) -> PlanNode:
        if isinstance(node, BGP):
            with self.tracer.span(
                "table-selection", category="compile", patterns=len(node.patterns)
            ) as span:
                result = compile_bgp(node, self.selector, self.optimize_join_order)
                span.set(
                    selected_tables=list(result.selected_tables),
                    statically_empty=result.statically_empty,
                )
            bgp_results.append(result)
            return result.plan
        if isinstance(node, Filter):
            child = self._compile_pattern(node.pattern, bgp_results)
            return FilterNode(child, node.expression)
        if isinstance(node, Join):
            left = self._compile_pattern(node.left, bgp_results)
            right = self._compile_pattern(node.right, bgp_results)
            return NaturalJoinNode(left, right)
        if isinstance(node, LeftJoin):
            left = self._compile_pattern(node.left, bgp_results)
            right = self._compile_pattern(node.right, bgp_results)
            return LeftOuterJoinNode(left, right, node.expression)
        if isinstance(node, Union):
            left = self._compile_pattern(node.left, bgp_results)
            right = self._compile_pattern(node.right, bgp_results)
            return UnionNode(left, right)
        if isinstance(node, Projection):
            child = self._compile_pattern(node.pattern, bgp_results)
            if node.variables_list:
                return ProjectNode(child, tuple(v.name for v in node.variables_list))
            return child
        if isinstance(node, Distinct):
            return DistinctNode(self._compile_pattern(node.pattern, bgp_results))
        if isinstance(node, OrderBy):
            child = self._compile_pattern(node.pattern, bgp_results)
            keys = self._order_keys(node.conditions)
            return OrderByNode(child, keys) if keys else child
        if isinstance(node, Slice):
            child = self._compile_pattern(node.pattern, bgp_results)
            return LimitNode(child, node.limit, node.offset)
        raise TypeError(f"unsupported algebra node {type(node).__name__}")

    @staticmethod
    def _order_keys(conditions: Tuple[OrderCondition, ...]) -> Tuple[Tuple[str, bool], ...]:
        keys: List[Tuple[str, bool]] = []
        for condition in conditions:
            if isinstance(condition.expression, VariableExpression):
                keys.append((condition.expression.variable.name, condition.ascending))
        return tuple(keys)
