"""S2RDF core: the SPARQL-over-SQL query processor of the paper.

The public entry point is :class:`~repro.core.session.S2RDFSession`:

.. code-block:: python

    from repro import S2RDFSession
    session = S2RDFSession.from_graph(graph, selectivity_threshold=0.25)
    result = session.query("SELECT ?x WHERE { ?x wsdbm:follows ?y }")
    for binding in result.bindings:
        print(binding["x"])

Internally the session uses the paper's algorithms: statistics-driven table
selection (Algorithm 1), triple-pattern-to-SQL translation (Algorithm 2), BGP
translation (Algorithm 3) and join-order optimisation (Algorithm 4).
"""

from repro.core.table_selection import TableChoice, TableSelector
from repro.core.translation import triple_pattern_to_subquery
from repro.core.bgp import BGPCompilationResult, compile_bgp
from repro.core.compiler import QueryCompiler
from repro.core.config import (
    ExecutionConfig,
    ObservabilityConfig,
    ServingConfig,
    SessionConfig,
    StoreConfig,
)
from repro.core.results import QueryResult, SolutionBinding
from repro.core.session import S2RDFSession

__all__ = [
    "TableChoice",
    "TableSelector",
    "triple_pattern_to_subquery",
    "BGPCompilationResult",
    "compile_bgp",
    "QueryCompiler",
    "QueryResult",
    "SolutionBinding",
    "S2RDFSession",
    "SessionConfig",
    "ExecutionConfig",
    "StoreConfig",
    "ObservabilityConfig",
    "ServingConfig",
]
