"""BGP to SQL translation (Algorithms 3 and 4 of the paper).

``compile_bgp`` joins the subqueries of all triple patterns.  With
``optimize_join_order=True`` (Algorithm 4) the patterns are processed in an
order that (1) prefers patterns with more bound values, (2) avoids cross joins
by requiring a shared variable with the patterns already joined, and (3)
prefers the smallest selected table, which reduces intermediate results.
With ``optimize_join_order=False`` the patterns are joined in textual order
(Algorithm 3), which the ablation benchmark uses as the unoptimised baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.table_selection import TableChoice, TableSelector
from repro.core.translation import triple_pattern_to_subquery
from repro.engine.plan import EmptyNode, NaturalJoinNode, PlanNode
from repro.rdf.terms import Variable
from repro.sparql.algebra import BGP, TriplePattern


@dataclass
class BGPCompilationResult:
    """The plan for a BGP plus the decisions that produced it."""

    plan: PlanNode
    choices: List[Tuple[TriplePattern, TableChoice]] = field(default_factory=list)
    join_order: List[TriplePattern] = field(default_factory=list)
    statically_empty: bool = False

    @property
    def selected_tables(self) -> List[str]:
        return [choice.table_name for _, choice in self.choices]


def _pattern_variables(pattern: TriplePattern) -> Set[str]:
    return {v.name for v in pattern.variables()}


def _order_patterns(
    patterns: Sequence[TriplePattern],
    choices: Dict[int, TableChoice],
) -> List[int]:
    """Algorithm 4's ordering: bound values first, then smallest table,
    always requiring a shared variable with the already-joined prefix."""
    remaining = list(range(len(patterns)))
    # Primary order: number of bound values (descending).
    remaining.sort(key=lambda i: (-patterns[i].bound_count(), choices[i].row_count))
    ordered: List[int] = []
    seen_variables: Set[str] = set()
    while remaining:
        next_index: Optional[int] = None
        for index in remaining:
            variables = _pattern_variables(patterns[index])
            connected = bool(seen_variables & variables) or not ordered
            if not connected:
                continue
            if next_index is None:
                next_index = index
                continue
            current_best = choices[next_index]
            candidate = choices[index]
            if patterns[index].bound_count() > patterns[next_index].bound_count():
                next_index = index
            elif (
                patterns[index].bound_count() == patterns[next_index].bound_count()
                and candidate.row_count < current_best.row_count
            ):
                next_index = index
        if next_index is None:
            # Every remaining pattern would need a cross join; take the
            # smallest one and accept the cross join.
            next_index = min(remaining, key=lambda i: choices[i].row_count)
        ordered.append(next_index)
        seen_variables |= _pattern_variables(patterns[next_index])
        remaining.remove(next_index)
    return ordered


def compile_bgp(
    bgp: BGP,
    selector: TableSelector,
    optimize_join_order: bool = True,
) -> BGPCompilationResult:
    """Translate a BGP into a join plan over the selected tables."""
    patterns = list(bgp.patterns)
    if not patterns:
        return BGPCompilationResult(plan=EmptyNode(), statically_empty=False)

    choices: Dict[int, TableChoice] = {
        index: selector.select(pattern, patterns) for index, pattern in enumerate(patterns)
    }

    # Statistics short-circuit (Algorithm 3, line 4): any empty table proves
    # the whole BGP empty.
    all_variables = tuple(sorted({v.name for p in patterns for v in p.variables()}))
    if any(choice.is_empty for choice in choices.values()):
        result = BGPCompilationResult(
            plan=EmptyNode(columns=all_variables),
            choices=[(patterns[i], choices[i]) for i in range(len(patterns))],
            join_order=list(patterns),
            statically_empty=True,
        )
        return result

    if optimize_join_order:
        order = _order_patterns(patterns, choices)
    else:
        order = list(range(len(patterns)))

    plan: Optional[PlanNode] = None
    ordered_patterns: List[TriplePattern] = []
    ordered_choices: List[Tuple[TriplePattern, TableChoice]] = []
    for index in order:
        pattern = patterns[index]
        choice = choices[index]
        subquery = triple_pattern_to_subquery(pattern, choice)
        ordered_patterns.append(pattern)
        ordered_choices.append((pattern, choice))
        plan = subquery if plan is None else NaturalJoinNode(plan, subquery)

    assert plan is not None
    return BGPCompilationResult(
        plan=plan,
        choices=ordered_choices,
        join_order=ordered_patterns,
        statically_empty=False,
    )
