"""Table selection (Algorithm 1 of the paper).

For a triple pattern ``tp_i`` inside a BGP, the selector starts from the VP
table of the pattern's predicate and then walks over all *other* triple
patterns, checking for SS, SO and OS correlations.  Whenever a materialised
ExtVP table with a better (smaller) selectivity factor exists, it becomes the
new candidate.  Statistics about empty tables allow the compiler to prove a
query empty without executing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.mappings.extvp import CorrelationKind, ExtVPLayout
from repro.mappings.naming import triples_table_name
from repro.rdf.terms import IRI, Variable
from repro.sparql.algebra import TriplePattern


@dataclass(frozen=True)
class TableChoice:
    """The table selected to answer one triple pattern."""

    table_name: str
    row_count: int
    selectivity: float
    source: str  # "vp", "extvp", "triples" or "empty"
    kind: Optional[CorrelationKind] = None
    correlated_predicate: Optional[IRI] = None

    @property
    def is_empty(self) -> bool:
        return self.selectivity == 0.0 or self.row_count == 0

    @property
    def is_triples_table(self) -> bool:
        return self.source == "triples"


@dataclass(frozen=True)
class CandidateTable:
    """One candidate considered during selection (kept for EXPLAIN output)."""

    table_name: str
    row_count: int
    selectivity: float
    kind: CorrelationKind
    correlated_predicate: IRI
    materialized: bool


class TableSelector:
    """Implements Algorithm 1 over an :class:`~repro.mappings.extvp.ExtVPLayout`."""

    def __init__(self, layout: ExtVPLayout, use_extvp: bool = True) -> None:
        self.layout = layout
        self.use_extvp = use_extvp

    # ------------------------------------------------------------------ #
    def candidates(self, pattern: TriplePattern, bgp: Sequence[TriplePattern]) -> List[CandidateTable]:
        """All ExtVP candidates for ``pattern`` given its correlations in ``bgp``."""
        if not isinstance(pattern.predicate, IRI):
            return []
        found: List[CandidateTable] = []
        predicate = pattern.predicate
        for other in bgp:
            if other is pattern:
                continue
            if not isinstance(other.predicate, IRI):
                continue
            for kind, my_term, other_term in (
                (CorrelationKind.SS, pattern.subject, other.subject),
                (CorrelationKind.SO, pattern.subject, other.object),
                (CorrelationKind.OS, pattern.object, other.subject),
            ):
                if not isinstance(my_term, Variable) or not isinstance(other_term, Variable):
                    continue
                if my_term != other_term:
                    continue
                if kind == CorrelationKind.SS and predicate == other.predicate:
                    continue
                info = self.layout.extvp_info(kind, predicate, other.predicate)
                if info is None:
                    continue
                found.append(
                    CandidateTable(
                        table_name=info.name,
                        row_count=info.row_count,
                        selectivity=info.selectivity,
                        kind=kind,
                        correlated_predicate=other.predicate,
                        materialized=info.materialized,
                    )
                )
        return found

    def select(self, pattern: TriplePattern, bgp: Sequence[TriplePattern]) -> TableChoice:
        """Algorithm 1: pick the most selective usable table for ``pattern``."""
        # Line 1: unbound predicate -> base triples table.
        if isinstance(pattern.predicate, Variable):
            triples_name = triples_table_name()
            row_count = 0
            if triples_name in self.layout.catalog:
                row_count = len(self.layout.catalog.table(triples_name))
            return TableChoice(triples_name, row_count, 1.0, source="triples")

        predicate = pattern.predicate
        vp_name = self.layout.vp_table_name(predicate)
        if vp_name is None:
            # The predicate does not occur in the data at all: provably empty.
            return TableChoice(f"vp_missing_{predicate.local_name()}", 0, 0.0, source="empty")

        best = TableChoice(vp_name, self.layout.vp_size(predicate), 1.0, source="vp")
        if not self.use_extvp:
            return best

        for candidate in self.candidates(pattern, bgp):
            if candidate.row_count == 0:
                # An empty correlation proves the whole BGP result empty
                # regardless of materialisation (statistics-only knowledge).
                return TableChoice(
                    candidate.table_name,
                    0,
                    0.0,
                    source="empty",
                    kind=candidate.kind,
                    correlated_predicate=candidate.correlated_predicate,
                )
            if not candidate.materialized:
                continue
            if candidate.selectivity < best.selectivity:
                best = TableChoice(
                    candidate.table_name,
                    candidate.row_count,
                    candidate.selectivity,
                    source="extvp",
                    kind=candidate.kind,
                    correlated_predicate=candidate.correlated_predicate,
                )
        return best
