"""The S2RDF session — the library's main public API.

A session owns the data layout (VP + ExtVP over a graph), compiles SPARQL
queries to SQL plans, executes them on the relational engine and attaches a
simulated Spark-cluster runtime derived from the execution metrics.

.. code-block:: python

    session = S2RDFSession.from_graph(graph, selectivity_threshold=0.25)
    result = session.query("SELECT * WHERE { ?x wsdbm:follows ?y . ?y wsdbm:likes ?z }")
    print(result.sql)
    print(result.simulated_runtime_ms)

A built session can be persisted with :meth:`S2RDFSession.save_dataset` and
reopened cold with :meth:`S2RDFSession.open_dataset`, which restores the whole
layout from the columnar dataset store without re-parsing the RDF source or
recomputing a single ExtVP semi-join.  A persisted dataset grows in place:
:meth:`S2RDFSession.append_triples` writes new triples as delta segments
(no existing segment is rewritten) and :meth:`S2RDFSession.compact` folds
accumulated deltas back into full base segments.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.compiler import CompiledQuery, QueryCompiler
from repro.core.config import (
    ExecutionConfig,
    ObservabilityConfig,
    ServingConfig,
    SessionConfig,
    StoreConfig,
)
from repro.core.results import QueryResult
from repro.core.table_selection import TableSelector
from repro.engine.cluster import SparkCostModel
from repro.engine.metrics import ExecutionMetrics
from repro.engine.runtime import UNKNOWN_ROWS, ParallelExecutor, estimate_rows
from repro.engine.sql import SqliteExecutor
from repro.mappings.extvp import ExtVPLayout
from repro.obs.explain import (
    ExplainAnalyzeResult,
    collect_estimates,
    render_explain_analyze,
)
from repro.obs.journal import (
    JournalRecord,
    QueryJournal,
    open_dataset_journal,
    q_error,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.rdf.graph import Graph
from repro.rdf.ntriples import parse_ntriples
from repro.rdf.triple import Triple
from repro.sparql.algebra import Query
from repro.sparql.parser import parse_query
from repro.store.reader import (
    DatasetLoadReport,
    open_dataset as _open_stored_dataset,
    refresh_dataset as _refresh_stored_dataset,
)
from repro.store.writer import (
    CompactionReport,
    DatasetAppender,
    DatasetAppendReport,
    DatasetCompactor,
    DatasetWriteReport,
    DatasetWriter,
)


__all__ = [
    "S2RDFSession",
    "SessionConfig",
    "ExecutionConfig",
    "StoreConfig",
    "ObservabilityConfig",
    "ServingConfig",
]

#: Milliseconds a query waited in the scheduler's admission queue before this
#: thread started executing it.  The scheduler sets this around its call into
#: :meth:`S2RDFSession.query`; :meth:`S2RDFSession._journal_query` reads it so
#: the journal separates queue wait from execution without the session ever
#: knowing about the scheduler.
_QUEUE_WAIT_MS: ContextVar[Optional[float]] = ContextVar("s2rdf_queue_wait_ms", default=None)


class _ReadWriteLock:
    """Many concurrent readers (queries) xor one writer (store mutation).

    Queries hold the read side for their whole parse→execute→journal
    pipeline, so each one sees exactly one manifest snapshot and its journal
    record's epoch is the epoch it actually read.  ``append_triples``,
    ``compact`` and ``save_dataset`` take the write side, which also makes
    their catalog/sqlite invalidation safe while queries run on other threads.

    The thread holding the write side may re-enter both sides (a mutation
    that runs a query mid-commit must not deadlock against itself); plain
    readers are not reentrant against a *waiting* writer.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: Optional[int] = None
        self._writer_depth = 0

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        if self._writer == threading.get_ident():
            # The write holder reading its own in-progress state.
            yield
            return
        with self._cond:
            while self._writer is not None:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        me = threading.get_ident()
        if self._writer == me:
            self._writer_depth += 1
            try:
                yield
            finally:
                self._writer_depth -= 1
            return
        with self._cond:
            while self._writer is not None or self._readers:
                self._cond.wait()
            self._writer = me
        try:
            yield
        finally:
            with self._cond:
                self._writer = None
                self._cond.notify_all()


class S2RDFSession:
    """SPARQL query processing over an ExtVP (or VP) layout."""

    def __init__(
        self,
        layout: ExtVPLayout,
        config: Optional[SessionConfig] = None,
        cost_model: Optional[SparkCostModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.layout = layout
        # Config invariants (engine, num_partitions >= 1, ...) are enforced by
        # the config dataclasses' own __post_init__ at construction time.
        self.config = config or SessionConfig()
        self.cost_model = cost_model or SparkCostModel()
        #: Query-lifecycle tracer; the shared no-op tracer unless tracing is
        #: enabled (or a caller injects one, e.g. ``open_dataset`` so the cold
        #: open itself is on the timeline).
        if tracer is not None:
            self.tracer = tracer
        elif self.config.tracing_enabled:
            self.tracer = Tracer(enabled=True)
        else:
            self.tracer = NULL_TRACER
        #: Session-level counters and histograms, aggregated across queries,
        #: appends, compactions and cold opens.
        self.metrics = MetricsRegistry()
        self.selector = TableSelector(layout, use_extvp=self.config.use_extvp)
        self.compiler = QueryCompiler(
            self.selector,
            optimize_join_order=self.config.optimize_join_order,
            tracer=self.tracer,
        )
        #: Executors are *per thread* (instance state like the last physical
        #: plan and the sqlite connection are not shareable between concurrent
        #: queries) over the one shared catalog.  The thread-local holds each
        #: thread's instances; the lists track every instance ever created so
        #: store mutations can invalidate and :meth:`close` can shut them all.
        self._thread_runtime = threading.local()
        self._all_executors: List[ParallelExecutor] = []
        self._all_sql_executors: List[SqliteExecutor] = []
        self._runtime_lock = threading.Lock()
        #: Store mutations (write side) vs queries (read side); see
        #: :class:`_ReadWriteLock`.
        self._store_lock = _ReadWriteLock()
        #: Persistent process worker pool, created lazily by
        #: :meth:`_process_pool` once ``execution_mode="process"`` meets a
        #: persisted dataset.
        self._worker_pool = None
        #: Per-query workload journal (``None`` when journaling is disabled).
        #: Ephemeral sessions journal in memory; ``save_dataset`` /
        #: ``open_dataset`` switch to the dataset's persistent ``journal/``.
        self.journal: Optional[QueryJournal] = (
            QueryJournal() if self.config.journal_enabled else None
        )
        #: Manifest append epoch stamped into journal records: ``None`` until
        #: the session touches a stored dataset, then updated only *after*
        #: each mutation's manifest swap (see :meth:`_refresh_from_store`).
        self._journal_epoch: Optional[int] = None
        #: Set by :meth:`open_dataset`: instrumentation of the cold open.
        self.load_report: Optional[DatasetLoadReport] = None
        #: Directory this session is persisted to; set by :meth:`save_dataset`
        #: and :meth:`open_dataset`, required by :meth:`append_triples` and
        #: :meth:`compact`.
        self.dataset_path: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Per-thread runtime
    # ------------------------------------------------------------------ #
    @property
    def executor(self) -> ParallelExecutor:
        """This thread's parallel runtime (created on first use per thread)."""
        runtime = getattr(self._thread_runtime, "executor", None)
        if runtime is None:
            runtime = ParallelExecutor(
                self.layout.catalog,
                num_partitions=self.config.num_partitions,
                broadcast_threshold=self.config.broadcast_threshold,
                adaptive_enabled=self.config.adaptive_enabled,
                skew_factor=self.config.skew_factor,
                tracer=self.tracer,
                metrics_registry=self.metrics,
                broadcast_memory_limit=self.config.broadcast_memory_limit,
                vectorized=self.config.vectorized_enabled,
                worker_pool=self._process_pool,
            )
            self._thread_runtime.executor = runtime
            with self._runtime_lock:
                self._all_executors.append(runtime)
        return runtime

    @property
    def sql_executor(self) -> SqliteExecutor:
        """This thread's SQLite engine (no connection until its first query)."""
        runtime = getattr(self._thread_runtime, "sql_executor", None)
        if runtime is None:
            runtime = SqliteExecutor(
                self.layout.catalog, tracer=self.tracer, metrics_registry=self.metrics
            )
            self._thread_runtime.sql_executor = runtime
            with self._runtime_lock:
                self._all_sql_executors.append(runtime)
        return runtime

    def _process_pool(self):
        """The partition worker pool, or ``None`` outside process mode.

        Process mode needs a persisted dataset (workers re-open it read-only);
        an ephemeral session configured with ``execution_mode="process"``
        silently keeps the thread pool until :meth:`save_dataset` runs.
        """
        if self.config.execution_mode != "process" or self.dataset_path is None:
            return None
        with self._runtime_lock:
            if self._worker_pool is None:
                from repro.serve.workers import PartitionWorkerPool

                self._worker_pool = PartitionWorkerPool(
                    self.dataset_path,
                    num_workers=self.config.worker_processes,
                    session_knobs=self._worker_session_knobs(),
                )
            return self._worker_pool

    def _worker_session_knobs(self) -> Dict[str, object]:
        """Knobs a worker process opens its own read-only session with.

        Workers inherit the parent's planning knobs (so their plans match),
        but always run thread mode — process-level parallelism comes from the
        pool itself, never from nesting.
        """
        config = self.config
        return {
            "num_partitions": config.num_partitions,
            "broadcast_threshold": config.broadcast_threshold,
            "broadcast_memory_limit": config.broadcast_memory_limit,
            "adaptive_enabled": config.adaptive_enabled,
            "skew_factor": config.skew_factor,
            "vectorized_enabled": config.vectorized_enabled,
            "optimize_join_order": config.optimize_join_order,
            "use_extvp": config.use_extvp,
            "work_scale": config.work_scale,
            "engine": config.engine,
        }

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        cost_model: Optional[SparkCostModel] = None,
        config: Optional[SessionConfig] = None,
        **knobs: object,
    ) -> "S2RDFSession":
        """Build the data layout for ``graph`` and return a ready session.

        Accepts either a prebuilt :class:`SessionConfig` or any flat session
        knobs (``num_partitions=8, engine="sqlite", ...``) — the factory
        surface stays flat on purpose; the deprecation of flat names applies
        only to ``SessionConfig(knob=...)`` construction.
        """
        if config is not None and knobs:
            raise TypeError("pass either config= or flat knobs, not both")
        if config is None:
            config = SessionConfig.from_flat(**knobs)
        layout = ExtVPLayout(
            selectivity_threshold=config.selectivity_threshold if config.use_extvp else 0.0,
            include_oo=config.include_oo,
        )
        layout.build(graph)
        return cls(layout, config=config, cost_model=cost_model)

    @classmethod
    def from_ntriples(cls, document: Union[str, Iterable[str]], **kwargs) -> "S2RDFSession":
        """Parse an N-Triples document and build a session for it."""
        return cls.from_graph(parse_ntriples(document), **kwargs)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save_dataset(
        self,
        path: str,
        num_buckets: Optional[int] = None,
        overwrite: bool = False,
    ) -> DatasetWriteReport:
        """Persist the session's layout to a columnar dataset directory.

        Every catalog table is written as hash-bucketed, dictionary + RLE
        encoded column segments with zone maps; the manifest carries all
        statistics (including the statistics-only entries for empty ExtVP
        tables), so :meth:`open_dataset` restores a fully query-ready session
        without touching the original graph.  ``num_buckets`` defaults to the
        session's ``num_partitions`` so stored buckets line up with the
        runtime's shuffle partitioning.
        """
        buckets = num_buckets if num_buckets is not None else max(self.config.num_partitions, 1)
        with self._store_lock.write_locked():
            with self.tracer.span("store.save", category="store", path=path) as span:
                report = DatasetWriter(num_buckets=buckets).write(
                    path, self.layout, overwrite=overwrite
                )
                span.set(tables=report.table_count, bytes=report.total_bytes)
            self.dataset_path = path
            self._journal_epoch = 0  # A fresh manifest starts at epoch 0.
            if self.journal is not None:
                # Migrate to the dataset's persistent journal, carrying over
                # any records this session already collected in memory (their
                # timestamps are preserved; pre-save records keep epoch=None).
                pending = self.journal.records() if not self.journal.persistent else []
                self.journal.close()
                self.journal = open_dataset_journal(path)
                for record in pending:
                    self.journal.append(record)
        self.metrics.inc("s2rdf_store_saves_total", help="Full dataset writes")
        self.metrics.inc(
            "s2rdf_store_bytes_written_total",
            report.total_bytes,
            help="Bytes written to the dataset store (saves + appends + compactions)",
        )
        self.metrics.observe("s2rdf_store_save_ms", report.write_seconds * 1000.0)
        return report

    @classmethod
    def open_dataset(
        cls,
        path: str,
        num_partitions: Optional[int] = None,
        cost_model: Optional[SparkCostModel] = None,
        config: Optional[SessionConfig] = None,
        **knobs: object,
    ) -> "S2RDFSession":
        """Cold-start a session from a dataset written by :meth:`save_dataset`.

        No N-Triples parsing and no ExtVP rebuilding happens: statistics come
        from the manifest and table rows stay on disk until a query scans
        them (with projection + equality-predicate pushdown and zone-map
        segment pruning).  ``num_partitions`` defaults to the stored bucket
        count, which lets shuffle joins consume scans partition-aligned.
        With ``tracing_enabled`` the cold open itself appears on the trace
        timeline as a ``store.open`` span.  Like :meth:`from_graph`, accepts
        either ``config=`` or flat knobs; ``execution_mode="process"`` starts
        the dataset's partition worker pool eagerly, before any query thread
        exists (the fork-safe moment to spawn workers).
        """
        if config is not None and knobs:
            raise TypeError("pass either config= or flat knobs, not both")
        tracing = bool(
            config.tracing_enabled if config is not None else knobs.get("tracing_enabled", False)
        )
        tracer = Tracer(enabled=True) if tracing else NULL_TRACER
        with tracer.span("store.open", category="store", path=path) as span:
            layout, load_report, _dataset = _open_stored_dataset(path, tracer=tracer)
            span.set(
                tables=load_report.table_count,
                dictionary_terms=load_report.dictionary_terms,
            )
        if config is None:
            # The stored layout dictates what was materialised; the partition
            # default follows the stored bucket count so shuffle joins consume
            # scans partition-aligned.
            knobs["selectivity_threshold"] = layout.selectivity_threshold
            knobs["include_oo"] = layout.include_oo
            knobs["num_partitions"] = (
                num_partitions if num_partitions is not None else load_report.num_buckets
            )
            config = SessionConfig.from_flat(**knobs)
        elif num_partitions is not None:
            config.execution.num_partitions = num_partitions
        session = cls(layout, config=config, cost_model=cost_model, tracer=tracer)
        session.load_report = load_report
        session.dataset_path = path
        session._journal_epoch = load_report.append_epoch
        if session.journal is not None:
            session.journal = open_dataset_journal(path)
        session.metrics.inc(
            "s2rdf_store_cold_opens_total", help="Dataset cold opens performed"
        )
        session.metrics.observe(
            "s2rdf_store_open_ms",
            load_report.load_seconds * 1000.0,
            help="Cold-open latency",
        )
        if config.execution_mode == "process":
            pool = session._process_pool()
            if pool is not None:
                pool.start()
        return session

    # ------------------------------------------------------------------ #
    # Incremental updates
    # ------------------------------------------------------------------ #
    def append_triples(self, triples: Iterable[Triple]) -> DatasetAppendReport:
        """Append new triples to the session's persisted dataset.

        The triples are written as *delta segments* — hash-bucketed,
        RLE-encoded column pages with their own zone maps — without rewriting
        any existing segment or renumbering a single dictionary id.  VP
        tables, the base triples table and every affected ExtVP correlation
        (statistics *and* materialised rows, maintained incrementally for
        pairs involving the appended predicates only) are extended, and the
        session's catalog is refreshed in place so the very next query sees
        the merged base + delta data.  Triples already present in the dataset
        are skipped (the dataset models a triple *set*).

        Requires a session that was persisted: either opened with
        :meth:`open_dataset` or saved with :meth:`save_dataset`.
        """
        with self._store_lock.write_locked():
            with self.tracer.span("store.append", category="store") as span:
                report = DatasetAppender(self._require_dataset_path()).append(triples)
                span.set(
                    triples=report.triples_appended,
                    delta_segments=report.delta_segments,
                    bytes=report.bytes_written,
                )
                if report.triples_appended:
                    self._refresh_from_store()
        self.metrics.inc("s2rdf_store_appends_total", help="Delta appends performed")
        self.metrics.inc("s2rdf_store_bytes_written_total", report.bytes_written)
        self.metrics.observe("s2rdf_store_append_ms", report.append_seconds * 1000.0)
        if report.triples_appended:
            # Write amplification of the append path: bytes written to the
            # store per logical triple appended.
            self.metrics.observe(
                "s2rdf_append_bytes_per_triple",
                report.bytes_written / report.triples_appended,
                help="Append write amplification (bytes written per triple)",
            )
        return report

    def compact(self, compaction_threshold: Optional[int] = None) -> CompactionReport:
        """Merge accumulated delta segments back into full base segments.

        Tables with at least ``compaction_threshold`` delta segments
        (defaulting to the session's ``compaction_threshold`` knob) are
        rewritten bucket by bucket with tightened zone maps; query results
        are unchanged, but scans touch fewer segments afterwards.
        """
        threshold = (
            compaction_threshold
            if compaction_threshold is not None
            else self.config.compaction_threshold
        )
        with self._store_lock.write_locked():
            with self.tracer.span("store.compact", category="store") as span:
                report = DatasetCompactor(compaction_threshold=threshold).compact(
                    self._require_dataset_path()
                )
                span.set(
                    tables=report.tables_compacted,
                    delta_rows=report.delta_rows_merged,
                    bytes=report.bytes_written,
                )
                if report.tables_compacted:
                    self._refresh_from_store()
        self.metrics.inc("s2rdf_store_compactions_total", help="Compaction runs")
        self.metrics.inc("s2rdf_store_bytes_written_total", report.bytes_written)
        self.metrics.observe("s2rdf_store_compact_ms", report.compact_seconds * 1000.0)
        if report.delta_rows_merged:
            # Write amplification of compaction: bytes rewritten per delta
            # row folded back into a base segment.
            self.metrics.observe(
                "s2rdf_compact_bytes_per_row",
                report.bytes_written / report.delta_rows_merged,
                help="Compaction write amplification (bytes written per merged delta row)",
            )
        return report

    def _require_dataset_path(self) -> str:
        if self.dataset_path is None:
            raise RuntimeError(
                "session has no persisted dataset; call save_dataset() or open_dataset() first"
            )
        return self.dataset_path

    def _refresh_from_store(self) -> None:
        """Re-register every stored table from the freshly rewritten manifest."""
        assert self.dataset_path is not None
        with self.tracer.span("store.refresh", category="store"):
            dataset = _refresh_stored_dataset(self.layout, self.dataset_path)
        # The SQLite engine caches loaded tables per connection; a store
        # mutation invalidates them wholesale — on every thread's instance
        # (safe: refresh runs under the write lock, so no query is in flight).
        with self._runtime_lock:
            sql_executors = list(self._all_sql_executors)
        for sql_executor in sql_executors:
            sql_executor.invalidate()
        # The journal epoch advances only here — after the mutation's atomic
        # manifest swap — so a record written mid-append (before the swap)
        # still carries the pre-append epoch it actually executed against.
        self._journal_epoch = dataset.manifest.append_epoch

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #
    def parse(self, query_text: str) -> Query:
        return parse_query(query_text)

    def compile(self, query: Union[str, Query]) -> CompiledQuery:
        parsed = self.parse(query) if isinstance(query, str) else query
        return self.compiler.compile(parsed)

    def explain(self, query: Union[str, Query]) -> str:
        """Return the generated SQL for a query without executing it."""
        return self.compile(query).sql()

    def query(self, query: Union[str, Query]) -> QueryResult:
        """Parse, compile and execute a SPARQL query."""
        result, _, _ = self._run(query)
        return result

    def serve(self, serving: Optional["ServingConfig"] = None) -> "QueryScheduler":
        """A :class:`~repro.serve.scheduler.QueryScheduler` over this session.

        The scheduler adds submit/await semantics, admission control and
        cross-query sharing; its knobs come from ``config.serving`` unless a
        :class:`~repro.core.config.ServingConfig` is passed explicitly.
        """
        from repro.serve.scheduler import QueryScheduler

        return QueryScheduler(self, serving=serving)

    def explain_analyze(self, query: Union[str, Query]) -> ExplainAnalyzeResult:
        """Execute ``query`` and render its physical plan with observations.

        Each operator is annotated with estimated vs. observed rows (the
        estimates are captured *before* execution, so stale statistics show
        up as mis-estimates), the statically chosen vs. actually executed
        join strategy (with the AQE revision reason when they differ),
        elapsed wall-clock time, and exchange volume.  The returned object
        carries both the rendered report (``str(...)``) and the full
        :class:`~repro.core.results.QueryResult`.
        """
        result, compiled, estimates = self._run(query, capture_estimates=True)
        if self.config.engine == "sqlite":
            # The SQLite engine runs the plan as one statement: observations
            # exist only at the root, and there is no physical join planning.
            node_stats = self.sql_executor.last_node_stats
            exchange_stats: Dict[int, object] = {}
            physical = None
            replan_events = ()
        else:
            node_stats = self.executor.last_node_stats
            exchange_stats = self.executor.last_exchange_stats
            physical = self.executor.last_physical_plan
            replan_events = (
                self.executor.adaptive.replan_events if self.executor.adaptive is not None else ()
            )
        tree = render_explain_analyze(
            compiled.plan,
            estimates or {},
            node_stats,
            exchange_stats,
            physical,
            replan_events,
        )
        phases = ", ".join(f"{name}={ms:.2f} ms" for name, ms in result.phase_ms.items())
        lines = [
            "== Physical Plan (analyzed) ==",
            tree,
            "",
            f"Engine: {result.engine}",
            f"Phases: {phases}",
            f"Wall clock: {result.wall_clock_ms:.2f} ms; "
            f"simulated cluster runtime: {result.simulated_runtime_ms:.2f} ms",
        ]
        if result.replanned_joins:
            lines.append("AQE replans:")
            lines.extend(f"  - {entry}" for entry in result.replanned_joins)
        return ExplainAnalyzeResult(result=result, text="\n".join(lines))

    def _run(
        self, query: Union[str, Query], capture_estimates: bool = False
    ) -> Tuple[QueryResult, CompiledQuery, Optional[Dict[int, int]]]:
        """The traced query pipeline: parse → compile → plan → execute → render.

        The whole pipeline holds the store lock's *read* side: concurrent
        queries proceed together, but an ``append_triples``/``compact`` on
        another thread waits for in-flight queries and queries wait for it —
        so every query (and its journal record) sees exactly one manifest
        epoch.
        """
        with self._store_lock.read_locked():
            return self._run_locked(query, capture_estimates)

    def _run_locked(
        self, query: Union[str, Query], capture_estimates: bool = False
    ) -> Tuple[QueryResult, CompiledQuery, Optional[Dict[int, int]]]:
        total_start = time.perf_counter()
        epoch = self._journal_epoch
        phase_ms: Dict[str, float] = {}
        with self.tracer.span("query", category="query") as root:
            phase_start = time.perf_counter()
            with self.tracer.span("parse", category="query"):
                parsed = self.parse(query) if isinstance(query, str) else query
            phase_ms["parse"] = (time.perf_counter() - phase_start) * 1000.0

            phase_start = time.perf_counter()
            with self.tracer.span("compile", category="query"):
                compiled = self.compiler.compile(parsed)
            phase_ms["compile"] = (time.perf_counter() - phase_start) * 1000.0

            # Estimates must be captured before execution: adaptive runs feed
            # observed cardinalities back into the catalog's statistics cache.
            estimates = (
                collect_estimates(
                    compiled.plan,
                    self.layout.catalog,
                    use_observed=self.executor.adaptive_enabled,
                )
                if capture_estimates
                else None
            )
            # Journal records carry the root estimate (for the q-error field);
            # like the full estimate capture, it must precede execution.
            if self.journal is not None:
                root_estimate = (
                    estimates[id(compiled.plan)]
                    if estimates is not None
                    else estimate_rows(
                        compiled.plan,
                        self.layout.catalog,
                        use_observed=self.executor.adaptive_enabled,
                    )
                )
            else:
                root_estimate = None

            use_sqlite = self.config.engine == "sqlite"
            metrics = ExecutionMetrics()
            phase_start = time.perf_counter()
            with self.tracer.span("execute", category="query", engine=self.config.engine):
                if use_sqlite:
                    relation = self.sql_executor.execute(compiled.plan, metrics)
                else:
                    relation = self.executor.execute(compiled.plan, metrics)
            execute_ms = (time.perf_counter() - phase_start) * 1000.0
            # The physical-planning step runs inside executor.execute(); split
            # it out so the phase dict matches the span structure.  The SQLite
            # engine has no separate physical-planning step.
            plan_ms = 0.0 if use_sqlite else min(self.executor.last_plan_ms, execute_ms)
            phase_ms["plan"] = plan_ms
            phase_ms["execute"] = execute_ms - plan_ms

            with self.tracer.span("render", category="query"):
                scaled_metrics = (
                    metrics.scaled(self.config.work_scale)
                    if self.config.work_scale != 1.0
                    else metrics
                )
                simulated = self.cost_model.runtime_ms(scaled_metrics)
                physical = None if use_sqlite else self.executor.last_physical_plan
                result = QueryResult(
                    relation=relation,
                    sql=compiled.sql(),
                    metrics=metrics,
                    simulated_runtime_ms=simulated,
                    wall_clock_ms=(time.perf_counter() - total_start) * 1000.0,
                    statically_empty=compiled.statically_empty,
                    phase_ms=phase_ms,
                    selected_tables=compiled.selected_tables,
                    join_strategies=physical.describe() if physical is not None else [],
                    executed_join_strategies=(
                        physical.describe(executed=True) if physical is not None else []
                    ),
                    replanned_joins=(
                        [
                            f"{initial.describe()} -> {executed.describe()}"
                            for initial, executed in physical.replans()
                        ]
                        if physical is not None
                        else []
                    ),
                    engine=self.config.engine,
                    epoch=epoch,
                )
            root.set(rows=len(relation))
        self._record_query_metrics(result)
        self._journal_query(parsed, result, root_estimate)
        return result, compiled, estimates

    def _journal_query(
        self, parsed: Query, result: QueryResult, root_estimate: Optional[int]
    ) -> None:
        """Append one workload-journal record for an executed query.

        The fingerprint is left empty and the parsed algebra handed along, so
        the journal renders the template and fingerprint itself (see
        :meth:`~repro.obs.journal.QueryJournal.append`).
        """
        journal = self.journal
        if journal is None:
            return
        metrics = result.metrics
        estimated = (
            None if root_estimate is None or root_estimate == UNKNOWN_ROWS else root_estimate
        )
        rows = len(result.relation)
        journal.append(
            JournalRecord(
                fingerprint="",
                template="",
                # The epoch the query actually read (captured at pipeline
                # start under the read lock), not whatever the store advanced
                # to by the time this record is written.
                epoch=result.epoch,
                queue_ms=_QUEUE_WAIT_MS.get(),
                rows=rows,
                wall_ms=result.wall_clock_ms,
                phase_ms=dict(result.phase_ms),
                scanned_tables=dict(metrics.scanned_tables),
                estimated_rows=estimated,
                estimate_q_error=q_error(estimated, rows),
                aqe_replans=metrics.aqe_replans,
                aqe_skew_splits=metrics.aqe_skew_splits,
                broadcast_guard_trips=metrics.broadcast_guard_trips,
                segments_scanned=metrics.store_segments_scanned,
                segments_pruned=metrics.store_segments_pruned,
                shuffled_bytes=metrics.shuffled_bytes,
                broadcast_bytes=metrics.broadcast_bytes,
                statically_empty=result.statically_empty,
                engine=result.engine,
            ),
            query=parsed,
        )

    def _record_query_metrics(self, result: QueryResult) -> None:
        """Fold one query's execution metrics into the session registry."""
        metrics = result.metrics
        registry = self.metrics
        registry.inc("s2rdf_queries_total", help="Queries executed by this session")
        registry.inc("s2rdf_input_tuples_total", metrics.input_tuples)
        registry.inc("s2rdf_output_tuples_total", metrics.output_tuples)
        registry.inc("s2rdf_shuffled_bytes_total", metrics.shuffled_bytes)
        registry.inc("s2rdf_broadcast_bytes_total", metrics.broadcast_bytes)
        registry.inc("s2rdf_aqe_replans_total", metrics.aqe_replans)
        registry.inc("s2rdf_aqe_skew_splits_total", metrics.aqe_skew_splits)
        registry.inc(
            "s2rdf_broadcast_guard_trips_total",
            metrics.broadcast_guard_trips,
            help="Broadcasts demoted to shuffles by the memory guard",
        )
        registry.observe("s2rdf_query_wall_ms", result.wall_clock_ms)
        segments = metrics.store_segments_scanned + metrics.store_segments_pruned
        if segments:
            registry.observe(
                "s2rdf_segment_prune_ratio",
                metrics.store_segments_pruned / segments,
                help="Fraction of store segments skipped by pruning, per query",
            )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release every runtime resource this session acquired.

        Shuts down each thread's parallel runtime and SQLite engine, the
        process worker pool (when process mode started one) and the journal's
        file handle.  Idempotent; the context-manager form calls it on exit.
        """
        with self._runtime_lock:
            executors = list(self._all_executors)
            sql_executors = list(self._all_sql_executors)
            pool = self._worker_pool
            self._worker_pool = None
        for executor in executors:
            executor.close()
        for sql_executor in sql_executors:
            sql_executor.close()
        if pool is not None:
            pool.close()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "S2RDFSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def storage_summary(self) -> dict:
        """Tuple counts and simulated HDFS size of the layout (Table 2 data)."""
        if self.layout.report is None:
            raise RuntimeError(
                "layout has no build report; call ExtVPLayout.build() before storage_summary()"
            )
        summary = self.layout.size_summary()
        summary["table_counts"] = self.layout.table_counts()
        summary["load_seconds"] = self.layout.report.build_seconds
        return summary
