"""Reproduction of *S2RDF: RDF Querying with SPARQL on Spark* (VLDB 2016).

The package is organised as follows:

* :mod:`repro.rdf` — RDF data model (terms, triples, graphs, N-Triples I/O).
* :mod:`repro.sparql` — SPARQL parser, algebra and shape analysis.
* :mod:`repro.engine` — the relational substrate standing in for Spark SQL.
* :mod:`repro.mappings` — relational RDF layouts: triples table, VP,
  property table and the paper's ExtVP.
* :mod:`repro.core` — the S2RDF query processor (table selection, SPARQL to
  SQL compilation, join-order optimisation, session API).
* :mod:`repro.baselines` — re-implementations of the systems the paper
  compares against (SHARD, PigSPARQL, Sempala, H2RDF+, Virtuoso).
* :mod:`repro.watdiv` — a WatDiv-like data generator and the paper's query
  workloads (Basic Testing, Selectivity Testing, Incremental Linear Testing).
* :mod:`repro.bench` — the experiment harness that regenerates every table
  and figure of the paper's evaluation section.
"""

from repro.rdf import Graph, IRI, Literal, Triple, parse_ntriples
from repro.sparql import parse_query
from repro.core import (
    ExecutionConfig,
    ObservabilityConfig,
    QueryResult,
    S2RDFSession,
    ServingConfig,
    SessionConfig,
    StoreConfig,
)
from repro.api import connect, create

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "IRI",
    "Literal",
    "Triple",
    "parse_ntriples",
    "parse_query",
    "QueryResult",
    "S2RDFSession",
    "SessionConfig",
    "ExecutionConfig",
    "StoreConfig",
    "ObservabilityConfig",
    "ServingConfig",
    "connect",
    "create",
    "__version__",
]
