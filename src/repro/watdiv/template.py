"""Query templates with ``%vN%`` placeholder instantiation.

WatDiv templates contain placeholders such as ``%v2%`` together with a
``#mapping v2 wsdbm:Retailer uniform`` directive.  ``instantiate_template``
replaces each placeholder with a uniformly sampled instance IRI of the mapped
entity class, exactly like the WatDiv query generator does.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.rdf.namespaces import NamespaceManager
from repro.watdiv.generator import WatDivDataset
from repro.watdiv.schema import EntityClass

_PLACEHOLDER_RE = re.compile(r"%(v\d+)%")

#: Prefix declarations prepended to every instantiated query so they are
#: self-contained SPARQL documents.
PREFIX_HEADER = "\n".join(
    f"PREFIX {prefix}: <{base}>"
    for prefix, base in sorted(NamespaceManager().namespaces().items())
)


@dataclass(frozen=True)
class QueryTemplate:
    """One WatDiv query template."""

    name: str
    category: str
    text: str
    #: placeholder variable -> entity class sampled uniformly.
    mappings: Dict[str, EntityClass] = field(default_factory=dict)
    description: str = ""

    @property
    def placeholders(self) -> List[str]:
        return sorted(set(_PLACEHOLDER_RE.findall(self.text)))

    def is_parameterized(self) -> bool:
        return bool(self.placeholders)


def instantiate_template(
    template: QueryTemplate,
    dataset: WatDivDataset,
    rng: Optional[np.random.Generator] = None,
    include_prefixes: bool = True,
) -> str:
    """Instantiate a template against a generated dataset.

    Raises :class:`KeyError` when the template references a placeholder that
    has no ``#mapping`` entry.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    text = template.text
    for placeholder in template.placeholders:
        if placeholder not in template.mappings:
            raise KeyError(f"template {template.name} has no mapping for %{placeholder}%")
        entity_class = template.mappings[placeholder]
        entity = dataset.sample_entity(entity_class, rng)
        text = text.replace(f"%{placeholder}%", entity.n3())
    if include_prefixes:
        return PREFIX_HEADER + "\n" + text
    return text


def instantiate_many(
    template: QueryTemplate,
    dataset: WatDivDataset,
    count: int,
    seed: int = 0,
    include_prefixes: bool = True,
) -> List[str]:
    """Instantiate a template ``count`` times with a deterministic seed."""
    rng = np.random.default_rng(seed)
    return [instantiate_template(template, dataset, rng, include_prefixes) for _ in range(count)]
