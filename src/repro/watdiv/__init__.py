"""WatDiv-like benchmark substrate.

The Waterloo SPARQL Diversity Test Suite (WatDiv) provides a scalable data
generator and query templates covering all BGP shapes.  The original generator
is a C++ tool; this package re-implements a generator with the same entity
classes and a comparable predicate mix, plus the three workloads the paper
evaluates:

* Basic Testing (L1–L5, S1–S7, F1–F5, C1–C3) — Appendix A.
* Selectivity Testing (ST-1-1 … ST-8-2) — Appendix B, designed by the authors.
* Incremental Linear Testing (IL-1/2/3, diameters 5–10) — Appendix C.
"""

from repro.watdiv.schema import EntityClass, PredicateSpec, WATDIV_SCHEMA, entity_iri
from repro.watdiv.generator import WatDivDataset, WatDivGenerator, generate_dataset
from repro.watdiv.template import QueryTemplate, instantiate_template
from repro.watdiv.basic_queries import BASIC_TEMPLATES, basic_templates_by_category
from repro.watdiv.selectivity_queries import SELECTIVITY_TEMPLATES
from repro.watdiv.incremental_queries import INCREMENTAL_TEMPLATES, incremental_templates_by_type

__all__ = [
    "EntityClass",
    "PredicateSpec",
    "WATDIV_SCHEMA",
    "entity_iri",
    "WatDivDataset",
    "WatDivGenerator",
    "generate_dataset",
    "QueryTemplate",
    "instantiate_template",
    "BASIC_TEMPLATES",
    "basic_templates_by_category",
    "SELECTIVITY_TEMPLATES",
    "INCREMENTAL_TEMPLATES",
    "incremental_templates_by_type",
]
