"""WatDiv Basic Testing use case (Appendix A of the paper).

Twenty query templates grouped by shape: linear (L1–L5), star (S1–S7),
snowflake (F1–F5) and complex (C1–C3).  The template texts follow the paper's
appendix verbatim (modulo whitespace).
"""

from __future__ import annotations

from typing import Dict, List

from repro.watdiv.schema import EntityClass
from repro.watdiv.template import QueryTemplate


BASIC_TEMPLATES: List[QueryTemplate] = [
    # ------------------------------ linear ------------------------------ #
    QueryTemplate(
        name="L1",
        category="L",
        mappings={"v1": EntityClass.WEBSITE},
        text="""SELECT ?v0 ?v2 ?v3 WHERE {
  ?v0 wsdbm:subscribes %v1% .
  ?v2 sorg:caption ?v3 .
  ?v0 wsdbm:likes ?v2 .
}""",
    ),
    QueryTemplate(
        name="L2",
        category="L",
        mappings={"v0": EntityClass.CITY},
        text="""SELECT ?v1 ?v2 WHERE {
  %v0% gn:parentCountry ?v1 .
  ?v2 wsdbm:likes wsdbm:Product0 .
  ?v2 sorg:nationality ?v1 .
}""",
    ),
    QueryTemplate(
        name="L3",
        category="L",
        mappings={"v2": EntityClass.WEBSITE},
        text="""SELECT ?v0 ?v1 WHERE {
  ?v0 wsdbm:likes ?v1 .
  ?v0 wsdbm:subscribes %v2% .
}""",
    ),
    QueryTemplate(
        name="L4",
        category="L",
        mappings={"v1": EntityClass.TOPIC},
        text="""SELECT ?v0 ?v2 WHERE {
  ?v0 og:tag %v1% .
  ?v0 sorg:caption ?v2 .
}""",
    ),
    QueryTemplate(
        name="L5",
        category="L",
        mappings={"v2": EntityClass.CITY},
        text="""SELECT ?v0 ?v1 ?v3 WHERE {
  ?v0 sorg:jobTitle ?v1 .
  %v2% gn:parentCountry ?v3 .
  ?v0 sorg:nationality ?v3 .
}""",
    ),
    # ------------------------------- star ------------------------------- #
    QueryTemplate(
        name="S1",
        category="S",
        mappings={"v2": EntityClass.RETAILER},
        text="""SELECT ?v0 ?v1 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 ?v9 WHERE {
  ?v0 gr:includes ?v1 .
  %v2% gr:offers ?v0 .
  ?v0 gr:price ?v3 .
  ?v0 gr:serialNumber ?v4 .
  ?v0 gr:validFrom ?v5 .
  ?v0 gr:validThrough ?v6 .
  ?v0 sorg:eligibleQuantity ?v7 .
  ?v0 sorg:eligibleRegion ?v8 .
  ?v0 sorg:priceValidUntil ?v9 .
}""",
    ),
    QueryTemplate(
        name="S2",
        category="S",
        mappings={"v2": EntityClass.COUNTRY},
        text="""SELECT ?v0 ?v1 ?v3 WHERE {
  ?v0 dc:Location ?v1 .
  ?v0 sorg:nationality %v2% .
  ?v0 wsdbm:gender ?v3 .
  ?v0 rdf:type wsdbm:Role2 .
}""",
    ),
    QueryTemplate(
        name="S3",
        category="S",
        mappings={"v1": EntityClass.PRODUCT_CATEGORY},
        text="""SELECT ?v0 ?v2 ?v3 ?v4 WHERE {
  ?v0 rdf:type %v1% .
  ?v0 sorg:caption ?v2 .
  ?v0 wsdbm:hasGenre ?v3 .
  ?v0 sorg:publisher ?v4 .
}""",
    ),
    QueryTemplate(
        name="S4",
        category="S",
        mappings={"v1": EntityClass.AGE_GROUP},
        text="""SELECT ?v0 ?v2 ?v3 WHERE {
  ?v0 foaf:age %v1% .
  ?v0 foaf:familyName ?v2 .
  ?v3 mo:artist ?v0 .
  ?v0 sorg:nationality wsdbm:Country1 .
}""",
    ),
    QueryTemplate(
        name="S5",
        category="S",
        mappings={"v1": EntityClass.PRODUCT_CATEGORY},
        text="""SELECT ?v0 ?v2 ?v3 WHERE {
  ?v0 rdf:type %v1% .
  ?v0 sorg:description ?v2 .
  ?v0 sorg:keywords ?v3 .
  ?v0 sorg:language wsdbm:Language0 .
}""",
    ),
    QueryTemplate(
        name="S6",
        category="S",
        mappings={"v3": EntityClass.SUB_GENRE},
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 mo:conductor ?v1 .
  ?v0 rdf:type ?v2 .
  ?v0 wsdbm:hasGenre %v3% .
}""",
    ),
    QueryTemplate(
        name="S7",
        category="S",
        mappings={"v3": EntityClass.USER},
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 rdf:type ?v1 .
  ?v0 sorg:text ?v2 .
  %v3% wsdbm:likes ?v0 .
}""",
    ),
    # ----------------------------- snowflake ----------------------------- #
    QueryTemplate(
        name="F1",
        category="F",
        mappings={"v1": EntityClass.TOPIC},
        text="""SELECT ?v0 ?v2 ?v3 ?v4 ?v5 WHERE {
  ?v0 og:tag %v1% .
  ?v0 rdf:type ?v2 .
  ?v3 sorg:trailer ?v4 .
  ?v3 sorg:keywords ?v5 .
  ?v3 wsdbm:hasGenre ?v0 .
  ?v3 rdf:type wsdbm:ProductCategory2 .
}""",
    ),
    QueryTemplate(
        name="F2",
        category="F",
        mappings={"v8": EntityClass.SUB_GENRE},
        text="""SELECT ?v0 ?v1 ?v2 ?v4 ?v5 ?v6 ?v7 WHERE {
  ?v0 foaf:homepage ?v1 .
  ?v0 og:title ?v2 .
  ?v0 rdf:type ?v3 .
  ?v0 sorg:caption ?v4 .
  ?v0 sorg:description ?v5 .
  ?v1 sorg:url ?v6 .
  ?v1 wsdbm:hits ?v7 .
  ?v0 wsdbm:hasGenre %v8% .
}""",
    ),
    QueryTemplate(
        name="F3",
        category="F",
        mappings={"v3": EntityClass.SUB_GENRE},
        text="""SELECT ?v0 ?v1 ?v2 ?v4 ?v5 ?v6 WHERE {
  ?v0 sorg:contentRating ?v1 .
  ?v0 sorg:contentSize ?v2 .
  ?v0 wsdbm:hasGenre %v3% .
  ?v4 wsdbm:makesPurchase ?v5 .
  ?v5 wsdbm:purchaseDate ?v6 .
  ?v5 wsdbm:purchaseFor ?v0 .
}""",
    ),
    QueryTemplate(
        name="F4",
        category="F",
        mappings={"v3": EntityClass.TOPIC},
        text="""SELECT ?v0 ?v1 ?v2 ?v4 ?v5 ?v6 ?v7 ?v8 WHERE {
  ?v0 foaf:homepage ?v1 .
  ?v2 gr:includes ?v0 .
  ?v0 og:tag %v3% .
  ?v0 sorg:description ?v4 .
  ?v0 sorg:contentSize ?v8 .
  ?v1 sorg:url ?v5 .
  ?v1 wsdbm:hits ?v6 .
  ?v1 sorg:language wsdbm:Language0 .
  ?v7 wsdbm:likes ?v0 .
}""",
    ),
    QueryTemplate(
        name="F5",
        category="F",
        mappings={"v2": EntityClass.RETAILER},
        text="""SELECT ?v0 ?v1 ?v3 ?v4 ?v5 ?v6 WHERE {
  ?v0 gr:includes ?v1 .
  %v2% gr:offers ?v0 .
  ?v0 gr:price ?v3 .
  ?v0 gr:validThrough ?v4 .
  ?v1 og:title ?v5 .
  ?v1 rdf:type ?v6 .
}""",
    ),
    # ------------------------------ complex ------------------------------ #
    QueryTemplate(
        name="C1",
        category="C",
        text="""SELECT ?v0 ?v4 ?v6 ?v7 WHERE {
  ?v0 sorg:caption ?v1 .
  ?v0 sorg:text ?v2 .
  ?v0 sorg:contentRating ?v3 .
  ?v0 rev:hasReview ?v4 .
  ?v4 rev:title ?v5 .
  ?v4 rev:reviewer ?v6 .
  ?v7 sorg:actor ?v6 .
  ?v7 sorg:language ?v8 .
}""",
    ),
    QueryTemplate(
        name="C2",
        category="C",
        text="""SELECT ?v0 ?v3 ?v4 ?v8 WHERE {
  ?v0 sorg:legalName ?v1 .
  ?v0 gr:offers ?v2 .
  ?v2 sorg:eligibleRegion wsdbm:Country5 .
  ?v2 gr:includes ?v3 .
  ?v4 sorg:jobTitle ?v5 .
  ?v4 foaf:homepage ?v6 .
  ?v4 wsdbm:makesPurchase ?v7 .
  ?v7 wsdbm:purchaseFor ?v3 .
  ?v3 rev:hasReview ?v8 .
  ?v8 rev:totalVotes ?v9 .
}""",
    ),
    QueryTemplate(
        name="C3",
        category="C",
        text="""SELECT ?v0 WHERE {
  ?v0 wsdbm:likes ?v1 .
  ?v0 wsdbm:friendOf ?v2 .
  ?v0 dc:Location ?v3 .
  ?v0 foaf:age ?v4 .
  ?v0 wsdbm:gender ?v5 .
  ?v0 foaf:givenName ?v6 .
}""",
    ),
]


def basic_templates_by_category() -> Dict[str, List[QueryTemplate]]:
    """Group the Basic Testing templates by shape category (L, S, F, C)."""
    grouped: Dict[str, List[QueryTemplate]] = {}
    for template in BASIC_TEMPLATES:
        grouped.setdefault(template.category, []).append(template)
    return grouped


def basic_template(name: str) -> QueryTemplate:
    """Look up a Basic Testing template by name (e.g. ``"S3"``)."""
    for template in BASIC_TEMPLATES:
        if template.name == name:
            return template
    raise KeyError(f"unknown Basic Testing template {name!r}")
