"""WatDiv-like data generator.

``generate_dataset(scale_factor, seed)`` builds a reproducible RDF graph whose
entity classes and predicate mix follow :mod:`repro.watdiv.schema`.  One scale
factor unit yields roughly 2.5 k triples, so the paper's SF10/SF100/… datasets
map to laptop-friendly sizes while preserving the relative table sizes and
selectivities that drive the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Term
from repro.rdf.triple import Triple
from repro.watdiv.schema import (
    ENTITY_COUNTS,
    HAS_REVIEW,
    OFFERS,
    WATDIV_SCHEMA,
    EntityClass,
    PredicateSpec,
    entity_iri,
)


@dataclass
class WatDivDataset:
    """A generated graph plus the entity inventory needed to instantiate queries."""

    graph: Graph
    scale_factor: float
    seed: int
    entity_counts: Dict[EntityClass, int] = field(default_factory=dict)

    def entities(self, entity_class: EntityClass) -> List[IRI]:
        """All instance IRIs of one entity class."""
        count = self.entity_counts.get(entity_class, 0)
        return [entity_iri(entity_class, index) for index in range(count)]

    def sample_entity(self, entity_class: EntityClass, rng: np.random.Generator) -> IRI:
        count = self.entity_counts.get(entity_class, 0)
        if count == 0:
            raise ValueError(f"no instances of {entity_class} in this dataset")
        return entity_iri(entity_class, int(rng.integers(0, count)))

    def __len__(self) -> int:
        return len(self.graph)


class WatDivGenerator:
    """Scalable generator for the WatDiv-like universe."""

    def __init__(self, scale_factor: float = 1.0, seed: int = 42) -> None:
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.scale_factor = scale_factor
        self.seed = seed

    # ------------------------------------------------------------------ #
    def entity_counts(self) -> Dict[EntityClass, int]:
        """Number of instances of every entity class at this scale factor."""
        counts: Dict[EntityClass, int] = {}
        for entity_class, (per_unit, minimum) in ENTITY_COUNTS.items():
            scaled = int(round(per_unit * self.scale_factor))
            counts[entity_class] = max(minimum, scaled)
        return counts

    def generate(self) -> WatDivDataset:
        rng = np.random.default_rng(self.seed)
        counts = self.entity_counts()
        graph = Graph(name=f"watdiv-sf{self.scale_factor:g}")

        for spec in WATDIV_SCHEMA:
            self._generate_predicate(graph, spec, counts, rng)

        # Structural one-to-one links that the plain predicate specs cannot
        # express: every offer belongs to exactly one retailer and every
        # review to exactly one product.
        self._generate_ownership(graph, OFFERS, EntityClass.RETAILER, EntityClass.OFFER, counts, rng)
        self._generate_ownership(graph, HAS_REVIEW, EntityClass.PRODUCT, EntityClass.REVIEW, counts, rng)

        return WatDivDataset(
            graph=graph,
            scale_factor=self.scale_factor,
            seed=self.seed,
            entity_counts=counts,
        )

    # ------------------------------------------------------------------ #
    def _generate_predicate(
        self,
        graph: Graph,
        spec: PredicateSpec,
        counts: Dict[EntityClass, int],
        rng: np.random.Generator,
    ) -> None:
        source_count = counts[spec.source]
        target_count = counts.get(spec.target, 0) if spec.target is not None else 0
        for index in range(source_count):
            subject = entity_iri(spec.source, index)
            if spec.probability is not None:
                if rng.random() >= spec.probability:
                    continue
                degree = 1
            else:
                degree = int(rng.poisson(spec.mean_degree))
                if degree == 0:
                    continue
            for _ in range(degree):
                object_ = self._make_object(spec, index, target_count, rng)
                if object_ is None:
                    continue
                graph.add(Triple(subject, spec.predicate, object_))

    def _make_object(
        self,
        spec: PredicateSpec,
        subject_index: int,
        target_count: int,
        rng: np.random.Generator,
    ) -> Optional[Term]:
        if spec.target is not None:
            if target_count == 0:
                return None
            target_index = int(rng.integers(0, target_count))
            if spec.target == spec.source and target_index == subject_index:
                target_index = (target_index + 1) % target_count
            return entity_iri(spec.target, target_index)
        return self._make_literal(spec, subject_index, rng)

    @staticmethod
    def _make_literal(spec: PredicateSpec, subject_index: int, rng: np.random.Generator) -> Literal:
        local = spec.predicate.local_name()
        if spec.literal_kind == "integer":
            return Literal(str(int(rng.integers(1, 10_000))), datatype="http://www.w3.org/2001/XMLSchema#integer")
        if spec.literal_kind == "date":
            year = 2000 + int(rng.integers(0, 22))
            month = 1 + int(rng.integers(0, 12))
            day = 1 + int(rng.integers(0, 28))
            return Literal(f"{year:04d}-{month:02d}-{day:02d}", datatype="http://www.w3.org/2001/XMLSchema#date")
        token = int(rng.integers(0, 1_000_000))
        return Literal(f"{local}_{subject_index}_{token}")

    @staticmethod
    def _generate_ownership(
        graph: Graph,
        predicate: IRI,
        owner_class: EntityClass,
        owned_class: EntityClass,
        counts: Dict[EntityClass, int],
        rng: np.random.Generator,
    ) -> None:
        owner_count = counts[owner_class]
        owned_count = counts[owned_class]
        if owner_count == 0:
            return
        for owned_index in range(owned_count):
            owner_index = int(rng.integers(0, owner_count))
            graph.add(
                Triple(
                    entity_iri(owner_class, owner_index),
                    predicate,
                    entity_iri(owned_class, owned_index),
                )
            )


def generate_dataset(scale_factor: float = 1.0, seed: int = 42) -> WatDivDataset:
    """Convenience wrapper around :class:`WatDivGenerator`."""
    return WatDivGenerator(scale_factor=scale_factor, seed=seed).generate()
