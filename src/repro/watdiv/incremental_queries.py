"""WatDiv Incremental Linear Testing workload (Appendix C of the paper).

Linear (path) queries of increasing diameter (5 to 10 triple patterns), in
three flavours: bound to a user (IL-1), bound to a retailer (IL-2) and
completely unbound (IL-3).  The paths are built by incrementally appending one
triple pattern to the previous query, following the appendix verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.watdiv.schema import EntityClass
from repro.watdiv.template import QueryTemplate

#: The predicate chain of the user-bound queries (IL-1-5 … IL-1-10).
_IL1_CHAIN = [
    "wsdbm:follows",
    "wsdbm:likes",
    "rev:hasReview",
    "rev:reviewer",
    "wsdbm:friendOf",
    "wsdbm:makesPurchase",
    "wsdbm:purchaseFor",
    "sorg:author",
    "dc:Location",
    "gn:parentCountry",
]

#: The predicate chain of the retailer-bound queries (IL-2-5 … IL-2-10).
_IL2_CHAIN = [
    "gr:offers",
    "gr:includes",
    "sorg:director",
    "wsdbm:friendOf",
    "wsdbm:friendOf",
    "wsdbm:likes",
    "sorg:editor",
    "wsdbm:makesPurchase",
    "wsdbm:purchaseFor",
    "sorg:caption",
]

#: The predicate chain of the unbound queries (IL-3-5 … IL-3-10).
_IL3_CHAIN = [
    "gr:offers",
    "gr:includes",
    "rev:hasReview",
    "rev:reviewer",
    "wsdbm:friendOf",
    "wsdbm:likes",
    "sorg:author",
    "wsdbm:follows",
    "foaf:homepage",
    "sorg:language",
]


def _build_chain_query(chain: List[str], length: int, bound_start: Optional[str]) -> str:
    """Build the SPARQL text for the first ``length`` predicates of a chain."""
    patterns: List[str] = []
    for position in range(length):
        subject = "?v0" if position == 0 else f"?v{position}"
        if position == 0 and bound_start is not None:
            subject = bound_start
        patterns.append(f"  {subject} {chain[position]} ?v{position + 1} .")
    if bound_start is not None:
        variables = " ".join(f"?v{i}" for i in range(1, length + 1))
    else:
        variables = " ".join(f"?v{i}" for i in range(0, length + 1))
    body = "\n".join(patterns)
    return f"SELECT {variables} WHERE {{\n{body}\n}}"


def _make_templates() -> List[QueryTemplate]:
    templates: List[QueryTemplate] = []
    for length in range(5, 11):
        templates.append(
            QueryTemplate(
                name=f"IL-1-{length}",
                category="IL-1",
                mappings={"v0": EntityClass.USER},
                description=f"user-bound linear query with diameter {length}",
                text=_build_chain_query(_IL1_CHAIN, length, "%v0%"),
            )
        )
    for length in range(5, 11):
        templates.append(
            QueryTemplate(
                name=f"IL-2-{length}",
                category="IL-2",
                mappings={"v0": EntityClass.RETAILER},
                description=f"retailer-bound linear query with diameter {length}",
                text=_build_chain_query(_IL2_CHAIN, length, "%v0%"),
            )
        )
    for length in range(5, 11):
        templates.append(
            QueryTemplate(
                name=f"IL-3-{length}",
                category="IL-3",
                description=f"unbound linear query with diameter {length}",
                text=_build_chain_query(_IL3_CHAIN, length, None),
            )
        )
    return templates


INCREMENTAL_TEMPLATES: List[QueryTemplate] = _make_templates()


def incremental_templates_by_type() -> Dict[str, List[QueryTemplate]]:
    grouped: Dict[str, List[QueryTemplate]] = {}
    for template in INCREMENTAL_TEMPLATES:
        grouped.setdefault(template.category, []).append(template)
    return grouped


def incremental_template(name: str) -> QueryTemplate:
    for template in INCREMENTAL_TEMPLATES:
        if template.name == name:
            return template
    raise KeyError(f"unknown Incremental Linear template {name!r}")
