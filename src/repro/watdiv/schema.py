"""WatDiv-like schema: entity classes and predicate specifications.

The schema mirrors the WatDiv e-commerce / social-network domain: users follow
and befriend each other, like and purchase products, write reviews; retailers
publish offers that include products; products carry descriptive attributes
and belong to categories, genres and topics.

Each :class:`PredicateSpec` describes how the generator attaches one predicate
to the instances of its source class: either with a probability (at most one
triple per subject) or with a mean out-degree (Poisson-distributed number of
triples per subject).  The values were chosen so the key selectivities the
paper's Selectivity Testing workload relies on roughly hold (e.g. ~90 % of
users have an e-mail, ~50 % an age, ~5 % a job title, friendOf and follows are
the two dominant predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.rdf.namespaces import WATDIV_NAMESPACES
from repro.rdf.terms import IRI


class EntityClass(str, Enum):
    """Entity classes of the WatDiv universe."""

    USER = "User"
    PRODUCT = "Product"
    REVIEW = "Review"
    OFFER = "Offer"
    RETAILER = "Retailer"
    PURCHASE = "Purchase"
    WEBSITE = "Website"
    CITY = "City"
    COUNTRY = "Country"
    TOPIC = "Topic"
    SUB_GENRE = "SubGenre"
    LANGUAGE = "Language"
    AGE_GROUP = "AgeGroup"
    PRODUCT_CATEGORY = "ProductCategory"
    ROLE = "Role"

    @property
    def iri_prefix(self) -> str:
        return WATDIV_NAMESPACES["wsdbm"] + self.value


def entity_iri(entity_class: EntityClass, index: int) -> IRI:
    """The IRI of the ``index``-th instance of ``entity_class`` (``wsdbm:User7``)."""
    return IRI(f"{entity_class.iri_prefix}{index}")


def _iri(prefix: str, local: str) -> IRI:
    return IRI(WATDIV_NAMESPACES[prefix] + local)


# Frequently used predicate IRIs (exported for tests and examples).
FOLLOWS = _iri("wsdbm", "follows")
FRIEND_OF = _iri("wsdbm", "friendOf")
LIKES = _iri("wsdbm", "likes")
SUBSCRIBES = _iri("wsdbm", "subscribes")
MAKES_PURCHASE = _iri("wsdbm", "makesPurchase")
PURCHASE_FOR = _iri("wsdbm", "purchaseFor")
PURCHASE_DATE = _iri("wsdbm", "purchaseDate")
GENDER = _iri("wsdbm", "gender")
HITS = _iri("wsdbm", "hits")
HAS_GENRE = _iri("wsdbm", "hasGenre")
HAS_REVIEW = _iri("rev", "hasReview")
REVIEWER = _iri("rev", "reviewer")
REVIEW_TITLE = _iri("rev", "title")
TOTAL_VOTES = _iri("rev", "totalVotes")
RDF_TYPE = _iri("rdf", "type")
DC_LOCATION = _iri("dc", "Location")
PARENT_COUNTRY = _iri("gn", "parentCountry")
OFFERS = _iri("gr", "offers")
INCLUDES = _iri("gr", "includes")
PRICE = _iri("gr", "price")
SERIAL_NUMBER = _iri("gr", "serialNumber")
VALID_FROM = _iri("gr", "validFrom")
VALID_THROUGH = _iri("gr", "validThrough")
EMAIL = _iri("sorg", "email")
AGE = _iri("foaf", "age")
JOB_TITLE = _iri("sorg", "jobTitle")
NATIONALITY = _iri("sorg", "nationality")
CAPTION = _iri("sorg", "caption")
DESCRIPTION = _iri("sorg", "description")
KEYWORDS = _iri("sorg", "keywords")
CONTENT_RATING = _iri("sorg", "contentRating")
CONTENT_SIZE = _iri("sorg", "contentSize")
LANGUAGE_PRED = _iri("sorg", "language")
TRAILER = _iri("sorg", "trailer")
PUBLISHER = _iri("sorg", "publisher")
AUTHOR = _iri("sorg", "author")
EDITOR = _iri("sorg", "editor")
DIRECTOR = _iri("sorg", "director")
ACTOR = _iri("sorg", "actor")
TEXT = _iri("sorg", "text")
LEGAL_NAME = _iri("sorg", "legalName")
ELIGIBLE_QUANTITY = _iri("sorg", "eligibleQuantity")
ELIGIBLE_REGION = _iri("sorg", "eligibleRegion")
PRICE_VALID_UNTIL = _iri("sorg", "priceValidUntil")
URL = _iri("sorg", "url")
FAX_NUMBER = _iri("sorg", "faxNumber")
HOMEPAGE = _iri("foaf", "homepage")
FAMILY_NAME = _iri("foaf", "familyName")
GIVEN_NAME = _iri("foaf", "givenName")
OG_TAG = _iri("og", "tag")
OG_TITLE = _iri("og", "title")
ARTIST = _iri("mo", "artist")
CONDUCTOR = _iri("mo", "conductor")


@dataclass(frozen=True)
class PredicateSpec:
    """How one predicate is generated for the instances of its source class.

    Exactly one of ``probability`` (single-valued predicate attached with this
    probability) or ``mean_degree`` (multi-valued predicate with a Poisson
    out-degree) is used.  ``target`` is an :class:`EntityClass` for object
    properties or ``None`` for literal-valued predicates.
    """

    predicate: IRI
    source: EntityClass
    target: Optional[EntityClass] = None
    probability: Optional[float] = None
    mean_degree: Optional[float] = None
    literal_kind: str = "string"  # "string", "integer", "date"

    def __post_init__(self) -> None:
        if (self.probability is None) == (self.mean_degree is None):
            raise ValueError("specify exactly one of probability or mean_degree")


#: Number of instances per entity class: either triples-scaled (per scale
#: factor unit) or a fixed count for the small "dictionary" classes.
ENTITY_COUNTS: Dict[EntityClass, Tuple[float, int]] = {
    # (instances per scale-factor unit, minimum count)
    EntityClass.USER: (100.0, 30),
    EntityClass.PRODUCT: (25.0, 12),
    EntityClass.REVIEW: (30.0, 10),
    EntityClass.OFFER: (40.0, 10),
    EntityClass.RETAILER: (1.0, 3),
    EntityClass.PURCHASE: (30.0, 8),
    EntityClass.WEBSITE: (5.0, 4),
    EntityClass.CITY: (2.0, 5),
    EntityClass.COUNTRY: (0.0, 25),
    EntityClass.TOPIC: (0.0, 25),
    EntityClass.SUB_GENRE: (0.0, 21),
    EntityClass.LANGUAGE: (0.0, 10),
    EntityClass.AGE_GROUP: (0.0, 9),
    EntityClass.PRODUCT_CATEGORY: (0.0, 15),
    EntityClass.ROLE: (0.0, 3),
}


#: The complete predicate schema.
WATDIV_SCHEMA: List[PredicateSpec] = [
    # ----------------------------- users ------------------------------- #
    PredicateSpec(FRIEND_OF, EntityClass.USER, EntityClass.USER, mean_degree=8.0),
    PredicateSpec(FOLLOWS, EntityClass.USER, EntityClass.USER, mean_degree=6.0),
    PredicateSpec(LIKES, EntityClass.USER, EntityClass.PRODUCT, mean_degree=0.35),
    PredicateSpec(SUBSCRIBES, EntityClass.USER, EntityClass.WEBSITE, mean_degree=0.4),
    PredicateSpec(MAKES_PURCHASE, EntityClass.USER, EntityClass.PURCHASE, mean_degree=0.3),
    PredicateSpec(EMAIL, EntityClass.USER, None, probability=0.9),
    PredicateSpec(AGE, EntityClass.USER, EntityClass.AGE_GROUP, probability=0.5),
    PredicateSpec(JOB_TITLE, EntityClass.USER, None, probability=0.05),
    PredicateSpec(FAX_NUMBER, EntityClass.USER, None, probability=0.04),
    PredicateSpec(GENDER, EntityClass.USER, None, probability=0.6),
    PredicateSpec(FAMILY_NAME, EntityClass.USER, None, probability=0.6),
    PredicateSpec(GIVEN_NAME, EntityClass.USER, None, probability=0.6),
    PredicateSpec(NATIONALITY, EntityClass.USER, EntityClass.COUNTRY, probability=0.6),
    PredicateSpec(DC_LOCATION, EntityClass.USER, EntityClass.CITY, probability=0.4),
    PredicateSpec(HOMEPAGE, EntityClass.USER, EntityClass.WEBSITE, probability=0.08),
    PredicateSpec(RDF_TYPE, EntityClass.USER, EntityClass.ROLE, probability=1.0),
    # ---------------------------- products ----------------------------- #
    PredicateSpec(RDF_TYPE, EntityClass.PRODUCT, EntityClass.PRODUCT_CATEGORY, probability=1.0),
    PredicateSpec(CAPTION, EntityClass.PRODUCT, None, probability=0.8),
    PredicateSpec(DESCRIPTION, EntityClass.PRODUCT, None, probability=0.7),
    PredicateSpec(KEYWORDS, EntityClass.PRODUCT, None, probability=0.6),
    PredicateSpec(TEXT, EntityClass.PRODUCT, None, probability=0.5),
    PredicateSpec(CONTENT_RATING, EntityClass.PRODUCT, None, probability=0.4),
    PredicateSpec(CONTENT_SIZE, EntityClass.PRODUCT, None, probability=0.4, literal_kind="integer"),
    PredicateSpec(LANGUAGE_PRED, EntityClass.PRODUCT, EntityClass.LANGUAGE, probability=0.4),
    PredicateSpec(OG_TITLE, EntityClass.PRODUCT, None, probability=0.6),
    PredicateSpec(OG_TAG, EntityClass.PRODUCT, EntityClass.TOPIC, mean_degree=1.5),
    PredicateSpec(HAS_GENRE, EntityClass.PRODUCT, EntityClass.SUB_GENRE, mean_degree=1.2),
    PredicateSpec(PUBLISHER, EntityClass.PRODUCT, None, probability=0.3),
    PredicateSpec(AUTHOR, EntityClass.PRODUCT, EntityClass.USER, probability=0.3),
    PredicateSpec(EDITOR, EntityClass.PRODUCT, EntityClass.USER, probability=0.2),
    PredicateSpec(DIRECTOR, EntityClass.PRODUCT, EntityClass.USER, probability=0.2),
    PredicateSpec(ACTOR, EntityClass.PRODUCT, EntityClass.USER, mean_degree=0.5),
    PredicateSpec(TRAILER, EntityClass.PRODUCT, None, probability=0.1),
    PredicateSpec(ARTIST, EntityClass.PRODUCT, EntityClass.USER, probability=0.3),
    PredicateSpec(CONDUCTOR, EntityClass.PRODUCT, EntityClass.USER, probability=0.1),
    PredicateSpec(HOMEPAGE, EntityClass.PRODUCT, EntityClass.WEBSITE, probability=0.2),
    # ----------------------------- reviews ----------------------------- #
    PredicateSpec(REVIEWER, EntityClass.REVIEW, EntityClass.USER, probability=1.0),
    PredicateSpec(REVIEW_TITLE, EntityClass.REVIEW, None, probability=0.8),
    PredicateSpec(TOTAL_VOTES, EntityClass.REVIEW, None, probability=0.6, literal_kind="integer"),
    # ------------------------------ offers ------------------------------ #
    PredicateSpec(INCLUDES, EntityClass.OFFER, EntityClass.PRODUCT, probability=1.0),
    PredicateSpec(PRICE, EntityClass.OFFER, None, probability=1.0, literal_kind="integer"),
    PredicateSpec(SERIAL_NUMBER, EntityClass.OFFER, None, probability=0.7, literal_kind="integer"),
    PredicateSpec(VALID_FROM, EntityClass.OFFER, None, probability=0.6, literal_kind="date"),
    PredicateSpec(VALID_THROUGH, EntityClass.OFFER, None, probability=0.6, literal_kind="date"),
    PredicateSpec(ELIGIBLE_QUANTITY, EntityClass.OFFER, None, probability=0.5, literal_kind="integer"),
    PredicateSpec(ELIGIBLE_REGION, EntityClass.OFFER, EntityClass.COUNTRY, probability=0.5),
    PredicateSpec(PRICE_VALID_UNTIL, EntityClass.OFFER, None, probability=0.4, literal_kind="date"),
    # ---------------------------- retailers ----------------------------- #
    PredicateSpec(LEGAL_NAME, EntityClass.RETAILER, None, probability=1.0),
    # ---------------------------- purchases ----------------------------- #
    PredicateSpec(PURCHASE_FOR, EntityClass.PURCHASE, EntityClass.PRODUCT, probability=1.0),
    PredicateSpec(PURCHASE_DATE, EntityClass.PURCHASE, None, probability=1.0, literal_kind="date"),
    # ----------------------------- websites ----------------------------- #
    PredicateSpec(URL, EntityClass.WEBSITE, None, probability=1.0),
    PredicateSpec(HITS, EntityClass.WEBSITE, None, probability=0.8, literal_kind="integer"),
    PredicateSpec(LANGUAGE_PRED, EntityClass.WEBSITE, EntityClass.LANGUAGE, probability=0.3),
    # ------------------------------ cities ------------------------------ #
    PredicateSpec(PARENT_COUNTRY, EntityClass.CITY, EntityClass.COUNTRY, probability=1.0),
]
