"""WatDiv Selectivity Testing workload (Appendix B of the paper).

Twenty queries designed by the S2RDF authors to probe the effect of ExtVP
table selectivities: varying OS (ST-1/2), SO (ST-3/4) and SS (ST-5)
selectivity, high-selectivity queries (ST-6), OS-versus-SO choice (ST-7) and
empty-result queries (ST-8).

Note on fidelity: the paper's appendix writes ``wsdbm:reviewer`` /
``wsdbm:author`` in ST-4-2 and ST-4-3 although the vocabulary defines these
predicates as ``rev:reviewer`` and ``sorg:author`` (as used everywhere else in
the appendix).  We follow the vocabulary so the queries exercise the intended
SO-selectivity comparison rather than returning trivially empty results; this
substitution is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List

from repro.watdiv.template import QueryTemplate


SELECTIVITY_TEMPLATES: List[QueryTemplate] = [
    # -------------------- varying OS selectivity ----------------------- #
    QueryTemplate(
        name="ST-1-1",
        category="ST-OS",
        description="friendOf -> email (high OS selectivity factor, large VP input)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 wsdbm:friendOf ?v1 .
  ?v1 sorg:email ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-1-2",
        category="ST-OS",
        description="friendOf -> age (medium OS selectivity factor)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 wsdbm:friendOf ?v1 .
  ?v1 foaf:age ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-1-3",
        category="ST-OS",
        description="friendOf -> jobTitle (low OS selectivity factor)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 wsdbm:friendOf ?v1 .
  ?v1 sorg:jobTitle ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-2-1",
        category="ST-OS",
        description="reviewer -> email (small VP input, high OS selectivity)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 rev:reviewer ?v1 .
  ?v1 sorg:email ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-2-2",
        category="ST-OS",
        description="reviewer -> age (small VP input, medium OS selectivity)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 rev:reviewer ?v1 .
  ?v1 foaf:age ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-2-3",
        category="ST-OS",
        description="reviewer -> jobTitle (small VP input, low OS selectivity)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 rev:reviewer ?v1 .
  ?v1 sorg:jobTitle ?v2 .
}""",
    ),
    # -------------------- varying SO selectivity ----------------------- #
    QueryTemplate(
        name="ST-3-1",
        category="ST-SO",
        description="follows -> friendOf (high SO selectivity factor)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 wsdbm:follows ?v1 .
  ?v1 wsdbm:friendOf ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-3-2",
        category="ST-SO",
        description="reviewer -> friendOf (medium SO selectivity factor)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 rev:reviewer ?v1 .
  ?v1 wsdbm:friendOf ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-3-3",
        category="ST-SO",
        description="author -> friendOf (low SO selectivity factor)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 sorg:author ?v1 .
  ?v1 wsdbm:friendOf ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-4-1",
        category="ST-SO",
        description="follows -> likes (small VP input, high SO selectivity)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 wsdbm:follows ?v1 .
  ?v1 wsdbm:likes ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-4-2",
        category="ST-SO",
        description="reviewer -> likes (small VP input, medium SO selectivity)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 rev:reviewer ?v1 .
  ?v1 wsdbm:likes ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-4-3",
        category="ST-SO",
        description="author -> likes (small VP input, low SO selectivity)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 sorg:author ?v1 .
  ?v1 wsdbm:likes ?v2 .
}""",
    ),
    # -------------------- varying SS selectivity ----------------------- #
    QueryTemplate(
        name="ST-5-1",
        category="ST-SS",
        description="friendOf / email share the subject (high SS selectivity)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 wsdbm:friendOf ?v1 .
  ?v0 sorg:email ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-5-2",
        category="ST-SS",
        description="friendOf / follows share the subject (medium SS selectivity)",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 wsdbm:friendOf ?v1 .
  ?v0 wsdbm:follows ?v2 .
}""",
    ),
    # -------------------- high selectivity queries --------------------- #
    QueryTemplate(
        name="ST-6-1",
        category="ST-HIGH",
        description="likes -> trailer: linear query over two tiny tables",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 wsdbm:likes ?v1 .
  ?v1 sorg:trailer ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-6-2",
        category="ST-HIGH",
        description="email / faxNumber star query over two tiny tables",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 sorg:email ?v1 .
  ?v0 sorg:faxNumber ?v2 .
}""",
    ),
    # -------------------- OS vs SO selectivity ------------------------- #
    QueryTemplate(
        name="ST-7-1",
        category="ST-OSSO",
        description="friendOf -> follows -> homepage: OS table better than SO",
        text="""SELECT ?v0 ?v1 ?v2 ?v3 WHERE {
  ?v0 wsdbm:friendOf ?v1 .
  ?v1 wsdbm:follows ?v2 .
  ?v2 foaf:homepage ?v3 .
}""",
    ),
    QueryTemplate(
        name="ST-7-2",
        category="ST-OSSO",
        description="artist -> friendOf -> follows: SO table better than OS",
        text="""SELECT ?v0 ?v1 ?v2 ?v3 WHERE {
  ?v0 mo:artist ?v1 .
  ?v1 wsdbm:friendOf ?v2 .
  ?v2 wsdbm:follows ?v3 .
}""",
    ),
    # -------------------- empty result queries -------------------------- #
    QueryTemplate(
        name="ST-8-1",
        category="ST-EMPTY",
        description="friendOf -> language: correlation does not exist in the data",
        text="""SELECT ?v0 ?v1 ?v2 WHERE {
  ?v0 wsdbm:friendOf ?v1 .
  ?v1 sorg:language ?v2 .
}""",
    ),
    QueryTemplate(
        name="ST-8-2",
        category="ST-EMPTY",
        description="friendOf -> follows -> language: large intermediate result discarded",
        text="""SELECT ?v0 ?v1 ?v2 ?v3 WHERE {
  ?v0 wsdbm:friendOf ?v1 .
  ?v1 wsdbm:follows ?v2 .
  ?v2 sorg:language ?v3 .
}""",
    ),
]


def selectivity_templates_by_category() -> Dict[str, List[QueryTemplate]]:
    grouped: Dict[str, List[QueryTemplate]] = {}
    for template in SELECTIVITY_TEMPLATES:
        grouped.setdefault(template.category, []).append(template)
    return grouped


def selectivity_template(name: str) -> QueryTemplate:
    for template in SELECTIVITY_TEMPLATES:
        if template.name == name:
            return template
    raise KeyError(f"unknown Selectivity Testing template {name!r}")
