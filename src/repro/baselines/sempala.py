"""Sempala: SPARQL over a unified property table on an Impala-like MPP engine.

Sempala decomposes a BGP into disjoint star-shaped triple groups (patterns
sharing the same subject), answers each group with a scan over the wide
property table (no join needed inside a group, Fig. 7 of the paper) and joins
the groups to build the final result.  Star queries are therefore join-free,
but every group scan has to read the whole property table, which is what the
paper identifies as Sempala's bottleneck compared to ExtVP's input pruning.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, List, Optional, Tuple, Union

from repro.baselines.base import EngineResult, LoadReport, SparqlEngine, UnsupportedQueryError
from repro.engine.cluster import SparkCostModel
from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation
from repro.mappings.naming import PROPERTY_TABLE
from repro.mappings.property_table import PropertyTableLayout
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Term, Variable
from repro.sparql.algebra import Query, TriplePattern


class SempalaEngine(SparqlEngine):
    """Unified property table + MPP execution (Impala stand-in)."""

    name = "Sempala"

    _load_seconds_per_triple = 2.5e-6

    def __init__(self, cost_model: Optional[SparkCostModel] = None, work_scale: float = 1.0) -> None:
        self.work_scale = work_scale
        # Impala behaves like an in-memory MPP engine; reuse the Spark cost
        # model with a slightly higher scan cost (property table rows are wide).
        self.cost_model = cost_model or SparkCostModel(scan_ns_per_tuple=700.0, query_overhead_ms=120.0)
        self.layout: Optional[PropertyTableLayout] = None
        self.graph: Optional[Graph] = None

    # ------------------------------------------------------------------ #
    def load(self, graph: Graph) -> LoadReport:
        start = time.perf_counter()
        self.graph = graph
        self.layout = PropertyTableLayout()
        report = self.layout.build(graph)
        wallclock = time.perf_counter() - start
        return LoadReport(
            engine=self.name,
            triples=len(graph),
            tuples_stored=report.tuple_count,
            table_count=report.table_count,
            hdfs_bytes=report.hdfs_bytes,
            simulated_load_seconds=len(graph) * self._load_seconds_per_triple,
            wallclock_seconds=wallclock,
        )

    # ------------------------------------------------------------------ #
    def query(self, query: Union[str, Query]) -> EngineResult:
        if self.layout is None or self.graph is None:
            raise RuntimeError("call load() before query()")
        parsed = self.parse(query)
        bgp = self.extract_single_bgp(parsed)
        patterns = list(bgp.patterns)
        metrics = ExecutionMetrics()

        groups = self._star_groups(patterns, self.layout)
        property_table = self.layout.table()
        result: Optional[Relation] = None
        for subject_term, group_patterns in groups:
            group_relation = self._evaluate_group(subject_term, group_patterns, property_table, metrics)
            if result is None:
                result = group_relation
            else:
                result = result.natural_join(group_relation, metrics)
        if result is None:
            result = Relation.empty(())
        relation = self.apply_solution_modifiers(parsed, result)
        metrics.output_tuples = len(relation)
        runtime = self.cost_model.runtime_ms(metrics.scaled(self.work_scale))
        return EngineResult(
            engine=self.name,
            relation=relation,
            simulated_runtime_ms=runtime,
            metrics=metrics,
            execution_mode=f"impala/property-table ({len(groups)} star groups)",
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _star_groups(
        patterns: List[TriplePattern],
        layout: PropertyTableLayout,
    ) -> List[Tuple[Term, List[TriplePattern]]]:
        """Group triple patterns by subject term (star-shaped triple groups).

        Two restrictions keep a single property-table scan per group correct
        under the row-duplication strategy: a predicate may appear only once
        per group, and at most one *multi-valued* predicate may appear per
        group (additional ones form their own group and are joined back on the
        shared subject variable).
        """
        grouped: List[Tuple[Term, List[TriplePattern]]] = []
        index: Dict[Term, List[Dict[IRI, TriplePattern]]] = defaultdict(list)
        multi_count: Dict[int, int] = {}
        for pattern in patterns:
            subject = pattern.subject
            predicate = pattern.predicate
            placed = False
            if isinstance(predicate, IRI):
                is_multi = layout.is_multi_valued(predicate)
                for bucket in index[subject]:
                    bucket_id = id(bucket)
                    if predicate in bucket:
                        continue
                    if is_multi and multi_count.get(bucket_id, 0) >= 1:
                        continue
                    bucket[predicate] = pattern
                    if is_multi:
                        multi_count[bucket_id] = multi_count.get(bucket_id, 0) + 1
                    placed = True
                    break
                if not placed:
                    bucket = {predicate: pattern}
                    index[subject].append(bucket)
                    if is_multi:
                        multi_count[id(bucket)] = 1
            else:
                index[subject].append({IRI(f"__var_{len(index[subject])}"): pattern})
        for subject, buckets in index.items():
            for bucket in buckets:
                grouped.append((subject, list(bucket.values())))
        return grouped

    def _evaluate_group(
        self,
        subject_term: Term,
        patterns: List[TriplePattern],
        property_table: Relation,
        metrics: ExecutionMetrics,
    ) -> Relation:
        """Answer one star group with a single scan of the property table."""
        assert self.layout is not None and self.graph is not None
        metrics.record_scan(PROPERTY_TABLE, len(property_table))

        # Variable-predicate patterns fall back to the triples table.
        variable_predicate = [p for p in patterns if isinstance(p.predicate, Variable)]
        fixed = [p for p in patterns if isinstance(p.predicate, IRI)]

        columns: List[str] = []
        projections: List[Tuple[str, str]] = []  # (physical column, output variable)
        conditions: List[Tuple[str, Term]] = []
        if isinstance(subject_term, Variable):
            projections.append(("s", subject_term.name))
        else:
            conditions.append(("s", subject_term))
        for pattern in fixed:
            column = self.layout.column_for(pattern.predicate)
            if column is None:
                return Relation.empty(tuple(sorted({v.name for p in patterns for v in p.variables()})))
            columns.append(column)
            if isinstance(pattern.object, Variable):
                projections.append((column, pattern.object.name))
            else:
                conditions.append((column, pattern.object))

        def row_matches(row: Dict[str, object]) -> bool:
            for column in columns:
                if row.get(column) is None:
                    return False
            for column, value in conditions:
                if row.get(column) != value:
                    return False
            return True

        filtered = property_table.select(row_matches)
        physical = [column for column, _ in projections]
        aliases = {column: alias for column, alias in projections}
        relation = filtered.project(physical).rename(aliases).distinct()

        # Patterns with an unbound predicate are answered from the graph and
        # joined in (rare in the benchmark workloads).
        for pattern in variable_predicate:
            rows = []
            for triple in self.graph:
                binding = {}
                ok = True
                for term, value in (
                    (pattern.subject, triple.subject),
                    (pattern.predicate, triple.predicate),
                    (pattern.object, triple.object),
                ):
                    if isinstance(term, Variable):
                        if term.name in binding and binding[term.name] != value:
                            ok = False
                            break
                        binding[term.name] = value
                    elif term != value:
                        ok = False
                        break
                if ok:
                    rows.append(binding)
            variables = sorted({v.name for v in pattern.variables()})
            extra = Relation(variables, (tuple(b.get(v) for v in variables) for b in rows))
            metrics.record_scan("triples", len(self.graph))
            relation = relation.natural_join(extra, metrics) if len(relation.columns) else extra
        return relation
