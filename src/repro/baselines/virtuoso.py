"""A centralized RDF store in the style of Virtuoso.

Virtuoso runs on a single server with rich indexes over the triple
permutations.  Selective queries are fast (and repeated executions benefit
from caching), but all work is bound to one machine, so runtimes correlate
strongly with result size and the unbound Incremental Linear queries time out
(Sec. 7.3: "Virtuoso was not able to answer any of the queries within a 10
hours timeout").
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.baselines.base import EngineResult, LoadReport, SparqlEngine
from repro.baselines.binding_iteration import (
    ResultSizeExceeded,
    bindings_to_relation,
    index_nested_loop_execute,
)
from repro.engine.cluster import CentralizedCostModel
from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation
from repro.engine.storage import HdfsSimulator
from repro.rdf.graph import Graph
from repro.sparql.algebra import Query


class VirtuosoEngine(SparqlEngine):
    """Centralized six-index store with cold / warm cache execution."""

    name = "Virtuoso"

    _load_seconds_per_triple = 2.0e-6

    def __init__(
        self,
        cost_model: Optional[CentralizedCostModel] = None,
        warm_cache: bool = False,
        max_bindings: int = 5_000_000,
        work_scale: float = 1.0,
    ) -> None:
        self.work_scale = work_scale
        self.cost_model = cost_model or CentralizedCostModel()
        self.warm_cache = warm_cache
        self.max_bindings = max_bindings
        self.graph: Optional[Graph] = None
        self.storage = HdfsSimulator()

    def load(self, graph: Graph) -> LoadReport:
        start = time.perf_counter()
        self.graph = graph
        relation = Relation(("s", "p", "o"), ((t.subject, t.predicate, t.object) for t in graph))
        self.storage.write("virtuoso/quad_store.db", relation)
        wallclock = time.perf_counter() - start
        return LoadReport(
            engine=self.name,
            triples=len(graph),
            tuples_stored=len(graph),
            table_count=1,
            hdfs_bytes=self.storage.total_bytes(),
            simulated_load_seconds=len(graph) * self._load_seconds_per_triple,
            wallclock_seconds=wallclock,
        )

    def query(self, query: Union[str, Query]) -> EngineResult:
        if self.graph is None:
            raise RuntimeError("call load() before query()")
        parsed = self.parse(query)
        bgp = self.extract_single_bgp(parsed)
        metrics = ExecutionMetrics()
        try:
            bindings = index_nested_loop_execute(
                self.graph, list(bgp.patterns), metrics, reorder=True, max_bindings=self.max_bindings
            )
        except ResultSizeExceeded as exc:
            return EngineResult(
                engine=self.name,
                relation=Relation.empty(tuple(sorted(v.name for v in bgp.variables()))),
                simulated_runtime_ms=float("inf"),
                metrics=metrics,
                execution_mode="centralized/timeout",
                failed=True,
                failure_reason=str(exc),
            )
        variables = sorted({v.name for p in bgp.patterns for v in p.variables()})
        relation = bindings_to_relation(bindings, variables)
        relation = self.apply_solution_modifiers(parsed, relation)
        runtime = self.cost_model.runtime_ms(metrics.scaled(self.work_scale), warm=self.warm_cache)
        failed = runtime == float("inf")
        return EngineResult(
            engine=self.name,
            relation=relation,
            simulated_runtime_ms=runtime,
            metrics=metrics,
            execution_mode="centralized/warm" if self.warm_cache else "centralized/cold",
            failed=failed,
            failure_reason="timeout" if failed else "",
        )
