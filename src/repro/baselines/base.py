"""Common engine interface for S2RDF and all competitor baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation
from repro.rdf.graph import Graph
from repro.sparql.algebra import BGP, Distinct, Filter, PatternNode, Projection, Query, Slice
from repro.sparql.parser import parse_query


class UnsupportedQueryError(NotImplementedError):
    """Raised when an engine does not support a SPARQL feature."""


@dataclass
class LoadReport:
    """Result of loading a graph into an engine (Table 2 data)."""

    engine: str
    triples: int
    tuples_stored: int
    table_count: int
    hdfs_bytes: int
    simulated_load_seconds: float
    wallclock_seconds: float


@dataclass
class EngineResult:
    """Result of one query execution on one engine."""

    engine: str
    relation: Relation
    simulated_runtime_ms: float
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)
    execution_mode: str = "default"
    failed: bool = False
    failure_reason: str = ""

    def __len__(self) -> int:
        return len(self.relation)

    @property
    def bindings(self) -> List[Dict[str, object]]:
        return [
            {c: v for c, v in zip(self.relation.columns, row) if v is not None}
            for row in self.relation.rows
        ]


class SparqlEngine:
    """Abstract base class for all engines in the comparison."""

    name = "abstract"

    def load(self, graph: Graph) -> LoadReport:
        raise NotImplementedError

    def query(self, query: Union[str, Query]) -> EngineResult:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def parse(query: Union[str, Query]) -> Query:
        return parse_query(query) if isinstance(query, str) else query

    @staticmethod
    def extract_single_bgp(query: Query) -> BGP:
        """Return the query's BGP, unwrapping projection/distinct/slice wrappers.

        The baseline engines only support plain BGP queries (which is all the
        WatDiv workloads need); anything else raises
        :class:`UnsupportedQueryError`.
        """
        node: PatternNode = query.pattern
        while True:
            if isinstance(node, (Projection, Distinct, Slice)):
                node = node.pattern
                continue
            if isinstance(node, Filter):
                raise UnsupportedQueryError("baseline engines do not evaluate FILTER")
            break
        if not isinstance(node, BGP):
            raise UnsupportedQueryError(f"baseline engines only support BGP queries, got {type(node).__name__}")
        return node

    @staticmethod
    def apply_solution_modifiers(query: Query, relation: Relation) -> Relation:
        """Apply SELECT projection, DISTINCT, ORDER BY and LIMIT/OFFSET."""
        result = relation
        if query.distinct:
            result = result.distinct()
        if query.order_by:
            keys = []
            for condition in query.order_by:
                expression = condition.expression
                variable = getattr(expression, "variable", None)
                if variable is not None and variable.name in result.columns:
                    keys.append((variable.name, condition.ascending))
            if keys:
                result = result.order_by(keys)
        if query.select_variables:
            wanted = [v.name for v in query.select_variables]
            missing = [name for name in wanted if name not in result.columns]
            if missing:
                padded = Relation(
                    list(result.columns) + missing,
                    (row + tuple(None for _ in missing) for row in result.rows),
                )
                result = padded
            result = result.project(wanted)
        if query.limit is not None or query.offset:
            result = result.limit(query.limit, query.offset)
        return result
