"""H2RDF+: six HBase indexes with adaptive centralized / MapReduce execution.

H2RDF+ stores every triple permutation in a sorted HBase table (six clustered
indexes) plus aggregated statistics.  Based on estimated input and join sizes
it either executes a query with centralized merge joins on a single node (very
fast for selective queries) or falls back to MapReduce sort-merge joins (slow
but scalable).  The reproduction keeps both modes and the cost-based switch.
"""

from __future__ import annotations

import time
from typing import List, Optional, Union

from repro.baselines.base import EngineResult, LoadReport, SparqlEngine
from repro.baselines.binding_iteration import (
    ResultSizeExceeded,
    bindings_to_relation,
    index_nested_loop_execute,
)
from repro.engine.cluster import CentralizedCostModel, MapReduceCostModel
from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation
from repro.engine.storage import HdfsSimulator
from repro.rdf.graph import Graph
from repro.rdf.terms import Variable
from repro.sparql.algebra import Query, TriplePattern


class H2RDFPlusEngine(SparqlEngine):
    """Adaptive HBase engine (H2RDF+)."""

    name = "H2RDF+"

    _load_seconds_per_triple = 4.0e-6  # six indexes + statistics
    #: A query is executed with MapReduce when its estimated input exceeds
    #: ``max(minimum_distributed_input, distributed_input_fraction * |G|)``.
    distributed_input_fraction = 0.05
    minimum_distributed_input = 1500

    def __init__(
        self,
        central_model: Optional[CentralizedCostModel] = None,
        distributed_model: Optional[MapReduceCostModel] = None,
        max_bindings: int = 5_000_000,
        work_scale: float = 1.0,
    ) -> None:
        self.work_scale = work_scale
        self.central_model = central_model or CentralizedCostModel(
            query_overhead_ms=35.0, lookup_ns_per_tuple=1100.0, result_ns_per_tuple=2500.0, timeout_ms=None
        )
        self.distributed_model = distributed_model or MapReduceCostModel(job_overhead_ms=11000.0)
        self.max_bindings = max_bindings
        self.graph: Optional[Graph] = None
        self.hdfs = HdfsSimulator()

    # ------------------------------------------------------------------ #
    def load(self, graph: Graph) -> LoadReport:
        start = time.perf_counter()
        self.graph = graph
        triples_relation = Relation(("s", "p", "o"), ((t.subject, t.predicate, t.object) for t in graph))
        # Six permutation indexes; HBase stores the whole triple in the row
        # key, so each index is roughly the size of the dataset (compressed).
        for permutation in ("spo", "sop", "pso", "pos", "osp", "ops"):
            self.hdfs.write(f"h2rdf/{permutation}.hfile", triples_relation)
        wallclock = time.perf_counter() - start
        return LoadReport(
            engine=self.name,
            triples=len(graph),
            tuples_stored=len(graph),
            table_count=6,
            hdfs_bytes=self.hdfs.total_bytes() // 6,  # report per-copy size like the paper
            simulated_load_seconds=len(graph) * self._load_seconds_per_triple,
            wallclock_seconds=wallclock,
        )

    # ------------------------------------------------------------------ #
    def _estimated_input(self, patterns: List[TriplePattern]) -> int:
        """Sum of index-scan sizes for all patterns (H2RDF+'s cost estimate)."""
        assert self.graph is not None
        total = 0
        for pattern in patterns:
            if isinstance(pattern.predicate, Variable):
                total += len(self.graph)
            elif not isinstance(pattern.subject, Variable) or not isinstance(pattern.object, Variable):
                # Bound subject or object: a narrow index range scan.
                subject = None if isinstance(pattern.subject, Variable) else pattern.subject
                object_ = None if isinstance(pattern.object, Variable) else pattern.object
                total += sum(1 for _ in self.graph.triples(subject, pattern.predicate, object_))
            else:
                total += self.graph.predicate_count(pattern.predicate)
        return total

    def query(self, query: Union[str, Query]) -> EngineResult:
        if self.graph is None:
            raise RuntimeError("call load() before query()")
        parsed = self.parse(query)
        bgp = self.extract_single_bgp(parsed)
        patterns = list(bgp.patterns)
        metrics = ExecutionMetrics()

        estimated_input = self._estimated_input(patterns)
        distributed_threshold = max(
            self.minimum_distributed_input,
            self.distributed_input_fraction * max(1, len(self.graph)),
        )
        centralized = estimated_input <= distributed_threshold

        try:
            bindings = index_nested_loop_execute(
                self.graph, patterns, metrics, reorder=True, max_bindings=self.max_bindings
            )
        except ResultSizeExceeded as exc:
            return EngineResult(
                engine=self.name,
                relation=Relation.empty(tuple(sorted(v.name for v in bgp.variables()))),
                simulated_runtime_ms=float("inf"),
                metrics=metrics,
                execution_mode="hbase/failed",
                failed=True,
                failure_reason=str(exc),
            )
        variables = sorted({v.name for p in patterns for v in p.variables()})
        relation = bindings_to_relation(bindings, variables)
        relation = self.apply_solution_modifiers(parsed, relation)

        if centralized:
            runtime = self.central_model.runtime_ms(metrics.scaled(self.work_scale))
            mode = "hbase/centralized merge join"
        else:
            # Distributed sort-merge joins: one MapReduce job per join.
            metrics.shuffled_tuples = max(metrics.shuffled_tuples, metrics.input_tuples + metrics.intermediate_tuples)
            runtime = self.distributed_model.runtime_ms(metrics.scaled(self.work_scale), jobs=max(1, len(patterns) - 1))
            mode = "hbase/mapreduce sort-merge join"
        return EngineResult(
            engine=self.name,
            relation=relation,
            simulated_runtime_ms=runtime,
            metrics=metrics,
            execution_mode=mode,
        )
