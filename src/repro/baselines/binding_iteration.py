"""Shared binding-iteration executors over the RDF graph.

Two strategies used by the baseline engines:

* :func:`index_nested_loop_execute` — for each partial solution, look up the
  matching triples of the next pattern through the graph's indexes.  This is
  how index-based stores (Rya, H2RDF+ centralized mode, Virtuoso) evaluate
  BGPs; the work grows with the number of index lookups and produced bindings.
* :func:`clause_iteration_execute` — SHARD's approach: every clause (triple
  pattern) triggers a full scan of the data which is joined against the
  current binding set (one MapReduce job per clause).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Variable
from repro.sparql.algebra import TriplePattern

Binding = Dict[str, Term]


class ResultSizeExceeded(RuntimeError):
    """Raised when an execution produces more bindings than an engine allows.

    The baseline engines use this to emulate the paper's failed / timed-out
    runs (marked "F" in Table 5) instead of exhausting local memory.
    """


def _substitute(pattern: TriplePattern, binding: Binding) -> Tuple[Optional[Term], Optional[Term], Optional[Term]]:
    """Replace bound variables of ``pattern`` by the binding's values."""
    components: List[Optional[Term]] = []
    for term in (pattern.subject, pattern.predicate, pattern.object):
        if isinstance(term, Variable):
            components.append(binding.get(term.name))
        else:
            components.append(term)
    return components[0], components[1], components[2]


def _extend(pattern: TriplePattern, binding: Binding, triple) -> Optional[Binding]:
    """Extend ``binding`` with the variable bindings implied by ``triple``."""
    extended = dict(binding)
    for term, value in ((pattern.subject, triple.subject), (pattern.predicate, triple.predicate), (pattern.object, triple.object)):
        if isinstance(term, Variable):
            existing = extended.get(term.name)
            if existing is not None and existing != value:
                return None
            extended[term.name] = value
        elif term != value:
            return None
    return extended


def _pattern_cardinality(graph: Graph, pattern: TriplePattern) -> int:
    """Estimated number of triples matching a pattern (used for ordering)."""
    subject = None if isinstance(pattern.subject, Variable) else pattern.subject
    predicate = None if isinstance(pattern.predicate, Variable) else pattern.predicate
    object_ = None if isinstance(pattern.object, Variable) else pattern.object
    if subject is None and object_ is None and predicate is not None:
        return graph.predicate_count(predicate)
    return sum(1 for _ in graph.triples(subject, predicate, object_))


def order_by_selectivity(graph: Graph, patterns: Sequence[TriplePattern]) -> List[TriplePattern]:
    """Order patterns by estimated selectivity, avoiding cross products."""
    remaining = list(patterns)
    cardinalities = {id(p): _pattern_cardinality(graph, p) for p in remaining}
    ordered: List[TriplePattern] = []
    seen_variables: set = set()
    while remaining:
        connected = [p for p in remaining if not ordered or (seen_variables & {v.name for v in p.variables()})]
        pool = connected or remaining
        best = min(pool, key=lambda p: (-p.bound_count(), cardinalities[id(p)]))
        ordered.append(best)
        seen_variables |= {v.name for v in best.variables()}
        remaining.remove(best)
    return ordered


def bindings_to_relation(bindings: Sequence[Binding], variables: Sequence[str]) -> Relation:
    """Materialise a list of bindings as a relation over ``variables``."""
    columns = list(variables)
    return Relation(columns, (tuple(b.get(c) for c in columns) for b in bindings))


def index_nested_loop_execute(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    metrics: Optional[ExecutionMetrics] = None,
    reorder: bool = True,
    max_bindings: Optional[int] = None,
) -> List[Binding]:
    """Evaluate a BGP with index nested loop joins over the graph indexes."""
    metrics = metrics if metrics is not None else ExecutionMetrics()
    ordered = order_by_selectivity(graph, patterns) if reorder else list(patterns)
    bindings: List[Binding] = [{}]
    for pattern in ordered:
        next_bindings: List[Binding] = []
        matched = 0
        for binding in bindings:
            subject, predicate, object_ = _substitute(pattern, binding)
            for triple in graph.triples(subject, predicate, object_):
                matched += 1
                extended = _extend(pattern, binding, triple)
                if extended is not None:
                    next_bindings.append(extended)
            if max_bindings is not None and len(next_bindings) > max_bindings:
                raise ResultSizeExceeded(
                    f"intermediate result exceeded {max_bindings} bindings"
                )
        metrics.input_tuples += matched
        metrics.join_comparisons += matched
        metrics.intermediate_tuples += len(next_bindings)
        metrics.joins += 1
        metrics.stages += 1
        bindings = next_bindings
        if not bindings:
            break
    metrics.output_tuples = len(bindings)
    return bindings


def clause_iteration_execute(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    metrics: Optional[ExecutionMetrics] = None,
    max_bindings: Optional[int] = None,
) -> List[Binding]:
    """SHARD-style clause iteration: one full-data scan-and-join per clause."""
    metrics = metrics if metrics is not None else ExecutionMetrics()
    graph_size = len(graph)
    bindings: List[Binding] = [{}]
    for pattern in patterns:
        # Every clause is a MapReduce job over the complete data set.
        metrics.record_scan("graph", graph_size)
        clause_bindings: List[Binding] = []
        for triple in graph:
            extended = _extend(pattern, {}, triple)
            if extended is not None:
                clause_bindings.append(extended)
        # Reduce phase: hash join of the clause bindings with the current set
        # on their shared variables.
        pattern_variables = {v.name for v in pattern.variables()}
        current_variables = set().union(*(b.keys() for b in bindings)) if bindings and bindings[0] else set()
        shared = sorted(pattern_variables & current_variables)
        next_bindings: List[Binding] = []
        comparisons = 0
        if shared:
            buckets: Dict[Tuple, List[Binding]] = {}
            for clause_binding in clause_bindings:
                buckets.setdefault(tuple(clause_binding[v] for v in shared), []).append(clause_binding)
            for binding in bindings:
                bucket = buckets.get(tuple(binding[v] for v in shared), [])
                comparisons += len(bucket)
                for clause_binding in bucket:
                    merged = dict(binding)
                    merged.update(clause_binding)
                    next_bindings.append(merged)
        else:
            for binding in bindings:
                for clause_binding in clause_bindings:
                    comparisons += 1
                    merged = dict(binding)
                    merged.update(clause_binding)
                    next_bindings.append(merged)
        metrics.record_join(len(bindings), len(clause_bindings), comparisons, len(next_bindings))
        if max_bindings is not None and len(next_bindings) > max_bindings:
            raise ResultSizeExceeded(f"intermediate result exceeded {max_bindings} bindings")
        bindings = next_bindings
        if not bindings:
            # SHARD still runs the remaining jobs; account for their scans.
            for _ in range(len(patterns) - patterns.index(pattern) - 1):
                metrics.record_scan("graph", graph_size)
            break
    metrics.output_tuples = len(bindings)
    return bindings
