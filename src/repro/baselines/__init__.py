"""Competitor systems re-implemented over the same substrate (Sec. 7 setup).

Every engine implements the :class:`~repro.baselines.base.SparqlEngine`
interface (``load`` a graph, ``query`` a SPARQL string) and returns both the
actual solution bindings and a simulated runtime derived from the work it had
to do under its own architecture's cost model:

* :class:`~repro.baselines.s2rdf_engine.S2RDFExtVPEngine` /
  :class:`~repro.baselines.s2rdf_engine.S2RDFVPEngine` — the paper's system
  over ExtVP and plain VP.
* :class:`~repro.baselines.mapreduce.ShardEngine` — SHARD's clause-iteration
  MapReduce execution (one job per triple pattern, full-data scans).
* :class:`~repro.baselines.mapreduce.PigSparqlEngine` — PigSPARQL's VP storage
  with multi-join MapReduce jobs.
* :class:`~repro.baselines.sempala.SempalaEngine` — Sempala's unified property
  table on an Impala-like MPP engine.
* :class:`~repro.baselines.hbase.H2RDFPlusEngine` — H2RDF+'s six HBase indexes
  with adaptive centralized / MapReduce execution.
* :class:`~repro.baselines.virtuoso.VirtuosoEngine` — a centralized six-index
  store (Virtuoso-like), with cold and warm cache variants.
"""

from repro.baselines.base import EngineResult, LoadReport, SparqlEngine, UnsupportedQueryError
from repro.baselines.s2rdf_engine import S2RDFExtVPEngine, S2RDFVPEngine
from repro.baselines.mapreduce import PigSparqlEngine, ShardEngine
from repro.baselines.sempala import SempalaEngine
from repro.baselines.hbase import H2RDFPlusEngine
from repro.baselines.virtuoso import VirtuosoEngine

ALL_ENGINE_CLASSES = [
    S2RDFExtVPEngine,
    S2RDFVPEngine,
    H2RDFPlusEngine,
    SempalaEngine,
    PigSparqlEngine,
    ShardEngine,
    VirtuosoEngine,
]

__all__ = [
    "EngineResult",
    "LoadReport",
    "SparqlEngine",
    "UnsupportedQueryError",
    "S2RDFExtVPEngine",
    "S2RDFVPEngine",
    "PigSparqlEngine",
    "ShardEngine",
    "SempalaEngine",
    "H2RDFPlusEngine",
    "VirtuosoEngine",
    "ALL_ENGINE_CLASSES",
]
