"""MapReduce-based engines: SHARD and PigSPARQL.

Both systems execute joins as MapReduce jobs, so every query pays a fixed
multi-second latency per job regardless of selectivity — the reason the paper
groups them as "not able to provide interactive query runtimes".

* SHARD uses clause iteration: one MapReduce job per triple pattern, each of
  which scans the complete data set stored in HDFS.
* PigSPARQL stores VP tables in HDFS and compiles queries to Pig Latin; its
  multi-join optimisation processes several triple patterns that join on the
  same variable within a single MapReduce job.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Set, Union

from repro.baselines.base import EngineResult, LoadReport, SparqlEngine, UnsupportedQueryError
from repro.baselines.binding_iteration import (
    ResultSizeExceeded,
    bindings_to_relation,
    clause_iteration_execute,
    index_nested_loop_execute,
)
from repro.engine.cluster import MapReduceCostModel
from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation
from repro.engine.storage import HdfsSimulator
from repro.rdf.graph import Graph
from repro.rdf.terms import Variable
from repro.sparql.algebra import Query, TriplePattern


def _multi_join_job_count(patterns: List[TriplePattern]) -> int:
    """Number of MapReduce jobs PigSPARQL needs for a BGP.

    Patterns that join on the same variable are grouped into one multi-join
    job; a new job starts whenever the join variable changes.
    """
    if len(patterns) <= 1:
        return 1
    jobs = 0
    seen_variables: Set[str] = set()
    current_join_variable: Optional[str] = None
    for pattern in patterns:
        variables = {v.name for v in pattern.variables()}
        shared = variables & seen_variables
        if not seen_variables:
            seen_variables |= variables
            continue
        join_variable = sorted(shared)[0] if shared else None
        if join_variable is None or join_variable != current_join_variable:
            jobs += 1
            current_join_variable = join_variable
        seen_variables |= variables
    return max(1, jobs)


class ShardEngine(SparqlEngine):
    """SHARD: triples grouped by subject in HDFS, clause-iteration MapReduce."""

    name = "SHARD"

    _load_seconds_per_triple = 1.1e-6

    def __init__(
        self,
        cost_model: Optional[MapReduceCostModel] = None,
        max_bindings: int = 2_000_000,
        work_scale: float = 1.0,
    ) -> None:
        self.cost_model = cost_model or MapReduceCostModel(job_overhead_ms=18000.0)
        self.max_bindings = max_bindings
        self.work_scale = work_scale
        self.graph: Optional[Graph] = None
        self.hdfs = HdfsSimulator()

    def load(self, graph: Graph) -> LoadReport:
        start = time.perf_counter()
        self.graph = graph
        relation = Relation(("s", "p", "o"), ((t.subject, t.predicate, t.object) for t in graph))
        # SHARD stores plain text lines grouped by subject (no columnar encoding).
        self.hdfs.write_text("shard/triples.txt", relation)
        wallclock = time.perf_counter() - start
        return LoadReport(
            engine=self.name,
            triples=len(graph),
            tuples_stored=len(graph),
            table_count=1,
            hdfs_bytes=self.hdfs.total_bytes(),
            simulated_load_seconds=len(graph) * self._load_seconds_per_triple,
            wallclock_seconds=wallclock,
        )

    def query(self, query: Union[str, Query]) -> EngineResult:
        if self.graph is None:
            raise RuntimeError("call load() before query()")
        parsed = self.parse(query)
        bgp = self.extract_single_bgp(parsed)
        metrics = ExecutionMetrics()
        try:
            bindings = clause_iteration_execute(self.graph, list(bgp.patterns), metrics, max_bindings=self.max_bindings)
        except ResultSizeExceeded as exc:
            return EngineResult(
                engine=self.name,
                relation=Relation.empty(tuple(sorted(v.name for v in bgp.variables()))),
                simulated_runtime_ms=float("inf"),
                metrics=metrics,
                execution_mode="mapreduce/clause-iteration",
                failed=True,
                failure_reason=str(exc),
            )
        variables = sorted({v.name for p in bgp.patterns for v in p.variables()})
        relation = bindings_to_relation(bindings, variables)
        relation = self.apply_solution_modifiers(parsed, relation)
        runtime = self.cost_model.runtime_ms(metrics.scaled(self.work_scale), jobs=len(bgp.patterns))
        return EngineResult(
            engine=self.name,
            relation=relation,
            simulated_runtime_ms=runtime,
            metrics=metrics,
            execution_mode="mapreduce/clause-iteration",
        )


class PigSparqlEngine(SparqlEngine):
    """PigSPARQL: VP storage in HDFS, Pig Latin multi-join MapReduce jobs."""

    name = "PigSPARQL"

    _load_seconds_per_triple = 4.5e-7

    def __init__(
        self,
        cost_model: Optional[MapReduceCostModel] = None,
        max_bindings: int = 5_000_000,
        work_scale: float = 1.0,
    ) -> None:
        self.cost_model = cost_model or MapReduceCostModel(job_overhead_ms=15000.0)
        self.max_bindings = max_bindings
        self.work_scale = work_scale
        self.graph: Optional[Graph] = None
        self.hdfs = HdfsSimulator()

    def load(self, graph: Graph) -> LoadReport:
        start = time.perf_counter()
        self.graph = graph
        tuples = 0
        for predicate in graph.predicates():
            relation = Relation(("s", "o"), graph.subject_object_pairs(predicate))
            self.hdfs.write_text(f"pigsparql/{predicate.local_name()}.txt", relation)
            tuples += len(relation)
        wallclock = time.perf_counter() - start
        return LoadReport(
            engine=self.name,
            triples=len(graph),
            tuples_stored=tuples,
            table_count=len(graph.predicates()),
            hdfs_bytes=self.hdfs.total_bytes(),
            simulated_load_seconds=len(graph) * self._load_seconds_per_triple,
            wallclock_seconds=wallclock,
        )

    def query(self, query: Union[str, Query]) -> EngineResult:
        if self.graph is None:
            raise RuntimeError("call load() before query()")
        parsed = self.parse(query)
        bgp = self.extract_single_bgp(parsed)
        patterns = list(bgp.patterns)
        metrics = ExecutionMetrics()

        # PigSPARQL reads the VP relation of every pattern's predicate from
        # disk (no ExtVP reduction), then joins with MapReduce jobs.
        for pattern in patterns:
            if isinstance(pattern.predicate, Variable):
                metrics.record_scan("triples", len(self.graph))
            else:
                metrics.record_scan(pattern.predicate.local_name(), self.graph.predicate_count(pattern.predicate))
        try:
            bindings = index_nested_loop_execute(
                self.graph, patterns, metrics, reorder=True, max_bindings=self.max_bindings
            )
        except ResultSizeExceeded as exc:
            return EngineResult(
                engine=self.name,
                relation=Relation.empty(tuple(sorted(v.name for v in bgp.variables()))),
                simulated_runtime_ms=float("inf"),
                metrics=metrics,
                execution_mode="mapreduce/pig",
                failed=True,
                failure_reason=str(exc),
            )
        variables = sorted({v.name for p in patterns for v in p.variables()})
        relation = bindings_to_relation(bindings, variables)
        relation = self.apply_solution_modifiers(parsed, relation)
        # Shuffle volume: each join shuffles its inputs (VP relations and
        # intermediate results).
        metrics.shuffled_tuples = max(metrics.shuffled_tuples, metrics.input_tuples + metrics.intermediate_tuples)
        jobs = _multi_join_job_count(patterns)
        runtime = self.cost_model.runtime_ms(metrics.scaled(self.work_scale), jobs=jobs)
        return EngineResult(
            engine=self.name,
            relation=relation,
            simulated_runtime_ms=runtime,
            metrics=metrics,
            execution_mode=f"mapreduce/pig ({jobs} jobs)",
        )
