"""S2RDF as an engine in the comparison (ExtVP and plain VP variants)."""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.baselines.base import EngineResult, LoadReport, SparqlEngine
from repro.core.session import S2RDFSession
from repro.engine.cluster import SparkCostModel
from repro.rdf.graph import Graph
from repro.sparql.algebra import Query


class S2RDFExtVPEngine(SparqlEngine):
    """S2RDF over the ExtVP layout (the paper's system)."""

    name = "S2RDF ExtVP"

    #: Simulated per-tuple costs for the load phase: the ExtVP build performs
    #: one semi-join per correlated predicate pair, which dominates load time.
    _load_seconds_per_vp_tuple = 3.0e-7
    _load_seconds_per_semijoin_tuple = 4.5e-6

    def __init__(
        self,
        selectivity_threshold: float = 1.0,
        cost_model: Optional[SparkCostModel] = None,
        work_scale: float = 1.0,
    ) -> None:
        self.selectivity_threshold = selectivity_threshold
        self.cost_model = cost_model or SparkCostModel()
        self.work_scale = work_scale
        self.session: Optional[S2RDFSession] = None

    # ------------------------------------------------------------------ #
    def load(self, graph: Graph) -> LoadReport:
        start = time.perf_counter()
        self.session = S2RDFSession.from_graph(
            graph,
            selectivity_threshold=self.selectivity_threshold,
            use_extvp=True,
            cost_model=self.cost_model,
            work_scale=self.work_scale,
        )
        wallclock = time.perf_counter() - start
        summary = self.session.storage_summary()
        # The semi-join work is proportional to the VP tuples scanned per
        # correlated predicate pair; approximate it by the number of ExtVP
        # statistics entries times the average VP table size.
        layout = self.session.layout
        statistics_entries = len(layout.statistics)
        predicate_count = max(1, len(layout.vp.predicates()))
        average_vp = layout.vp.total_tuples() / predicate_count
        simulated_load = (
            summary["vp_tuples"] * self._load_seconds_per_vp_tuple
            + statistics_entries * average_vp * self._load_seconds_per_semijoin_tuple
        )
        return LoadReport(
            engine=self.name,
            triples=len(graph),
            tuples_stored=summary["total_tuples"],
            table_count=summary["table_counts"]["total"],
            hdfs_bytes=summary["hdfs_bytes"],
            simulated_load_seconds=simulated_load,
            wallclock_seconds=wallclock,
        )

    def query(self, query: Union[str, Query]) -> EngineResult:
        if self.session is None:
            raise RuntimeError("call load() before query()")
        result = self.session.query(query)
        return EngineResult(
            engine=self.name,
            relation=result.relation,
            simulated_runtime_ms=result.simulated_runtime_ms,
            metrics=result.metrics,
            execution_mode="spark-sql/extvp",
        )


class S2RDFVPEngine(SparqlEngine):
    """S2RDF restricted to plain VP tables (the paper's "S2RDF VP" rows)."""

    name = "S2RDF VP"

    _load_seconds_per_tuple = 9.0e-7

    def __init__(self, cost_model: Optional[SparkCostModel] = None, work_scale: float = 1.0) -> None:
        self.cost_model = cost_model or SparkCostModel()
        self.work_scale = work_scale
        self.session: Optional[S2RDFSession] = None

    def load(self, graph: Graph) -> LoadReport:
        start = time.perf_counter()
        self.session = S2RDFSession.from_graph(
            graph, use_extvp=False, cost_model=self.cost_model, work_scale=self.work_scale
        )
        wallclock = time.perf_counter() - start
        summary = self.session.storage_summary()
        return LoadReport(
            engine=self.name,
            triples=len(graph),
            tuples_stored=summary["vp_tuples"],
            table_count=summary["table_counts"]["vp"],
            hdfs_bytes=summary["hdfs_bytes"],
            simulated_load_seconds=len(graph) * self._load_seconds_per_tuple,
            wallclock_seconds=wallclock,
        )

    def query(self, query: Union[str, Query]) -> EngineResult:
        if self.session is None:
            raise RuntimeError("call load() before query()")
        result = self.session.query(query)
        return EngineResult(
            engine=self.name,
            relation=result.relation,
            simulated_runtime_ms=result.simulated_runtime_ms,
            metrics=result.metrics,
            execution_mode="spark-sql/vp",
        )
