"""Store health inspector: ``python -m repro.tools.inspect <dataset>``.

Reads a persisted dataset's manifest (and, when present, its query journal)
without loading a single table row, and reports the numbers an operator needs
to decide whether the store is healthy:

* manifest epoch, bucket count, dictionary size (terms and bytes on disk);
* per-table base vs. delta segment and byte counts — deltas are the part of
  the table appends have not yet folded back into tight base segments;
* write amplification: stored bytes per logical triple;
* zone-map tightness (static): the mean fraction of the dictionary id space a
  base segment's zone covers — wide zones cannot prune;
* observed pruning effectiveness, from the dataset's journal when one exists;
* a compaction recommendation per table that has accumulated enough deltas.

Everything comes from ``MANIFEST.json`` plus ``os.path.getsize``, so the
inspector is safe to run against a live dataset of any size.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.journal import read_dataset_journal
from repro.store.format import Manifest, TableEntry, dictionary_path, read_manifest

#: Recommend compaction once a table holds at least this many delta segments
#: (matches the session's default ``compaction_threshold``).
DEFAULT_DELTA_SEGMENT_THRESHOLD = 2

#: ...or once deltas hold more than this fraction of the table's bytes.
DELTA_BYTES_FRACTION_THRESHOLD = 0.5


@dataclass
class TableHealth:
    """Per-table storage health derived from its manifest entry."""

    name: str
    rows: int
    base_rows: int
    delta_rows: int
    base_segments: int
    delta_segments: int
    base_bytes: int
    delta_bytes: int
    #: Mean fraction of the dictionary id space covered by the zones of the
    #: table's base segments (0 = perfectly tight, 1 = unprunable); ``None``
    #: for delta-only tables.
    zone_width_fraction: Optional[float]
    needs_compaction: bool
    compaction_reason: str = ""

    @property
    def total_bytes(self) -> int:
        return self.base_bytes + self.delta_bytes

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "rows": self.rows,
            "base_rows": self.base_rows,
            "delta_rows": self.delta_rows,
            "base_segments": self.base_segments,
            "delta_segments": self.delta_segments,
            "base_bytes": self.base_bytes,
            "delta_bytes": self.delta_bytes,
            "zone_width_fraction": (
                round(self.zone_width_fraction, 4)
                if self.zone_width_fraction is not None
                else None
            ),
            "needs_compaction": self.needs_compaction,
            "compaction_reason": self.compaction_reason,
        }


@dataclass
class StoreHealthReport:
    """The inspector's full output; ``as_dict``/``render_text`` for consumers."""

    path: str
    format_version: int
    append_epoch: int
    num_buckets: int
    table_count: int
    statistics_only_count: int
    dictionary_terms: int
    dictionary_bytes: int
    total_bytes: int
    base_bytes: int
    delta_bytes: int
    triples: int
    #: Stored bytes per logical triple (all tables, VP/ExtVP redundancy
    #: included) — the store's overall write amplification.
    bytes_per_triple: float
    tables: List[TableHealth] = field(default_factory=list)
    compaction_candidates: List[str] = field(default_factory=list)
    journal_records: int = 0
    journal_files: int = 0
    #: Observed fraction of store segments pruned across journaled queries
    #: (``None`` when no journaled query scanned stored segments).
    observed_prune_fraction: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "format_version": self.format_version,
            "append_epoch": self.append_epoch,
            "num_buckets": self.num_buckets,
            "table_count": self.table_count,
            "statistics_only_count": self.statistics_only_count,
            "dictionary_terms": self.dictionary_terms,
            "dictionary_bytes": self.dictionary_bytes,
            "total_bytes": self.total_bytes,
            "base_bytes": self.base_bytes,
            "delta_bytes": self.delta_bytes,
            "triples": self.triples,
            "bytes_per_triple": round(self.bytes_per_triple, 2),
            "tables": [table.as_dict() for table in self.tables],
            "compaction_candidates": list(self.compaction_candidates),
            "journal_records": self.journal_records,
            "journal_files": self.journal_files,
            "observed_prune_fraction": (
                round(self.observed_prune_fraction, 4)
                if self.observed_prune_fraction is not None
                else None
            ),
        }

    def render_text(self, top_tables: int = 10) -> str:
        lines = [
            f"== Store health: {self.path} ==",
            f"format v{self.format_version}; manifest epoch {self.append_epoch}; "
            f"{self.num_buckets} bucket(s)",
            f"tables: {self.table_count} materialized "
            f"(+{self.statistics_only_count} statistics-only)",
            f"dictionary: {self.dictionary_terms} terms, {self.dictionary_bytes} bytes",
            f"stored bytes: {self.total_bytes} "
            f"(base {self.base_bytes}, delta {self.delta_bytes})",
            f"write amplification: {self.bytes_per_triple:.1f} bytes/triple "
            f"over {self.triples} triples",
        ]
        if self.observed_prune_fraction is not None:
            lines.append(
                f"observed zone-map pruning: {self.observed_prune_fraction:.1%} of "
                f"segments skipped (journaled queries)"
            )
        if self.journal_records:
            lines.append(
                f"query journal: {self.journal_records} record(s) in "
                f"{self.journal_files} file(s)"
            )
        else:
            lines.append("query journal: empty")
        shown = sorted(self.tables, key=lambda t: (-t.total_bytes, t.name))[:top_tables]
        lines.append("")
        lines.append(f"Largest tables (top {len(shown)} of {len(self.tables)}):")
        for table in shown:
            zone = (
                f"zone width {table.zone_width_fraction:.1%}"
                if table.zone_width_fraction is not None
                else "no base segments"
            )
            lines.append(
                f"  {table.name}: {table.rows} rows, "
                f"{table.base_segments}+{table.delta_segments} segments, "
                f"{table.total_bytes} bytes, {zone}"
            )
        lines.append("")
        if self.compaction_candidates:
            lines.append(f"Compaction recommended for {len(self.compaction_candidates)} table(s):")
            for name in self.compaction_candidates:
                table = next(t for t in self.tables if t.name == name)
                lines.append(f"  {name}: {table.compaction_reason}")
        else:
            lines.append("Compaction: not needed (no table holds enough deltas)")
        return "\n".join(lines)


def _zone_width_fraction(entry: TableEntry, dictionary_terms: int) -> Optional[float]:
    """Mean id-space coverage of the table's base-segment zone maps."""
    if not entry.partitions or dictionary_terms <= 0:
        return None
    widths: List[float] = []
    for partition in entry.partitions:
        for zone in partition.zones.values():
            if zone.row_count == 0 or zone.max_id < zone.min_id:
                continue
            widths.append((zone.max_id - zone.min_id + 1) / dictionary_terms)
    if not widths:
        return None
    return sum(widths) / len(widths)


def _table_health(
    entry: TableEntry,
    dictionary_terms: int,
    delta_segment_threshold: int,
) -> TableHealth:
    base_bytes = entry.base_bytes()
    delta_bytes = entry.delta_bytes()
    needs = False
    reason = ""
    if len(entry.deltas) >= delta_segment_threshold:
        needs = True
        reason = f"{len(entry.deltas)} delta segments (threshold {delta_segment_threshold})"
    elif entry.deltas and base_bytes and delta_bytes > DELTA_BYTES_FRACTION_THRESHOLD * (
        base_bytes + delta_bytes
    ):
        needs = True
        reason = (
            f"deltas hold {delta_bytes / (base_bytes + delta_bytes):.0%} of the "
            "table's bytes"
        )
    return TableHealth(
        name=entry.name,
        rows=entry.row_count,
        base_rows=entry.base_row_count(),
        delta_rows=entry.delta_row_count(),
        base_segments=len(entry.partitions),
        delta_segments=len(entry.deltas),
        base_bytes=base_bytes,
        delta_bytes=delta_bytes,
        zone_width_fraction=_zone_width_fraction(entry, dictionary_terms),
        needs_compaction=needs,
        compaction_reason=reason,
    )


def inspect_dataset(
    path: str,
    delta_segment_threshold: int = DEFAULT_DELTA_SEGMENT_THRESHOLD,
) -> StoreHealthReport:
    """Build a :class:`StoreHealthReport` from a dataset directory."""
    manifest: Manifest = read_manifest(path)
    tables = [
        _table_health(entry, manifest.dictionary_size, delta_segment_threshold)
        for entry in manifest.tables.values()
    ]
    tables.sort(key=lambda t: t.name)
    base_bytes = sum(t.base_bytes for t in tables)
    delta_bytes = sum(t.delta_bytes for t in tables)
    total_bytes = base_bytes + delta_bytes
    triples_entry = manifest.tables.get("triples")
    triples = triples_entry.row_count if triples_entry is not None else 0

    dict_file = dictionary_path(path)
    dictionary_bytes = os.path.getsize(dict_file) if os.path.isfile(dict_file) else 0

    records = read_dataset_journal(path)
    scanned = sum(r.segments_scanned for r in records)
    pruned = sum(r.segments_pruned for r in records)
    prune_fraction = pruned / (scanned + pruned) if (scanned + pruned) else None
    journal_dir = os.path.join(path, "journal")
    journal_files = (
        len([n for n in os.listdir(journal_dir) if n.endswith(".jsonl")])
        if os.path.isdir(journal_dir)
        else 0
    )

    return StoreHealthReport(
        path=path,
        format_version=manifest.format_version,
        append_epoch=manifest.append_epoch,
        num_buckets=manifest.num_buckets,
        table_count=len(manifest.tables),
        statistics_only_count=len(manifest.statistics_only),
        dictionary_terms=manifest.dictionary_size,
        dictionary_bytes=dictionary_bytes,
        total_bytes=total_bytes,
        base_bytes=base_bytes,
        delta_bytes=delta_bytes,
        triples=triples,
        bytes_per_triple=(total_bytes / triples) if triples else 0.0,
        tables=tables,
        compaction_candidates=[t.name for t in tables if t.needs_compaction],
        journal_records=len(records),
        journal_files=journal_files,
        observed_prune_fraction=prune_fraction,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.inspect",
        description="Inspect the storage health of a persisted S2RDF dataset.",
    )
    parser.add_argument("dataset", help="path to a dataset directory (holds MANIFEST.json)")
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    parser.add_argument(
        "--top-tables", type=int, default=10, help="tables shown in the text report"
    )
    parser.add_argument(
        "--delta-threshold",
        type=int,
        default=DEFAULT_DELTA_SEGMENT_THRESHOLD,
        help="delta segments per table before compaction is recommended",
    )
    args = parser.parse_args(argv)
    report = inspect_dataset(args.dataset, delta_segment_threshold=args.delta_threshold)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text(top_tables=args.top_tables))
    return 0


if __name__ == "__main__":
    sys.exit(main())
