"""Operator-facing command-line tools.

* ``python -m repro.tools.inspect <dataset>`` — store health inspector:
  manifest epoch, per-table base/delta segment and byte counts, zone-map
  tightness, dictionary size, write amplification, journal activity and a
  compaction recommendation.

Submodules are imported lazily: eagerly importing them here would trigger
runpy's double-import warning every time a tool runs via ``python -m``.
"""

from typing import Any

__all__ = ["StoreHealthReport", "TableHealth", "inspect_dataset"]


def __getattr__(name: str) -> Any:
    if name in __all__:
        from repro.tools import inspect as _inspect

        return getattr(_inspect, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
