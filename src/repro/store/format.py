"""On-disk layout of a persistent S2RDF dataset.

A dataset is a directory::

    <dataset>/
        MANIFEST.json          -- catalog, statistics, zone maps, config
        dictionary.nt          -- dataset-wide term dictionary, one N3 term
                                  per line; the line number is the term id
        tables/<name>/part-00000.seg
        tables/<name>/part-00001.seg
        tables/<name>/delta-00001-00000.seg
        ...

Each ``part-*.seg`` file is one *base* hash bucket of one table: rows whose
partition-key values hash (via the runtime's
:func:`~repro.engine.runtime.partitioner.key_partition_index`) to that bucket
index.  ``delta-<epoch>-<bucket>.seg`` files hold rows appended after the
dataset was written (one append *epoch* per
:meth:`~repro.store.writer.DatasetAppender.append` call); they are bucketed
with the same hash function, so bucket ``i``'s logical content is its base
segment plus every delta segment tagged with bucket ``i``.  Inside a segment
file every column is stored as a dictionary-encoded, run-length-encoded page
(:func:`repro.engine.storage.encode_id_column`); the per-column
:class:`~repro.engine.storage.ZoneMap` entries live in the manifest so that
scans can prune whole segments — base or delta — without opening the files.

The term dictionary is append-only: an append extends ``dictionary.nt`` with
new terms, never renumbering existing ids, so base segments stay valid
verbatim.  Compaction (:class:`~repro.store.writer.DatasetCompactor`) merges
a table's delta segments back into full base bucket segments with freshly
computed zone maps.

The manifest also persists everything the query compiler needs to come back
cold: table statistics (including the paper's statistics-only entries for
empty ExtVP tables), the VP predicate map, the ExtVP correlation statistics
and the layout configuration.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.storage import ZoneMap, decode_id_column, decode_id_column_array
from repro.rdf.terms import Literal, Term, XSD_STRING, term_from_string

#: Bumped whenever the directory layout or segment encoding changes.
#: Version 2 added delta segments (incremental appends) and per-table bucket
#: counts to the manifest.
FORMAT_VERSION = 2

MANIFEST_FILE = "MANIFEST.json"
DICTIONARY_FILE = "dictionary.nt"
TABLES_DIR = "tables"

_SEGMENT_MAGIC = b"S2CS"
_SEGMENT_HEADER = struct.Struct("<HH")  # format version, column count
_COLUMN_HEADER = struct.Struct("<HI")  # name byte length, payload byte length


class DatasetFormatError(ValueError):
    """Raised when a dataset directory cannot be read back."""


def manifest_path(root: str) -> str:
    return os.path.join(root, MANIFEST_FILE)


def dictionary_path(root: str) -> str:
    return os.path.join(root, DICTIONARY_FILE)


def table_dir(root: str, table_name: str) -> str:
    return os.path.join(root, TABLES_DIR, table_name)


def segment_file_name(partition_index: int) -> str:
    return f"part-{partition_index:05d}.seg"


def delta_file_name(epoch: int, bucket_index: int) -> str:
    """Name of one delta segment: epoch first so listings sort by append order."""
    return f"delta-{epoch:05d}-{bucket_index:05d}.seg"


def compacted_file_name(epoch: int, bucket_index: int) -> str:
    """Name of a base segment rewritten by compaction at generation ``epoch``.

    Distinct from the file the previous manifest references, so the old
    manifest stays fully valid until the new one is atomically swapped in;
    the superseded files are deleted only after that commit.
    """
    return f"part-{epoch:05d}-{bucket_index:05d}.seg"


# --------------------------------------------------------------------- #
# Segment files
# --------------------------------------------------------------------- #
def write_segment_file(path: str, pages: Sequence[Tuple[str, bytes]]) -> int:
    """Write one segment file of ``(column_name, encoded_page)`` pairs.

    Returns the number of bytes written.
    """
    parts: List[bytes] = [_SEGMENT_MAGIC, _SEGMENT_HEADER.pack(FORMAT_VERSION, len(pages))]
    for name, payload in pages:
        encoded_name = name.encode("utf-8")
        parts.append(_COLUMN_HEADER.pack(len(encoded_name), len(payload)))
        parts.append(encoded_name)
        parts.append(payload)
    data = b"".join(parts)
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


def _read_segment_pages(path: str, columns: Optional[Sequence[str]], decoder) -> Dict[str, Any]:
    wanted = set(columns) if columns is not None else None
    with open(path, "rb") as handle:
        data = handle.read()
    if data[: len(_SEGMENT_MAGIC)] != _SEGMENT_MAGIC:
        raise DatasetFormatError(f"{path} is not a dataset segment file")
    offset = len(_SEGMENT_MAGIC)
    version, column_count = _SEGMENT_HEADER.unpack_from(data, offset)
    if version != FORMAT_VERSION:
        raise DatasetFormatError(f"{path} has format version {version}, expected {FORMAT_VERSION}")
    offset += _SEGMENT_HEADER.size
    decoded: Dict[str, Any] = {}
    for _ in range(column_count):
        name_length, payload_length = _COLUMN_HEADER.unpack_from(data, offset)
        offset += _COLUMN_HEADER.size
        name = data[offset : offset + name_length].decode("utf-8")
        offset += name_length
        payload = data[offset : offset + payload_length]
        offset += payload_length
        if wanted is None or name in wanted:
            decoded[name] = decoder(payload)
    if wanted is not None:
        missing = wanted - set(decoded)
        if missing:
            raise DatasetFormatError(f"{path} lacks columns {sorted(missing)}")
    return decoded


def read_segment_file(path: str, columns: Optional[Sequence[str]] = None) -> Dict[str, List[int]]:
    """Read a segment file back into ``{column_name: ids}``.

    ``columns`` restricts decoding to the named columns (projection pushdown):
    pages of other columns are skipped without RLE expansion.
    """
    return _read_segment_pages(path, columns, decode_id_column)


def read_segment_arrays(path: str, columns: Optional[Sequence[str]] = None) -> Dict[str, Any]:
    """Read a segment file into flat ``array('q')`` id columns.

    The vectorized counterpart of :func:`read_segment_file`: same layout,
    same projection pushdown, but each page expands via
    :func:`~repro.engine.storage.decode_id_column_array` so the scan hands
    the executor packed buffers instead of Python integer lists.
    """
    return _read_segment_pages(path, columns, decode_id_column_array)


# --------------------------------------------------------------------- #
# Dictionary file
# --------------------------------------------------------------------- #
def encode_term_line(term: Term) -> str:
    """Lossless single-line encoding of one dictionary term.

    Two fixes over plain ``term.n3()``:

    * ``n3()`` canonically suppresses ``^^xsd:string``, which would collapse
      ``Literal("5", xsd:string)`` and ``Literal("5")`` into one dictionary
      entry and change decoded terms after a roundtrip — the datatype is kept
      explicit here;
    * ``n3()`` escapes ``\\n`` but not ``\\r`` (or other Unicode line
      separators), which would shift every later term id when the file is
      split back into lines — the whole line is therefore armoured with
      ``unicode_escape``, leaving pure single-line ASCII.
    """
    n3 = term.n3()
    if isinstance(term, Literal) and term.datatype == XSD_STRING:
        n3 += f"^^<{XSD_STRING}>"
    return n3.encode("unicode_escape").decode("ascii")


def decode_term_line(line: str) -> Term:
    """Inverse of :func:`encode_term_line`."""
    return term_from_string(line.encode("ascii").decode("unicode_escape"))


def write_dictionary(root: str, terms: Sequence[Term]) -> int:
    """Write the dataset dictionary: line ``i`` encodes term ``i``."""
    path = dictionary_path(root)
    with open(path, "w", encoding="ascii", newline="\n") as handle:
        for term in terms:
            handle.write(encode_term_line(term))
            handle.write("\n")
    return os.path.getsize(path)


def rewrite_dictionary_lines(root: str, lines: Sequence[str]) -> None:
    """Rewrite the dictionary file from already-encoded lines.

    Used to repair a dictionary that carries uncommitted trailing lines from
    a crashed append: the committed prefix is rewritten verbatim (ids are
    line numbers and must not move), dropping the orphans so a retried
    append does not stack new terms behind them.
    """
    path = dictionary_path(root)
    temporary = path + ".tmp"
    with open(temporary, "w", encoding="ascii", newline="\n") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    os.replace(temporary, path)


def append_dictionary(root: str, terms: Sequence[Term]) -> int:
    """Append ``terms`` to the dictionary file, returning the bytes added.

    The dictionary is strictly append-only: existing lines (and therefore
    existing term ids, which are line numbers) are never rewritten, so every
    already-written segment keeps decoding to the same terms after an append.
    The caller must have verified the file holds exactly the committed lines
    (see :func:`rewrite_dictionary_lines`), or the new ids will not match
    their line numbers.
    """
    if not terms:
        return 0
    path = dictionary_path(root)
    before = os.path.getsize(path)
    with open(path, "a", encoding="ascii", newline="\n") as handle:
        for term in terms:
            handle.write(encode_term_line(term))
            handle.write("\n")
    return os.path.getsize(path) - before


class StoredTermDictionary:
    """Lazy view of a persisted term dictionary.

    Opening a dataset only reads the raw lines; terms are parsed on first
    :meth:`decode` and the reverse (term -> id) index is built on first
    :meth:`lookup`, keeping the cold-open path proportional to file I/O, not
    term parsing.
    """

    def __init__(self, lines: List[str], raw_line_count: Optional[int] = None) -> None:
        self._lines = lines
        self._terms: List[Optional[Term]] = [None] * len(lines)
        self._reverse: Optional[Dict[Term, int]] = None
        #: Lines physically present in the file, before truncation to the
        #: committed size — lets an appender detect (and repair) orphan lines
        #: left by a crashed predecessor.
        self.raw_line_count = raw_line_count if raw_line_count is not None else len(lines)

    @classmethod
    def open(cls, root: str, expected_size: Optional[int] = None) -> "StoredTermDictionary":
        with open(dictionary_path(root), "r", encoding="ascii", newline="\n") as handle:
            content = handle.read()
        # Terms are armoured single-line ASCII, so "\n" is the only separator.
        lines = content.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        raw_line_count = len(lines)
        if expected_size is not None:
            if len(lines) < expected_size:
                raise DatasetFormatError(
                    f"dictionary has {len(lines)} terms, manifest expects {expected_size}"
                )
            # The manifest is the commit point of an append: extra trailing
            # lines (a crash between the dictionary append and the manifest
            # rewrite) are unreferenced by any committed segment, so they are
            # dropped — decode of an id beyond the committed range must fail.
            del lines[expected_size:]
        return cls(lines, raw_line_count=raw_line_count)

    def committed_lines(self) -> List[str]:
        """The encoded lines of the committed id range (for crash repair)."""
        return list(self._lines)

    def __len__(self) -> int:
        return len(self._lines)

    def decode(self, term_id: int) -> Term:
        if not 0 <= term_id < len(self._lines):
            raise KeyError(f"unknown term id {term_id}")
        term = self._terms[term_id]
        if term is None:
            term = decode_term_line(self._lines[term_id])
            self._terms[term_id] = term
        return term

    def lookup(self, term: Term) -> Optional[int]:
        if self._reverse is None:
            self._reverse = {}
            for index in range(len(self._lines)):
                self._reverse[self.decode(index)] = index
        return self._reverse.get(term)


# --------------------------------------------------------------------- #
# Manifest entries
# --------------------------------------------------------------------- #
@dataclass
class PartitionEntry:
    """Manifest record of one base hash bucket of one table."""

    file: str  # path relative to the dataset root
    row_count: int
    size_bytes: int
    zones: Dict[str, ZoneMap]

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "row_count": self.row_count,
            "size_bytes": self.size_bytes,
            "zones": {column: zone.to_json() for column, zone in self.zones.items()},
        }

    @classmethod
    def from_json(cls, data: dict) -> "PartitionEntry":
        return cls(
            file=data["file"],
            row_count=data["row_count"],
            size_bytes=data["size_bytes"],
            zones={column: ZoneMap.from_json(z) for column, z in data["zones"].items()},
        )


@dataclass
class DeltaEntry(PartitionEntry):
    """Manifest record of one appended delta segment.

    A delta holds rows added after the base segments were written.  It is
    hash-bucketed with the same function as the base partitions, so bucket
    ``bucket``'s logical content is the base segment plus every delta tagged
    with that bucket index; ``epoch`` is the append generation that produced
    it (used for deterministic file naming and ordering).
    """

    bucket: int = 0
    epoch: int = 0

    def to_json(self) -> dict:
        data = super().to_json()
        data["bucket"] = self.bucket
        data["epoch"] = self.epoch
        return data

    @classmethod
    def from_json(cls, data: dict) -> "DeltaEntry":
        return cls(
            file=data["file"],
            row_count=data["row_count"],
            size_bytes=data["size_bytes"],
            zones={column: ZoneMap.from_json(z) for column, z in data["zones"].items()},
            bucket=data["bucket"],
            epoch=data["epoch"],
        )


@dataclass
class TableEntry:
    """Manifest record of one stored table (base segments plus deltas)."""

    name: str
    columns: Tuple[str, ...]
    #: Total logical rows: base partitions plus all delta segments.
    row_count: int
    selectivity: float
    distinct_subjects: int
    distinct_objects: int
    partition_keys: Tuple[str, ...]
    #: Hash bucket count.  ``partitions`` either has exactly this many entries
    #: or is empty (a delta-only table created by an append).
    num_buckets: int = 0
    partitions: List[PartitionEntry] = field(default_factory=list)
    deltas: List[DeltaEntry] = field(default_factory=list)

    @property
    def num_partitions(self) -> int:
        """Bucket count of the table's physical layout (base and deltas alike)."""
        return self.num_buckets if self.num_buckets else len(self.partitions)

    @property
    def has_deltas(self) -> bool:
        return bool(self.deltas)

    def segments_for_bucket(self, bucket: int) -> List[PartitionEntry]:
        """Base segment (if any) then deltas of ``bucket``, in append order."""
        segments: List[PartitionEntry] = []
        if bucket < len(self.partitions):
            segments.append(self.partitions[bucket])
        segments.extend(delta for delta in self.deltas if delta.bucket == bucket)
        return segments

    def segment_count(self) -> int:
        return len(self.partitions) + len(self.deltas)

    def base_row_count(self) -> int:
        return sum(partition.row_count for partition in self.partitions)

    def delta_row_count(self) -> int:
        return sum(delta.row_count for delta in self.deltas)

    def base_bytes(self) -> int:
        return sum(partition.size_bytes for partition in self.partitions)

    def delta_bytes(self) -> int:
        return sum(delta.size_bytes for delta in self.deltas)

    def total_bytes(self) -> int:
        return self.base_bytes() + self.delta_bytes()

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "columns": list(self.columns),
            "row_count": self.row_count,
            "selectivity": self.selectivity,
            "distinct_subjects": self.distinct_subjects,
            "distinct_objects": self.distinct_objects,
            "partition_keys": list(self.partition_keys),
            "num_buckets": self.num_buckets,
            "partitions": [partition.to_json() for partition in self.partitions],
            "deltas": [delta.to_json() for delta in self.deltas],
        }

    @classmethod
    def from_json(cls, data: dict) -> "TableEntry":
        # Plain indexing on the v2-only keys: version 1 manifests are rejected
        # wholesale by Manifest.from_json, so a missing key here is a
        # malformed manifest that must fail loudly, not default silently.
        return cls(
            name=data["name"],
            columns=tuple(data["columns"]),
            row_count=data["row_count"],
            selectivity=data["selectivity"],
            distinct_subjects=data["distinct_subjects"],
            distinct_objects=data["distinct_objects"],
            partition_keys=tuple(data["partition_keys"]),
            num_buckets=data["num_buckets"],
            partitions=[PartitionEntry.from_json(p) for p in data["partitions"]],
            deltas=[DeltaEntry.from_json(d) for d in data["deltas"]],
        )


@dataclass
class Manifest:
    """Everything needed to reopen a dataset without touching the source graph."""

    format_version: int
    layout_name: str
    num_buckets: int
    selectivity_threshold: float
    include_oo: bool
    namespaces: Dict[str, str]
    dictionary_size: int
    tables: Dict[str, TableEntry]
    #: Statistics-only entries: tables that were never materialised (empty or
    #: filtered ExtVP tables) but whose statistics the compiler still uses.
    statistics_only: List[dict]
    #: predicate n3 -> {"table": vp table name, "size": row count}
    vp_tables: Dict[str, dict]
    #: ExtVP correlation statistics (materialised or not).
    extvp: List[dict]
    #: Build metadata of the original in-memory layout.
    build: dict
    #: Append generation counter: 0 for a freshly written dataset, incremented
    #: by every :meth:`~repro.store.writer.DatasetAppender.append` (delta file
    #: names embed it, so two appends never collide).
    append_epoch: int = 0
    #: Per-predicate distinct value sets, predicate n3 ->
    #: ``{"s": [subject ids], "o": [object ids]}``.  These let an append
    #: dedup its batch and maintain ExtVP statistics from the manifest alone,
    #: without re-reading any base segment; absent in datasets written before
    #: the field existed (appends then seed it by reading once).
    vp_value_sets: Dict[str, dict] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "format_version": self.format_version,
            "layout_name": self.layout_name,
            "num_buckets": self.num_buckets,
            "selectivity_threshold": self.selectivity_threshold,
            "include_oo": self.include_oo,
            "namespaces": self.namespaces,
            "dictionary_size": self.dictionary_size,
            "append_epoch": self.append_epoch,
            "tables": {name: entry.to_json() for name, entry in sorted(self.tables.items())},
            "statistics_only": self.statistics_only,
            "vp_tables": self.vp_tables,
            "extvp": self.extvp,
            "build": self.build,
            "vp_value_sets": self.vp_value_sets,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Manifest":
        version = data.get("format_version")
        if version != FORMAT_VERSION:
            raise DatasetFormatError(f"unsupported dataset format version {version!r}")
        return cls(
            format_version=version,
            layout_name=data.get("layout_name", "extvp"),
            num_buckets=data["num_buckets"],
            selectivity_threshold=data["selectivity_threshold"],
            include_oo=data["include_oo"],
            namespaces=data.get("namespaces", {}),
            dictionary_size=data["dictionary_size"],
            tables={name: TableEntry.from_json(entry) for name, entry in data["tables"].items()},
            statistics_only=data.get("statistics_only", []),
            vp_tables=data.get("vp_tables", {}),
            extvp=data.get("extvp", []),
            build=data.get("build", {}),
            append_epoch=data["append_epoch"],
            vp_value_sets=data.get("vp_value_sets", {}),
        )


def write_manifest(root: str, manifest: Manifest) -> None:
    # Compact separators and one-shot ``dumps`` (the C encoder; streaming
    # ``json.dump`` falls back to the pure-Python one): the manifest is
    # machine-read, has O(tables x buckets) zone-map records, and its
    # serialisation sits on the commit path of every save, append and
    # compaction — pretty-printing it dominated append latency.  The write
    # goes to a temp file first and is swapped in with ``os.replace`` so the
    # commit point is atomic: a crash mid-write never leaves a truncated
    # manifest over a previously valid one.
    path = manifest_path(root)
    temporary = path + ".tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(manifest.to_json(), separators=(",", ":"), sort_keys=False))
        handle.write("\n")
    os.replace(temporary, path)


def read_manifest(root: str) -> Manifest:
    path = manifest_path(root)
    if not os.path.isfile(path):
        raise DatasetFormatError(f"{root!r} is not a dataset directory (missing {MANIFEST_FILE})")
    with open(path, "r", encoding="utf-8") as handle:
        return Manifest.from_json(json.load(handle))
