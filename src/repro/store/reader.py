"""Opening a persisted dataset: lazy tables, pushdown scans, layout restore.

``open_dataset`` rebuilds a fully functional
:class:`~repro.mappings.extvp.ExtVPLayout` from a dataset directory without
parsing N-Triples or recomputing a single semi-join: table statistics come
from the manifest's zone-map aggregates, the VP/ExtVP correlation statistics
are restored verbatim (including the paper's statistics-only entries for
empty tables), and every materialised table is registered as a *stored* table
that decodes its column segments only when a query actually scans it.

Scans push projection and equality predicates into the store:

* **bucket pruning** — a predicate that binds the partition key hashes to
  exactly one bucket (:func:`~repro.engine.runtime.partitioner.key_partition_index`),
  so every other segment file is skipped;
* **zone-map pruning** — any equality predicate whose encoded id falls outside
  a segment's ``[min_id, max_id]`` range proves the segment empty unread.

Scanned relations carry a :class:`~repro.engine.relation.Partitioning` tag, so
the parallel runtime's shuffle joins consume the stored buckets directly when
the join keys match — no per-join re-partitioning.
"""

from __future__ import annotations

import os
import time
from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.catalog import Catalog, ScanResult, StoredTableProvider, TableStatistics
from repro.engine.relation import Partitioning, Relation
from repro.engine.runtime.partitioner import key_partition_index
from repro.engine.storage import NULL_ID
from repro.mappings.extvp import CorrelationKind, ExtVPLayout, ExtVPStatistics, ExtVPTableInfo
from repro.obs.trace import NULL_TRACER, Tracer
from repro.rdf import ntriples as ntriples_io
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import IRI, Term, term_from_string
from repro.engine.vectorized import BatchScanResult, ColumnBatch
from repro.store.format import (
    Manifest,
    StoredTermDictionary,
    TableEntry,
    read_manifest,
    read_segment_arrays,
    read_segment_file,
)


@dataclass
class DatasetLoadReport:
    """Instrumentation of one cold open — proof of what did *not* happen."""

    path: str
    load_seconds: float
    table_count: int
    statistics_only_count: int
    dictionary_terms: int
    num_buckets: int
    #: Manifest append epoch at open time (0 = never appended/compacted);
    #: the session stamps this into journal records until the next mutation.
    append_epoch: int = 0
    #: Observed instrumentation: whether the open invoked the N-Triples
    #: parser (process-wide parse counter) or the ExtVP builder (the restored
    #: layout's build counter).  Both must be False for a true cold start.
    ntriples_parsed: bool = False
    extvp_rebuilt: bool = False
    #: Build time of the original in-memory layout, for speedup reporting.
    original_build_seconds: float = 0.0


class StoredTable(StoredTableProvider):
    """One stored table: decodes segments lazily, caches decoded id columns.

    A table's bucket ``i`` consists of its base segment (when the table has
    base partitions) plus every delta segment appended to bucket ``i``; scans
    merge them transparently, emitting rows grouped by bucket so the result
    still carries a partition-aligned layout tag.  Pruning (zone maps, bucket
    arithmetic, unknown terms) applies to base and delta segments alike.
    """

    def __init__(self, root: str, entry: TableEntry, dictionary: StoredTermDictionary) -> None:
        self.root = root
        self.entry = entry
        self.dictionary = dictionary
        #: segment file (manifest-relative) -> {column: ids}; grows with scans.
        self._ids: Dict[str, Dict[str, List[int]]] = {}
        #: segment file (manifest-relative) -> {column: array('q')}; the
        #: vectorized scan path keeps its own cache so the two paths never
        #: alias each other's buffers.
        self._arrays: Dict[str, Dict[str, Any]] = {}
        #: cached result of a full, unconditioned scan.
        self._full: Optional[ScanResult] = None
        #: cached result of a full, unconditioned vectorized scan.
        self._full_batch: Optional[BatchScanResult] = None

    # ------------------------------------------------------------------ #
    def read(self) -> Relation:
        return self.scan().relation

    def scan(
        self,
        columns: Optional[Sequence[str]] = None,
        conditions: Optional[Mapping[str, Any]] = None,
    ) -> ScanResult:
        entry = self.entry
        output_columns = self._unique(columns) if columns is not None else list(entry.columns)
        condition_items = list(conditions.items()) if conditions else []
        full_scan = not condition_items and tuple(output_columns) == entry.columns
        if full_scan and self._full is not None:
            return self._full
        decode_columns = self._unique(output_columns + [c for c, _ in condition_items])
        for column in decode_columns:
            if column not in entry.columns:
                raise KeyError(f"table {entry.name!r} has no column {column!r}")

        condition_ids, unknown_term = self._encode_conditions(condition_items)
        target_bucket = self._target_bucket(condition_ids)

        rows: List[Tuple] = []
        counts: List[int] = []
        rows_scanned = 0
        segments_scanned = 0
        segments_pruned = 0
        decode = self.dictionary.decode

        for bucket in range(entry.num_partitions):
            produced_in_bucket = 0
            for segment in entry.segments_for_bucket(bucket):
                pruned = (
                    unknown_term
                    or segment.row_count == 0  # provably empty, never read
                    or (target_bucket is not None and bucket != target_bucket)
                    or any(
                        not segment.zones[column].may_contain(term_id)
                        for column, term_id in condition_ids
                    )
                )
                if pruned:
                    segments_pruned += len(decode_columns)
                    continue
                segments_scanned += len(decode_columns)
                rows_scanned += segment.row_count
                ids = self._segment_ids(segment.file, decode_columns)
                keep: Optional[List[int]] = None
                for column, term_id in condition_ids:
                    column_ids = ids[column]
                    keep = [
                        i
                        for i in (keep if keep is not None else range(len(column_ids)))
                        if column_ids[i] == term_id
                    ]
                output_ids = [ids[column] for column in output_columns]
                positions = keep if keep is not None else range(segment.row_count)
                for i in positions:
                    rows.append(
                        tuple(
                            None if column[i] == NULL_ID else decode(column[i])
                            for column in output_ids
                        )
                    )
                    produced_in_bucket += 1
            counts.append(produced_in_bucket)

        partitioning = None
        if entry.partition_keys and all(k in output_columns for k in entry.partition_keys):
            partitioning = Partitioning(entry.partition_keys, tuple(counts))
        relation = Relation(output_columns, rows, partitioning=partitioning)
        result = ScanResult(
            relation=relation,
            rows_scanned=rows_scanned,
            segments_scanned=segments_scanned,
            segments_pruned=segments_pruned,
        )
        if full_scan:
            self._full = result
        return result

    def scan_batch(
        self,
        columns: Optional[Sequence[str]] = None,
        conditions: Optional[Mapping[str, Any]] = None,
    ) -> BatchScanResult:
        """Vectorized twin of :meth:`scan`: same pruning, no term decoding.

        Segments decode straight into flat ``array('q')`` id columns and the
        result is a :class:`~repro.engine.vectorized.ColumnBatch` whose terms
        stay encoded until the executor lowers it.  Pruning arithmetic,
        scan counters and the bucket-aligned partitioning tag are identical
        to the row path.
        """
        entry = self.entry
        output_columns = self._unique(columns) if columns is not None else list(entry.columns)
        condition_items = list(conditions.items()) if conditions else []
        full_scan = not condition_items and tuple(output_columns) == entry.columns
        if full_scan and self._full_batch is not None:
            return self._full_batch
        decode_columns = self._unique(output_columns + [c for c, _ in condition_items])
        for column in decode_columns:
            if column not in entry.columns:
                raise KeyError(f"table {entry.name!r} has no column {column!r}")

        condition_ids, unknown_term = self._encode_conditions(condition_items)
        target_bucket = self._target_bucket(condition_ids)

        out = [array("q") for _ in output_columns]
        counts: List[int] = []
        rows_scanned = 0
        segments_scanned = 0
        segments_pruned = 0

        for bucket in range(entry.num_partitions):
            produced_in_bucket = 0
            for segment in entry.segments_for_bucket(bucket):
                pruned = (
                    unknown_term
                    or segment.row_count == 0  # provably empty, never read
                    or (target_bucket is not None and bucket != target_bucket)
                    or any(
                        not segment.zones[column].may_contain(term_id)
                        for column, term_id in condition_ids
                    )
                )
                if pruned:
                    segments_pruned += len(decode_columns)
                    continue
                segments_scanned += len(decode_columns)
                rows_scanned += segment.row_count
                ids = self._segment_arrays(segment.file, decode_columns)
                output_ids = [ids[column] for column in output_columns]
                if not condition_ids:
                    for position, column in enumerate(output_ids):
                        out[position].extend(column)
                    produced_in_bucket += segment.row_count
                    continue
                keep: Optional[List[int]] = None
                for column, term_id in condition_ids:
                    column_ids = ids[column]
                    keep = [
                        i
                        for i in (keep if keep is not None else range(len(column_ids)))
                        if column_ids[i] == term_id
                    ]
                for position, column in enumerate(output_ids):
                    out[position].extend(column[i] for i in keep)
                produced_in_bucket += len(keep)
            counts.append(produced_in_bucket)

        partitioning = None
        if entry.partition_keys and all(k in output_columns for k in entry.partition_keys):
            partitioning = Partitioning(entry.partition_keys, tuple(counts))
        batch = ColumnBatch(
            output_columns, out, self.dictionary.decode, partitioning=partitioning
        )
        result = BatchScanResult(
            batch=batch,
            rows_scanned=rows_scanned,
            segments_scanned=segments_scanned,
            segments_pruned=segments_pruned,
        )
        if full_scan:
            self._full_batch = result
        return result

    def drop_caches(self) -> None:
        """Forget decoded segments and cached scans (benchmark cold-run aid)."""
        self._ids.clear()
        self._arrays.clear()
        self._full = None
        self._full_batch = None

    # ------------------------------------------------------------------ #
    def _encode_conditions(
        self, condition_items: List[Tuple[str, Any]]
    ) -> Tuple[List[Tuple[str, int]], bool]:
        """Encode predicate values to ids; unknown terms prove the scan empty."""
        encoded: List[Tuple[str, int]] = []
        for column, value in condition_items:
            if value is None:
                encoded.append((column, NULL_ID))
                continue
            term_id = self.dictionary.lookup(value)
            if term_id is None:
                return [], True
            encoded.append((column, term_id))
        return encoded, False

    def _target_bucket(self, condition_ids: List[Tuple[str, int]]) -> Optional[int]:
        """Bucket index when the predicates bind every partition key."""
        keys = self.entry.partition_keys
        if not keys or self.entry.num_partitions <= 1:
            return None
        bound = dict(condition_ids)
        if not all(key in bound for key in keys):
            return None
        key_terms = tuple(
            None if bound[key] == NULL_ID else self.dictionary.decode(bound[key]) for key in keys
        )
        return key_partition_index(key_terms, self.entry.num_partitions)

    def _segment_ids(self, file: str, columns: Sequence[str]) -> Dict[str, List[int]]:
        cached = self._ids.setdefault(file, {})
        missing = [column for column in columns if column not in cached]
        if missing:
            # Manifest paths are "/"-separated regardless of the writing OS.
            path = os.path.join(self.root, *file.split("/"))
            cached.update(read_segment_file(path, missing))
        return cached

    def _segment_arrays(self, file: str, columns: Sequence[str]) -> Dict[str, Any]:
        cached = self._arrays.setdefault(file, {})
        missing = [column for column in columns if column not in cached]
        if missing:
            path = os.path.join(self.root, *file.split("/"))
            cached.update(read_segment_arrays(path, missing))
        return cached

    @staticmethod
    def _unique(columns: Sequence[str]) -> List[str]:
        unique: List[str] = []
        for column in columns:
            if column not in unique:
                unique.append(column)
        return unique


@dataclass
class StoredDataset:
    """An opened dataset directory: manifest, dictionary and table handles."""

    root: str
    manifest: Manifest
    dictionary: StoredTermDictionary
    tables: Dict[str, StoredTable] = field(default_factory=dict)

    @classmethod
    def open(cls, root: str) -> "StoredDataset":
        manifest = read_manifest(root)
        dictionary = StoredTermDictionary.open(root, expected_size=manifest.dictionary_size)
        dataset = cls(root=root, manifest=manifest, dictionary=dictionary)
        for name, entry in manifest.tables.items():
            dataset.tables[name] = StoredTable(root, entry, dictionary)
        return dataset

    def table(self, name: str) -> StoredTable:
        return self.tables[name]


def _parse_iri(n3_text: str, cache: Dict[str, IRI]) -> IRI:
    """Parse (and memoise) a predicate IRI from its manifest n3 form.

    The ExtVP statistics list has O(P^2) entries over only P distinct
    predicates, so memoisation turns the dominant cold-open cost into a dict
    lookup.
    """
    cached = cache.get(n3_text)
    if cached is not None:
        return cached
    term = term_from_string(n3_text)
    if not isinstance(term, IRI):
        raise ValueError(f"expected an IRI, got {term!r}")
    cache[n3_text] = term
    return term


def _populate_layout(layout: ExtVPLayout, dataset: StoredDataset, started_at: float) -> None:
    """(Re)register every stored table and statistic of ``dataset`` into ``layout``.

    Shared by the cold open and by :func:`refresh_dataset`.  Mutates the
    layout's existing catalog in place — sessions hold references to it — via
    ``register_stored``, which also drops any decoded-rows and observed-
    cardinality caches of previous table incarnations.
    """
    manifest = dataset.manifest
    catalog = layout.catalog
    for name, entry in manifest.tables.items():
        statistics = TableStatistics(
            name=name,
            row_count=entry.row_count,
            selectivity=entry.selectivity,
            distinct_subjects=entry.distinct_subjects,
            distinct_objects=entry.distinct_objects,
        )
        catalog.register_stored(name, dataset.table(name), statistics)
    for stats in manifest.statistics_only:
        catalog.register_statistics_only(stats["name"], stats["row_count"], stats["selectivity"])

    iri_cache: Dict[str, IRI] = {}
    vp_tables: Dict[IRI, str] = {}
    vp_sizes: Dict[IRI, int] = {}
    for predicate_n3, info in manifest.vp_tables.items():
        predicate = _parse_iri(predicate_n3, iri_cache)
        vp_tables[predicate] = info["table"]
        vp_sizes[predicate] = info["size"]

    statistics = ExtVPStatistics()
    for record in manifest.extvp:
        statistics.add(
            ExtVPTableInfo(
                name=record["name"],
                kind=CorrelationKind(record["kind"]),
                first=_parse_iri(record["first"], iri_cache),
                second=_parse_iri(record["second"], iri_cache),
                row_count=record["row_count"],
                vp_row_count=record["vp_row_count"],
                materialized=record["materialized"],
            )
        )

    # Mirror the original HDFS bookkeeping with the *actual* on-disk sizes so
    # storage summaries keep working on a cold session.
    for name, entry in manifest.tables.items():
        prefix = "extvp" if name.startswith("extvp_") else "vp" if name.startswith("vp_") else "store"
        layout.hdfs.record(
            f"{prefix}/{name}.parquet", entry.row_count, entry.total_bytes(), entry.columns
        )

    elapsed = time.perf_counter() - started_at
    layout.restore(vp_tables, vp_sizes, statistics, load_seconds=elapsed)


def open_dataset(
    path: str, tracer: Optional[Tracer] = None
) -> Tuple[ExtVPLayout, DatasetLoadReport, StoredDataset]:
    """Open ``path`` and restore a query-ready ExtVP layout from it.

    No N-Triples parsing and no ExtVP semi-join computation happens here —
    only manifest/dictionary I/O plus statistics reconstruction.  Table rows
    stay on disk until a query scans them.  With an enabled ``tracer``, the
    two cold-open stages (manifest + dictionary I/O vs. statistics
    reconstruction) appear as child spans.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    start = time.perf_counter()
    parses_before = ntriples_io.documents_parsed()
    with tracer.span("store.read-manifest", category="store") as span:
        dataset = StoredDataset.open(path)
        span.set(tables=len(dataset.manifest.tables))
    manifest = dataset.manifest

    layout = ExtVPLayout(
        catalog=Catalog(),
        namespaces=NamespaceManager(manifest.namespaces) if manifest.namespaces else None,
        selectivity_threshold=manifest.selectivity_threshold,
        include_oo=manifest.include_oo,
    )
    with tracer.span("store.restore-layout", category="store"):
        _populate_layout(layout, dataset, start)

    report = DatasetLoadReport(
        path=path,
        load_seconds=layout.report.build_seconds if layout.report else 0.0,
        table_count=len(manifest.tables),
        statistics_only_count=len(manifest.statistics_only),
        dictionary_terms=manifest.dictionary_size,
        num_buckets=manifest.num_buckets,
        append_epoch=manifest.append_epoch,
        ntriples_parsed=ntriples_io.documents_parsed() > parses_before,
        extvp_rebuilt=layout.build_count > 0,
        original_build_seconds=float(manifest.build.get("build_seconds", 0.0)),
    )
    return layout, report, dataset


def refresh_dataset(layout: ExtVPLayout, path: str) -> StoredDataset:
    """Re-sync an opened layout with its dataset directory after a mutation.

    Called by the session after :class:`~repro.store.writer.DatasetAppender`
    or :class:`~repro.store.writer.DatasetCompactor` rewrote the manifest:
    every table is re-registered from the fresh manifest (new delta segments
    become visible, stale decoded rows and observed cardinalities are
    dropped), VP maps and ExtVP statistics are rebuilt, and the catalog
    object itself — which executors hold references to — stays the same.
    """
    start = time.perf_counter()
    dataset = StoredDataset.open(path)
    _populate_layout(layout, dataset, start)
    return dataset
