"""Persistent columnar dataset store.

S2RDF keeps its VP/ExtVP tables as Parquet files on HDFS so that a query
cluster can come up against an existing dataset without re-ingesting the RDF
source.  This package is the reproduction's equivalent: a real on-disk format
(dataset-wide term dictionary, run-length-encoded column segments, per-segment
zone maps, hash-bucketed partitions) plus the writer and reader that move an
:class:`~repro.mappings.extvp.ExtVPLayout` to and from disk.

* :mod:`repro.store.format` — directory layout, segment codec, manifest.
* :mod:`repro.store.writer` — :class:`DatasetWriter` (bulk bucketing +
  encoding), :class:`DatasetAppender` (incremental delta segments) and
  :class:`DatasetCompactor` (delta merge-back).
* :mod:`repro.store.reader` — :func:`open_dataset`, lazy stored tables with
  projection/predicate pushdown, base+delta merged scans and
  partition-aligned scan output; :func:`refresh_dataset` re-syncs a live
  session after an append or compaction.

Sessions use it through :meth:`repro.core.session.S2RDFSession.save_dataset`,
:meth:`~repro.core.session.S2RDFSession.open_dataset`,
:meth:`~repro.core.session.S2RDFSession.append_triples` and
:meth:`~repro.core.session.S2RDFSession.compact`.
"""

from repro.store.format import (
    DatasetFormatError,
    FORMAT_VERSION,
    Manifest,
    StoredTermDictionary,
    read_manifest,
)
from repro.store.reader import (
    DatasetLoadReport,
    StoredDataset,
    StoredTable,
    open_dataset,
    refresh_dataset,
)
from repro.store.writer import (
    CompactionReport,
    DatasetAppender,
    DatasetAppendReport,
    DatasetCompactor,
    DatasetWriteReport,
    DatasetWriter,
)

__all__ = [
    "CompactionReport",
    "DatasetAppender",
    "DatasetAppendReport",
    "DatasetCompactor",
    "DatasetFormatError",
    "DatasetLoadReport",
    "DatasetWriteReport",
    "DatasetWriter",
    "FORMAT_VERSION",
    "Manifest",
    "StoredDataset",
    "StoredTable",
    "StoredTermDictionary",
    "open_dataset",
    "read_manifest",
    "refresh_dataset",
]
