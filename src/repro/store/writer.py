"""Writing a session's layout to a persistent dataset directory.

The writer walks every materialised catalog table, buckets its rows with the
same hash function the runtime's :class:`~repro.engine.runtime.partitioner.
HashPartitioner` uses (so stored buckets are join-compatible with runtime
partitions), dictionary-encodes all term values against one dataset-wide
:class:`~repro.rdf.dictionary.TermDictionary` and emits run-length-encoded
column pages plus per-segment zone maps.

Rows inside a bucket are sorted by their term ids' surface form before
encoding.  That serves two purposes: equal values become adjacent (long RLE
runs, smaller segments) and dictionary ids are assigned in write order, so a
term first seen in a late partition gets an id larger than every id in
earlier partitions — which is exactly what makes zone-map pruning bite.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.engine.relation import Relation
from repro.engine.runtime.partitioner import key_partition_index
from repro.engine.storage import NULL_ID, ZoneMap, encode_id_column
from repro.mappings.extvp import ExtVPLayout, compute_incremental_extvp, ExtVPStatistics, ExtVPTableInfo, CorrelationKind
from repro.mappings.naming import unique_predicate_key
from repro.rdf.dictionary import TermDictionary
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import IRI, Term, term_from_string
from repro.rdf.triple import Triple
from repro.store.format import (
    FORMAT_VERSION,
    TABLES_DIR,
    DeltaEntry,
    Manifest,
    PartitionEntry,
    StoredTermDictionary,
    TableEntry,
    append_dictionary,
    compacted_file_name,
    delta_file_name,
    dictionary_path,
    manifest_path,
    read_manifest,
    read_segment_file,
    rewrite_dictionary_lines,
    segment_file_name,
    table_dir,
    write_dictionary,
    write_manifest,
    write_segment_file,
)


@dataclass
class DatasetWriteReport:
    """Summary returned by :meth:`DatasetWriter.write`."""

    path: str
    table_count: int
    segment_count: int
    dictionary_terms: int
    total_bytes: int
    num_buckets: int
    write_seconds: float


def _sort_key(row: Tuple, indexes: Sequence[int]) -> Tuple[str, ...]:
    return tuple("" if row[i] is None else row[i].n3() for i in indexes)


def _write_encoded_segment(
    path: str, columns: Sequence[str], column_ids: Sequence[List[int]]
) -> Tuple[int, Dict[str, ZoneMap]]:
    """Encode id columns as RLE pages, write one segment file, build zone maps.

    The single code path shared by base writes, delta appends and compaction,
    so the three never desynchronise on encoding or zone-map construction.
    Returns ``(bytes_written, zones)``.
    """
    pages = [(column, encode_id_column(ids)) for column, ids in zip(columns, column_ids)]
    size = write_segment_file(path, pages)
    zones = {column: ZoneMap.from_ids(ids) for column, ids in zip(columns, column_ids)}
    return size, zones


class DatasetWriter:
    """Serialises an :class:`~repro.mappings.extvp.ExtVPLayout` to disk."""

    def __init__(self, num_buckets: int = 4) -> None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self.num_buckets = num_buckets

    # ------------------------------------------------------------------ #
    def write(self, path: str, layout: ExtVPLayout, overwrite: bool = False) -> DatasetWriteReport:
        """Write ``layout`` (catalog tables, statistics, config) under ``path``.

        The manifest is removed *first* and re-written *last*, so a crash
        mid-write leaves a directory that :func:`repro.store.reader.open_dataset`
        rejects outright instead of a stale manifest silently paired with new
        segments.  All previous dataset artifacts (dictionary, table
        directories) are cleared, so shrinking re-saves leave no orphans.
        """
        start = time.perf_counter()
        if os.path.isfile(manifest_path(path)) and not overwrite:
            raise FileExistsError(f"{path!r} already contains a dataset; pass overwrite=True")
        os.makedirs(path, exist_ok=True)
        self._clear_artifacts(path)

        dictionary = TermDictionary()
        catalog = layout.catalog
        tables: Dict[str, TableEntry] = {}
        segment_count = 0
        total_bytes = 0

        for name in catalog.table_names():
            relation = catalog.table(name)
            entry, written, segments = self._write_table(path, name, relation, catalog, dictionary)
            tables[name] = entry
            total_bytes += written
            segment_count += segments

        dictionary_bytes = write_dictionary(path, list(dictionary.terms()))
        total_bytes += dictionary_bytes

        # Persist per-predicate join-value sets (in id space) so appends can
        # deduplicate and maintain ExtVP statistics from the manifest alone
        # instead of re-reading every VP table (O(batch), not O(dataset)).
        vp_value_sets: Dict[str, dict] = {}
        for predicate in sorted(layout.vp.vp_tables, key=lambda p: p.value):
            relation = catalog.table(layout.vp.vp_tables[predicate])
            s_index = relation.column_index("s")
            o_index = relation.column_index("o")
            vp_value_sets[predicate.n3()] = {
                "s": sorted(
                    {
                        dictionary.encode(row[s_index])
                        for row in relation.rows
                        if row[s_index] is not None
                    }
                ),
                "o": sorted(
                    {
                        dictionary.encode(row[o_index])
                        for row in relation.rows
                        if row[o_index] is not None
                    }
                ),
            }

        manifest = Manifest(
            format_version=FORMAT_VERSION,
            layout_name=layout.name,
            num_buckets=self.num_buckets,
            selectivity_threshold=layout.selectivity_threshold,
            include_oo=layout.include_oo,
            namespaces=layout.namespaces.namespaces(),
            dictionary_size=len(dictionary),
            tables=tables,
            statistics_only=[
                {
                    "name": stats.name,
                    "row_count": stats.row_count,
                    "selectivity": stats.selectivity,
                }
                for stats in (
                    catalog.statistics(name) for name in catalog.statistics_only_names()
                )
                if stats is not None
            ],
            vp_tables={
                predicate.n3(): {"table": table_name, "size": layout.vp.vp_sizes.get(predicate, 0)}
                for predicate, table_name in layout.vp.vp_tables.items()
            },
            vp_value_sets=vp_value_sets,
            extvp=[
                {
                    "kind": info.kind.value,
                    "first": info.first.n3(),
                    "second": info.second.n3(),
                    "name": info.name,
                    "row_count": info.row_count,
                    "vp_row_count": info.vp_row_count,
                    "materialized": info.materialized,
                }
                for info in layout.statistics.tables.values()
            ],
            build={
                "build_seconds": layout.report.build_seconds if layout.report else 0.0,
                "table_count": layout.report.table_count if layout.report else 0,
                "tuple_count": layout.report.tuple_count if layout.report else 0,
                "hdfs_bytes": layout.report.hdfs_bytes if layout.report else 0,
            },
        )
        write_manifest(path, manifest)
        total_bytes += os.path.getsize(manifest_path(path))

        return DatasetWriteReport(
            path=path,
            table_count=len(tables),
            segment_count=segment_count,
            dictionary_terms=len(dictionary),
            total_bytes=total_bytes,
            num_buckets=self.num_buckets,
            write_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _clear_artifacts(path: str) -> None:
        """Remove every previous dataset artifact (manifest invalidated first)."""
        manifest = manifest_path(path)
        if os.path.isfile(manifest):
            os.remove(manifest)
        dictionary = dictionary_path(path)
        if os.path.isfile(dictionary):
            os.remove(dictionary)
        tables_root = os.path.join(path, TABLES_DIR)
        if os.path.isdir(tables_root):
            shutil.rmtree(tables_root)

    # ------------------------------------------------------------------ #
    def _write_table(
        self,
        root: str,
        name: str,
        relation: Relation,
        catalog,
        dictionary: TermDictionary,
    ) -> Tuple[TableEntry, int, int]:
        """Write one table's buckets; return (entry, bytes written, segments)."""
        columns = relation.columns
        partition_keys = self._partition_keys(columns)
        key_indexes = [relation.column_index(k) for k in partition_keys]

        buckets: List[List[Tuple]] = [[] for _ in range(self.num_buckets)]
        if self.num_buckets == 1:
            buckets[0] = list(relation.rows)
        else:
            for row in relation.rows:
                key = tuple(row[i] for i in key_indexes)
                buckets[key_partition_index(key, self.num_buckets)].append(row)

        directory = table_dir(root, name)
        os.makedirs(directory, exist_ok=True)

        entries: List[PartitionEntry] = []
        written = 0
        all_indexes = list(range(len(columns)))
        for index, bucket in enumerate(buckets):
            bucket.sort(key=lambda row: _sort_key(row, all_indexes))
            column_ids: List[List[int]] = [[] for _ in columns]
            for row in bucket:
                for position, value in enumerate(row):
                    column_ids[position].append(
                        NULL_ID if value is None else dictionary.encode(value)
                    )
            file_name = segment_file_name(index)
            size, zones = _write_encoded_segment(
                os.path.join(directory, file_name), columns, column_ids
            )
            written += size
            entries.append(
                PartitionEntry(
                    # Manifest paths always use "/" so datasets are portable
                    # across operating systems.
                    file=f"{TABLES_DIR}/{name}/{file_name}",
                    row_count=len(bucket),
                    size_bytes=size,
                    zones=zones,
                )
            )

        statistics = catalog.statistics(name)
        entry = TableEntry(
            name=name,
            columns=columns,
            row_count=len(relation),
            selectivity=statistics.selectivity if statistics else 1.0,
            distinct_subjects=statistics.distinct_subjects if statistics else 0,
            distinct_objects=statistics.distinct_objects if statistics else 0,
            partition_keys=partition_keys,
            num_buckets=self.num_buckets,
            partitions=entries,
        )
        return entry, written, len(entries)

    @staticmethod
    def _partition_keys(columns: Tuple[str, ...]) -> Tuple[str, ...]:
        """Bucket on the subject column — the dominant RDF join key."""
        if "s" in columns:
            return ("s",)
        return (columns[0],) if columns else ()


# --------------------------------------------------------------------- #
# Incremental appends
# --------------------------------------------------------------------- #
@dataclass
class DatasetAppendReport:
    """Summary returned by :meth:`DatasetAppender.append`."""

    path: str
    epoch: int
    triples_appended: int
    duplicate_triples: int
    new_predicates: int
    tables_updated: int
    tables_created: int
    delta_segments: int
    extvp_pairs_updated: int
    dictionary_terms_added: int
    bytes_written: int
    append_seconds: float

    @property
    def write_amplification(self) -> float:
        """Bytes written to the store per logical triple appended."""
        if self.triples_appended == 0:
            return 0.0
        return self.bytes_written / self.triples_appended


class _DictionaryAppender:
    """Extends a stored dictionary append-only, in id space.

    Existing terms keep their ids (line numbers); unseen terms are assigned
    the next free ids in encounter order and collected for one trailing
    :func:`~repro.store.format.append_dictionary` write.
    """

    def __init__(self, stored: StoredTermDictionary) -> None:
        self._stored = stored
        self._new_ids: Dict[Term, int] = {}
        self.new_terms: List[Term] = []

    def encode(self, term: Term) -> int:
        existing = self._stored.lookup(term)
        if existing is not None:
            return existing
        assigned = self._new_ids.get(term)
        if assigned is None:
            assigned = len(self._stored) + len(self.new_terms)
            self._new_ids[term] = assigned
            self.new_terms.append(term)
        return assigned

    def decode(self, term_id: int) -> Term:
        if term_id < len(self._stored):
            return self._stored.decode(term_id)
        return self.new_terms[term_id - len(self._stored)]


class _StoredVPSource:
    """Lazy pre-append VP state for dedup and incremental maintenance.

    Value sets come from the manifest's persisted ``vp_value_sets``; full
    rows are read from base/delta segments only when the value sets prove the
    read can matter — a maintenance intersection is non-empty, or a batch
    pair survives the subject/object membership prefilter in :meth:`has_row`.
    Segment file lists and row counts are snapshotted at construction, so a
    late ``rows`` call stays correct even though the append mutates the
    manifest entries (row counts, delta lists) in place.

    Datasets persisted before value sets existed take a one-time upgrade:
    every VP table is read once here (the old cost model) and the derived
    sets are committed with this append, making the *next* append O(batch).
    """

    def __init__(self, path: str, manifest: Manifest, vp_names: Dict[IRI, str]) -> None:
        self._path = path
        # Shallow snapshot: the append overwrites manifest.vp_value_sets
        # entries with post-append sets, and this source must keep answering
        # with the pre-append state.
        self._value_sets = dict(manifest.vp_value_sets)
        self._columns: Dict[IRI, Tuple[str, ...]] = {}
        self._files: Dict[IRI, List[str]] = {}
        self._row_counts: Dict[IRI, int] = {}
        self._rows_cache: Dict[IRI, List[Tuple[int, ...]]] = {}
        self._row_sets: Dict[IRI, Set[Tuple[int, ...]]] = {}
        self._subjects: Dict[IRI, Set[int]] = {}
        self._objects: Dict[IRI, Set[int]] = {}
        for predicate, name in vp_names.items():
            entry = manifest.tables.get(name)
            if entry is None:
                continue
            self._columns[predicate] = entry.columns
            self._files[predicate] = [
                segment.file
                for bucket in range(entry.num_partitions)
                for segment in entry.segments_for_bucket(bucket)
            ]
            self._row_counts[predicate] = entry.row_count
        # Every pre-append VP predicate, whether or not its table has
        # segments yet; snapshotted before the append registers new ones.
        self._known = list(vp_names)
        if not self._value_sets:
            for predicate in self._known:
                self.subjects(predicate)
                self.objects(predicate)

    # -- the lazy VP-source interface compute_incremental_extvp consumes -- #
    def predicates(self) -> List[IRI]:
        return self._known

    def row_count(self, predicate: IRI) -> int:
        return self._row_counts.get(predicate, 0)

    def rows(self, predicate: IRI) -> List[Tuple[int, ...]]:
        """All pre-append rows of ``VP_predicate``, in id space (reads segments)."""
        cached = self._rows_cache.get(predicate)
        if cached is None:
            cached = []
            columns = self._columns.get(predicate, ())
            for file in self._files.get(predicate, ()):
                decoded = read_segment_file(
                    os.path.join(self._path, *file.split("/")), columns
                )
                cached.extend(zip(*(decoded[column] for column in columns)))
            self._rows_cache[predicate] = cached
        return cached

    def subjects(self, predicate: IRI) -> Set[int]:
        return self._value_set(predicate, "s", 0, self._subjects)

    def objects(self, predicate: IRI) -> Set[int]:
        return self._value_set(predicate, "o", 1, self._objects)

    def _value_set(
        self, predicate: IRI, column: str, index: int, cache: Dict[IRI, Set[int]]
    ) -> Set[int]:
        cached = cache.get(predicate)
        if cached is None:
            stored = self._value_sets.get(predicate.n3())
            if stored is not None:
                cached = set(stored[column])
            else:
                cached = {row[index] for row in self.rows(predicate)}
            cache[predicate] = cached
        return cached

    def has_row(self, predicate: IRI, pair: Tuple[int, int]) -> bool:
        """Dedup check: is ``pair`` already a row of ``VP_predicate``?

        The value-set prefilter answers the common case (a genuinely new
        subject or object) without touching storage; only pairs whose both
        ids already occur in the table's columns force a row-set read.
        """
        if pair[0] not in self.subjects(predicate) or pair[1] not in self.objects(predicate):
            return False
        row_set = self._row_sets.get(predicate)
        if row_set is None:
            row_set = set(self.rows(predicate))
            self._row_sets[predicate] = row_set
        return pair in row_set


class DatasetAppender:
    """Appends triples to a persisted dataset as delta segments.

    Unlike :class:`DatasetWriter`, nothing existing is rewritten: new rows
    land in per-bucket ``delta-<epoch>-<bucket>.seg`` files (hash-bucketed
    with the same function as the base segments, so scans and aligned joins
    keep working), the term dictionary is extended append-only, and the
    VP/ExtVP statistics are maintained incrementally for the affected
    predicate pairs only (:func:`~repro.mappings.extvp.compute_incremental_extvp`).

    The (atomic) manifest rewrite is the commit point: a crash mid-append
    leaves the previous manifest in place, so the dataset reopens in its
    exact pre-append state.  Orphaned delta files and trailing dictionary
    lines from the crashed attempt are unreferenced and ignored; a retried
    append overwrites the former (epoch-derived names) and truncates the
    latter before appending.

    Cost model: the manifest persists per-predicate join-value sets
    (``vp_value_sets``), so deduplication, VP statistics and ExtVP pair
    evaluation all run against those sets without reading a single base
    segment.  Stored rows are read only when a value-set intersection proves
    an old row can actually qualify (or a batch pair survives the dedup
    prefilter) — so an append of fresh terms is O(batch): delta segments,
    dictionary lines and the manifest rewrite.  Datasets written before
    value sets existed pay one upgrade read and are O(batch) thereafter.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    # ------------------------------------------------------------------ #
    def append(self, triples: Iterable[Triple]) -> DatasetAppendReport:
        start = time.perf_counter()
        manifest = read_manifest(self.path)
        stored_dictionary = StoredTermDictionary.open(
            self.path, expected_size=manifest.dictionary_size
        )
        dictionary = _DictionaryAppender(stored_dictionary)
        namespaces = NamespaceManager(manifest.namespaces) if manifest.namespaces else NamespaceManager()
        epoch = manifest.append_epoch + 1

        # VP predicate map (manifest n3 -> IRI) and frozen table-name keys.
        vp_names: Dict[IRI, str] = {}
        for predicate_n3, info in manifest.vp_tables.items():
            term = term_from_string(predicate_n3)
            assert isinstance(term, IRI)
            vp_names[term] = info["table"]
        taken_keys: Set[str] = {name[len("vp_") :] for name in vp_names.values()}

        # Pre-append VP state, in id space (ids are dataset-global, so value
        # comparisons across tables work without decoding a single term).
        # Backed by the manifest's persisted value sets; segments are read
        # only when the sets prove a read can matter.
        source = _StoredVPSource(self.path, manifest, vp_names)

        # Encode, deduplicate and group the batch by predicate.
        additions: Dict[IRI, List[Tuple[int, int]]] = {}
        seen: Dict[IRI, Set[Tuple[int, int]]] = {}
        duplicates = 0
        for triple in triples:
            predicate = triple.predicate
            if not isinstance(predicate, IRI):
                raise TypeError(f"predicate must be an IRI, got {predicate!r}")
            pair = (dictionary.encode(triple.subject), dictionary.encode(triple.object))
            existing = seen.setdefault(predicate, set())
            if pair in existing or source.has_row(predicate, pair):
                duplicates += 1
                continue
            existing.add(pair)
            dictionary.encode(predicate)
            additions.setdefault(predicate, []).append(pair)

        if not additions:
            return DatasetAppendReport(
                path=self.path,
                epoch=manifest.append_epoch,
                triples_appended=0,
                duplicate_triples=duplicates,
                new_predicates=0,
                tables_updated=0,
                tables_created=0,
                delta_segments=0,
                extvp_pairs_updated=0,
                dictionary_terms_added=0,
                bytes_written=0,
                append_seconds=time.perf_counter() - start,
            )

        bytes_written = 0
        delta_segments = 0
        tables_updated = 0
        tables_created = 0

        # --- VP tables (and their manifest predicate map) ----------------- #
        new_predicates = sorted(
            (p for p in additions if p not in vp_names), key=lambda p: p.value
        )
        for predicate in new_predicates:
            key = unique_predicate_key(predicate, taken_keys, namespaces)
            taken_keys.add(key)
            vp_names[predicate] = f"vp_{key}"

        for predicate in sorted(additions, key=lambda p: p.value):
            name = vp_names[predicate]
            rows = additions[predicate]
            created = name not in manifest.tables
            entry = self._table_entry(manifest, name, ("s", "o"))
            segments, written = self._write_delta(entry, rows, dictionary, epoch)
            delta_segments += segments
            bytes_written += written
            tables_created += 1 if created else 0
            tables_updated += 0 if created else 1
            entry.row_count += len(rows)
            subjects = source.subjects(predicate) | {r[0] for r in rows}
            objects = source.objects(predicate) | {r[1] for r in rows}
            entry.distinct_subjects = len(subjects)
            entry.distinct_objects = len(objects)
            manifest.vp_tables[predicate.n3()] = {"table": name, "size": entry.row_count}
            manifest.vp_value_sets[predicate.n3()] = {
                "s": sorted(subjects),
                "o": sorted(objects),
            }

        # --- the base triples table (unbound-predicate patterns) ---------- #
        triples_rows: List[Tuple[int, int, int]] = []
        for predicate in sorted(additions, key=lambda p: p.value):
            predicate_id = dictionary.encode(predicate)
            triples_rows.extend((s, predicate_id, o) for s, o in additions[predicate])
        if triples_rows and "triples" in manifest.tables:
            entry = manifest.tables["triples"]
            segments, written = self._write_delta(entry, triples_rows, dictionary, epoch)
            delta_segments += segments
            bytes_written += written
            tables_updated += 1
            entry.row_count += len(triples_rows)
            all_subjects: Set[int] = set()
            for predicate in vp_names:
                all_subjects |= source.subjects(predicate)
            all_subjects.update(r[0] for rows in additions.values() for r in rows)
            entry.distinct_subjects = len(all_subjects)
            # Column 1 of the triples table is the predicate.
            entry.distinct_objects = len(vp_names)

        # --- incremental ExtVP maintenance (affected pairs only) ---------- #
        statistics = ExtVPStatistics()
        iri_cache: Dict[str, IRI] = {}
        for record in manifest.extvp:
            for field_name in ("first", "second"):
                if record[field_name] not in iri_cache:
                    term = term_from_string(record[field_name])
                    assert isinstance(term, IRI)
                    iri_cache[record[field_name]] = term
            statistics.add(
                ExtVPTableInfo(
                    name=record["name"],
                    kind=CorrelationKind(record["kind"]),
                    first=iri_cache[record["first"]],
                    second=iri_cache[record["second"]],
                    row_count=record["row_count"],
                    vp_row_count=record["vp_row_count"],
                    materialized=record["materialized"],
                )
            )

        def name_for(kind: CorrelationKind, first: IRI, second: IRI) -> str:
            first_key = vp_names[first][len("vp_") :]
            second_key = vp_names[second][len("vp_") :]
            return f"extvp_{kind.value}_{first_key}__{second_key}"

        deltas = compute_incremental_extvp(
            statistics,
            source,
            additions,
            name_for,
            manifest.selectivity_threshold,
            manifest.include_oo,
        )
        statistics_only = {record["name"]: record for record in manifest.statistics_only}
        for delta in deltas:
            info = delta.info
            statistics.add(info)
            if info.materialized:
                created = info.name not in manifest.tables
                entry = self._table_entry(manifest, info.name, ("s", "o"))
                if delta.rows:
                    segments, written = self._write_delta(entry, delta.rows, dictionary, epoch)
                    delta_segments += segments
                    bytes_written += written
                    tables_created += 1 if created else 0
                    tables_updated += 0 if created else 1
                entry.row_count = info.row_count
                entry.selectivity = info.selectivity
                # The maintenance pass computes exact post-append distinct
                # counts from the in-memory VP rows (None = unchanged), so
                # the stored statistics stay exact across appends.
                if delta.distinct_subjects is not None:
                    entry.distinct_subjects = delta.distinct_subjects
                if delta.distinct_objects is not None:
                    entry.distinct_objects = delta.distinct_objects
                statistics_only.pop(info.name, None)
            else:
                statistics_only[info.name] = {
                    "name": info.name,
                    "row_count": info.row_count,
                    "selectivity": info.selectivity,
                }
        manifest.statistics_only = [statistics_only[name] for name in sorted(statistics_only)]
        manifest.extvp = [
            {
                "kind": info.kind.value,
                "first": info.first.n3(),
                "second": info.second.n3(),
                "name": info.name,
                "row_count": info.row_count,
                "vp_row_count": info.vp_row_count,
                "materialized": info.materialized,
            }
            for info in statistics.tables.values()
        ]

        # Upgrade path: predicates whose value sets were never persisted
        # (datasets written before vp_value_sets, or appended by older code)
        # get their derived sets committed now, so the next append reads
        # nothing.  For current-format datasets every key already exists and
        # this loop writes nothing.
        for predicate in vp_names:
            key = predicate.n3()
            if key not in manifest.vp_value_sets:
                manifest.vp_value_sets[key] = {
                    "s": sorted(source.subjects(predicate)),
                    "o": sorted(source.objects(predicate)),
                }

        # --- commit: dictionary first, manifest last ----------------------- #
        if stored_dictionary.raw_line_count != manifest.dictionary_size:
            # A crashed predecessor left uncommitted trailing lines; rewrite
            # the committed prefix so the new terms' ids match line numbers.
            rewrite_dictionary_lines(self.path, stored_dictionary.committed_lines())
        bytes_written += append_dictionary(self.path, dictionary.new_terms)
        manifest.dictionary_size += len(dictionary.new_terms)
        manifest.append_epoch = epoch
        write_manifest(self.path, manifest)

        return DatasetAppendReport(
            path=self.path,
            epoch=epoch,
            triples_appended=sum(len(rows) for rows in additions.values()),
            duplicate_triples=duplicates,
            new_predicates=len(new_predicates),
            tables_updated=tables_updated,
            tables_created=tables_created,
            delta_segments=delta_segments,
            extvp_pairs_updated=len(deltas),
            dictionary_terms_added=len(dictionary.new_terms),
            bytes_written=bytes_written,
            append_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------ #
    def _table_entry(self, manifest: Manifest, name: str, columns: Tuple[str, ...]) -> TableEntry:
        """The existing manifest entry, or a fresh delta-only one."""
        entry = manifest.tables.get(name)
        if entry is None:
            entry = TableEntry(
                name=name,
                columns=columns,
                row_count=0,
                selectivity=1.0,
                distinct_subjects=0,
                distinct_objects=0,
                partition_keys=DatasetWriter._partition_keys(columns),
                num_buckets=manifest.num_buckets,
                partitions=[],
                deltas=[],
            )
            manifest.tables[name] = entry
        return entry

    def _write_delta(
        self,
        entry: TableEntry,
        rows: Sequence[Tuple[int, ...]],
        dictionary: _DictionaryAppender,
        epoch: int,
    ) -> Tuple[int, int]:
        """Write ``rows`` (id tuples) as per-bucket delta segments.

        Bucketing hashes the *decoded* partition-key terms — the same
        function the base segments and the runtime's ``HashPartitioner``
        use — so merged scans stay partition-aligned.  Returns
        ``(segments_written, bytes_written)``.
        """
        columns = entry.columns
        key_indexes = [columns.index(k) for k in entry.partition_keys]
        num_buckets = entry.num_partitions
        buckets: List[List[Tuple[int, ...]]] = [[] for _ in range(num_buckets)]
        if num_buckets == 1 or not key_indexes:
            buckets[0] = list(rows)
        else:
            for row in rows:
                key = tuple(
                    None if row[i] == NULL_ID else dictionary.decode(row[i]) for i in key_indexes
                )
                buckets[key_partition_index(key, num_buckets)].append(row)

        directory = table_dir(self.path, entry.name)
        os.makedirs(directory, exist_ok=True)
        segments = 0
        written = 0
        for bucket_index, bucket in enumerate(buckets):
            if not bucket:
                continue
            bucket.sort()
            column_ids = [[row[i] for row in bucket] for i in range(len(columns))]
            file_name = delta_file_name(epoch, bucket_index)
            size, zones = _write_encoded_segment(
                os.path.join(directory, file_name), columns, column_ids
            )
            entry.deltas.append(
                DeltaEntry(
                    file=f"{TABLES_DIR}/{entry.name}/{file_name}",
                    row_count=len(bucket),
                    size_bytes=size,
                    zones=zones,
                    bucket=bucket_index,
                    epoch=epoch,
                )
            )
            segments += 1
            written += size
        return segments, written


# --------------------------------------------------------------------- #
# Compaction
# --------------------------------------------------------------------- #
@dataclass
class CompactionReport:
    """Summary returned by :meth:`DatasetCompactor.compact`."""

    path: str
    tables_compacted: int
    tables_skipped: int
    segments_before: int
    segments_after: int
    delta_rows_merged: int
    bytes_written: int
    compact_seconds: float


class DatasetCompactor:
    """Merges delta segments back into full base bucket segments.

    Every table whose delta-segment count reaches ``compaction_threshold``
    is rewritten bucket by bucket: base and delta rows of a bucket are
    merged, re-sorted and re-encoded into a single base segment with freshly
    computed (tightened) zone maps.  Tables below the threshold — and tables
    with no deltas at all — are left untouched, bounding the write
    amplification an append workload pays.

    Crash safety mirrors the appender's: merged segments are written under
    *new*, generation-stamped file names, so the previous manifest stays
    fully valid until the new one is atomically swapped in; only after that
    commit are the superseded base and delta files deleted.  A crash at any
    point leaves the dataset openable in either its pre- or post-compaction
    state (never in between), with at worst some orphaned files that the
    next compaction or full save clears.
    """

    def __init__(self, compaction_threshold: int = 1) -> None:
        if compaction_threshold < 1:
            raise ValueError("compaction_threshold must be >= 1")
        self.compaction_threshold = compaction_threshold

    def compact(self, path: str) -> CompactionReport:
        start = time.perf_counter()
        manifest = read_manifest(path)
        segments_before = sum(entry.segment_count() for entry in manifest.tables.values())
        targets = [
            entry
            for entry in manifest.tables.values()
            if len(entry.deltas) >= self.compaction_threshold
        ]
        skipped = sum(
            1
            for entry in manifest.tables.values()
            if 0 < len(entry.deltas) < self.compaction_threshold
        )
        if not targets:
            return CompactionReport(
                path=path,
                tables_compacted=0,
                tables_skipped=skipped,
                segments_before=segments_before,
                segments_after=segments_before,
                delta_rows_merged=0,
                bytes_written=0,
                compact_seconds=time.perf_counter() - start,
            )

        epoch = manifest.append_epoch + 1
        bytes_written = 0
        rows_merged = 0
        for entry in targets:
            rows_merged += entry.delta_row_count()
            merged: List[PartitionEntry] = []
            for bucket in range(entry.num_partitions):
                column_ids: List[List[int]] = [[] for _ in entry.columns]
                for segment in entry.segments_for_bucket(bucket):
                    decoded = read_segment_file(
                        os.path.join(path, *segment.file.split("/")), entry.columns
                    )
                    for position, column in enumerate(entry.columns):
                        column_ids[position].extend(decoded[column])
                rows = sorted(zip(*column_ids)) if column_ids and column_ids[0] else []
                column_ids = [
                    [row[position] for row in rows] for position in range(len(entry.columns))
                ]
                file_name = compacted_file_name(epoch, bucket)
                directory = table_dir(path, entry.name)
                os.makedirs(directory, exist_ok=True)
                size, zones = _write_encoded_segment(
                    os.path.join(directory, file_name), entry.columns, column_ids
                )
                bytes_written += size
                merged.append(
                    PartitionEntry(
                        file=f"{TABLES_DIR}/{entry.name}/{file_name}",
                        row_count=len(rows),
                        size_bytes=size,
                        zones=zones,
                    )
                )
            entry.partitions = merged
            entry.deltas = []
        manifest.append_epoch = epoch
        write_manifest(path, manifest)  # atomic commit point
        # Post-commit cleanup: in every rewritten table directory, delete any
        # segment file the new manifest does not reference — the superseded
        # base/delta files, plus orphans left by crashed appends/compactions.
        for entry in targets:
            referenced = {segment.file.rsplit("/", 1)[-1] for segment in entry.partitions}
            directory = table_dir(path, entry.name)
            for file_name in os.listdir(directory):
                if file_name.endswith(".seg") and file_name not in referenced:
                    os.remove(os.path.join(directory, file_name))

        return CompactionReport(
            path=path,
            tables_compacted=len(targets),
            tables_skipped=skipped,
            segments_before=segments_before,
            segments_after=sum(entry.segment_count() for entry in manifest.tables.values()),
            delta_rows_merged=rows_merged,
            bytes_written=bytes_written,
            compact_seconds=time.perf_counter() - start,
        )
