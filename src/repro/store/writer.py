"""Writing a session's layout to a persistent dataset directory.

The writer walks every materialised catalog table, buckets its rows with the
same hash function the runtime's :class:`~repro.engine.runtime.partitioner.
HashPartitioner` uses (so stored buckets are join-compatible with runtime
partitions), dictionary-encodes all term values against one dataset-wide
:class:`~repro.rdf.dictionary.TermDictionary` and emits run-length-encoded
column pages plus per-segment zone maps.

Rows inside a bucket are sorted by their term ids' surface form before
encoding.  That serves two purposes: equal values become adjacent (long RLE
runs, smaller segments) and dictionary ids are assigned in write order, so a
term first seen in a late partition gets an id larger than every id in
earlier partitions — which is exactly what makes zone-map pruning bite.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.relation import Relation
from repro.engine.runtime.partitioner import key_partition_index
from repro.engine.storage import NULL_ID, ZoneMap, encode_id_column
from repro.mappings.extvp import ExtVPLayout
from repro.rdf.dictionary import TermDictionary
from repro.store.format import (
    FORMAT_VERSION,
    TABLES_DIR,
    Manifest,
    PartitionEntry,
    TableEntry,
    dictionary_path,
    manifest_path,
    segment_file_name,
    table_dir,
    write_dictionary,
    write_manifest,
    write_segment_file,
)


@dataclass
class DatasetWriteReport:
    """Summary returned by :meth:`DatasetWriter.write`."""

    path: str
    table_count: int
    segment_count: int
    dictionary_terms: int
    total_bytes: int
    num_buckets: int
    write_seconds: float


def _sort_key(row: Tuple, indexes: Sequence[int]) -> Tuple[str, ...]:
    return tuple("" if row[i] is None else row[i].n3() for i in indexes)


class DatasetWriter:
    """Serialises an :class:`~repro.mappings.extvp.ExtVPLayout` to disk."""

    def __init__(self, num_buckets: int = 4) -> None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self.num_buckets = num_buckets

    # ------------------------------------------------------------------ #
    def write(self, path: str, layout: ExtVPLayout, overwrite: bool = False) -> DatasetWriteReport:
        """Write ``layout`` (catalog tables, statistics, config) under ``path``.

        The manifest is removed *first* and re-written *last*, so a crash
        mid-write leaves a directory that :func:`repro.store.reader.open_dataset`
        rejects outright instead of a stale manifest silently paired with new
        segments.  All previous dataset artifacts (dictionary, table
        directories) are cleared, so shrinking re-saves leave no orphans.
        """
        start = time.perf_counter()
        if os.path.isfile(manifest_path(path)) and not overwrite:
            raise FileExistsError(f"{path!r} already contains a dataset; pass overwrite=True")
        os.makedirs(path, exist_ok=True)
        self._clear_artifacts(path)

        dictionary = TermDictionary()
        catalog = layout.catalog
        tables: Dict[str, TableEntry] = {}
        segment_count = 0
        total_bytes = 0

        for name in catalog.table_names():
            relation = catalog.table(name)
            entry, written, segments = self._write_table(path, name, relation, catalog, dictionary)
            tables[name] = entry
            total_bytes += written
            segment_count += segments

        dictionary_bytes = write_dictionary(path, list(dictionary.terms()))
        total_bytes += dictionary_bytes

        manifest = Manifest(
            format_version=FORMAT_VERSION,
            layout_name=layout.name,
            num_buckets=self.num_buckets,
            selectivity_threshold=layout.selectivity_threshold,
            include_oo=layout.include_oo,
            namespaces=layout.namespaces.namespaces(),
            dictionary_size=len(dictionary),
            tables=tables,
            statistics_only=[
                {
                    "name": stats.name,
                    "row_count": stats.row_count,
                    "selectivity": stats.selectivity,
                }
                for stats in (
                    catalog.statistics(name) for name in catalog.statistics_only_names()
                )
                if stats is not None
            ],
            vp_tables={
                predicate.n3(): {"table": table_name, "size": layout.vp.vp_sizes.get(predicate, 0)}
                for predicate, table_name in layout.vp.vp_tables.items()
            },
            extvp=[
                {
                    "kind": info.kind.value,
                    "first": info.first.n3(),
                    "second": info.second.n3(),
                    "name": info.name,
                    "row_count": info.row_count,
                    "vp_row_count": info.vp_row_count,
                    "materialized": info.materialized,
                }
                for info in layout.statistics.tables.values()
            ],
            build={
                "build_seconds": layout.report.build_seconds if layout.report else 0.0,
                "table_count": layout.report.table_count if layout.report else 0,
                "tuple_count": layout.report.tuple_count if layout.report else 0,
                "hdfs_bytes": layout.report.hdfs_bytes if layout.report else 0,
            },
        )
        write_manifest(path, manifest)
        total_bytes += os.path.getsize(manifest_path(path))

        return DatasetWriteReport(
            path=path,
            table_count=len(tables),
            segment_count=segment_count,
            dictionary_terms=len(dictionary),
            total_bytes=total_bytes,
            num_buckets=self.num_buckets,
            write_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _clear_artifacts(path: str) -> None:
        """Remove every previous dataset artifact (manifest invalidated first)."""
        manifest = manifest_path(path)
        if os.path.isfile(manifest):
            os.remove(manifest)
        dictionary = dictionary_path(path)
        if os.path.isfile(dictionary):
            os.remove(dictionary)
        tables_root = os.path.join(path, TABLES_DIR)
        if os.path.isdir(tables_root):
            shutil.rmtree(tables_root)

    # ------------------------------------------------------------------ #
    def _write_table(
        self,
        root: str,
        name: str,
        relation: Relation,
        catalog,
        dictionary: TermDictionary,
    ) -> Tuple[TableEntry, int, int]:
        """Write one table's buckets; return (entry, bytes written, segments)."""
        columns = relation.columns
        partition_keys = self._partition_keys(columns)
        key_indexes = [relation.column_index(k) for k in partition_keys]

        buckets: List[List[Tuple]] = [[] for _ in range(self.num_buckets)]
        if self.num_buckets == 1:
            buckets[0] = list(relation.rows)
        else:
            for row in relation.rows:
                key = tuple(row[i] for i in key_indexes)
                buckets[key_partition_index(key, self.num_buckets)].append(row)

        directory = table_dir(root, name)
        os.makedirs(directory, exist_ok=True)

        entries: List[PartitionEntry] = []
        written = 0
        all_indexes = list(range(len(columns)))
        for index, bucket in enumerate(buckets):
            bucket.sort(key=lambda row: _sort_key(row, all_indexes))
            column_ids: List[List[int]] = [[] for _ in columns]
            for row in bucket:
                for position, value in enumerate(row):
                    column_ids[position].append(
                        NULL_ID if value is None else dictionary.encode(value)
                    )
            pages = [
                (column, encode_id_column(ids)) for column, ids in zip(columns, column_ids)
            ]
            file_name = segment_file_name(index)
            size = write_segment_file(os.path.join(directory, file_name), pages)
            written += size
            entries.append(
                PartitionEntry(
                    # Manifest paths always use "/" so datasets are portable
                    # across operating systems.
                    file=f"{TABLES_DIR}/{name}/{file_name}",
                    row_count=len(bucket),
                    size_bytes=size,
                    zones={
                        column: ZoneMap.from_ids(ids) for column, ids in zip(columns, column_ids)
                    },
                )
            )

        statistics = catalog.statistics(name)
        entry = TableEntry(
            name=name,
            columns=columns,
            row_count=len(relation),
            selectivity=statistics.selectivity if statistics else 1.0,
            distinct_subjects=statistics.distinct_subjects if statistics else 0,
            distinct_objects=statistics.distinct_objects if statistics else 0,
            partition_keys=partition_keys,
            partitions=entries,
        )
        return entry, written, len(entries)

    @staticmethod
    def _partition_keys(columns: Tuple[str, ...]) -> Tuple[str, ...]:
        """Bucket on the subject column — the dominant RDF join key."""
        if "s" in columns:
            return ("s",)
        return (columns[0],) if columns else ()
