"""Recursive-descent parser for the SPARQL fragment used by the paper.

Supported syntax: ``PREFIX`` declarations, ``SELECT [DISTINCT] (* | ?vars)``,
group graph patterns with triple patterns (including ``;`` predicate lists and
``,`` object lists), ``FILTER``, ``OPTIONAL``, ``UNION``, ``ORDER BY``,
``LIMIT`` and ``OFFSET``.  This covers every query in the WatDiv Basic,
Selectivity and Incremental Linear workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.rdf.namespaces import WATDIV_NAMESPACES
from repro.rdf.ntriples import parse_literal
from repro.rdf.terms import IRI, Literal, Term, Variable, XSD_DECIMAL, XSD_INTEGER
from repro.sparql.algebra import (
    BGP,
    Filter,
    Join,
    LeftJoin,
    OrderCondition,
    PatternNode,
    Query,
    TriplePattern,
    Union,
)
from repro.sparql.expressions import (
    And,
    Arithmetic,
    Bound,
    Comparison,
    Expression,
    FunctionCall,
    Not,
    Or,
    TermExpression,
    VariableExpression,
)
from repro.sparql.tokenizer import Token, TokenizeError, tokenize

RDF_TYPE = IRI(WATDIV_NAMESPACES["rdf"] + "type")


class SparqlParseError(ValueError):
    """Raised when the query text is not valid (supported) SPARQL."""


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        try:
            self.tokens = tokenize(text)
        except TokenizeError as exc:
            raise SparqlParseError(str(exc)) from exc
        self.index = 0
        self.prefixes: Dict[str, str] = dict(WATDIV_NAMESPACES)

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Optional[Token]:
        position = self.index + offset
        if position < len(self.tokens):
            return self.tokens[position]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SparqlParseError("unexpected end of query")
        self.index += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            expected = f"{kind} {value!r}" if value else kind
            raise SparqlParseError(f"expected {expected} but found {token.kind} {token.value!r}")
        return token

    def _at_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "KEYWORD" and token.value == keyword

    def _accept_keyword(self, keyword: str) -> bool:
        if self._at_keyword(keyword):
            self.index += 1
            return True
        return False

    # ------------------------------------------------------------------ #
    # Grammar
    # ------------------------------------------------------------------ #
    def parse(self) -> Query:
        self._parse_prologue()
        if not self._accept_keyword("select"):
            raise SparqlParseError("only SELECT queries are supported")
        distinct = self._accept_keyword("distinct")
        self._accept_keyword("reduced")
        select_variables = self._parse_select_variables()
        self._accept_keyword("where")
        pattern = self._parse_group_graph_pattern()
        order_by, limit, offset = self._parse_solution_modifiers()
        if self._peek() is not None:
            token = self._peek()
            raise SparqlParseError(f"unexpected trailing token {token.value!r}")
        return Query(
            pattern=pattern,
            select_variables=tuple(select_variables),
            distinct=distinct,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            prefixes=dict(self.prefixes),
            text=self.text,
        )

    def _parse_prologue(self) -> None:
        while self._at_keyword("prefix") or self._at_keyword("base"):
            if self._accept_keyword("prefix"):
                name_token = self._next()
                if name_token.kind not in ("PNAME", "NAME"):
                    raise SparqlParseError(f"expected prefix name, found {name_token.value!r}")
                prefix = name_token.value.rstrip(":")
                iri_token = self._expect("IRI")
                self.prefixes[prefix] = iri_token.value[1:-1]
            elif self._accept_keyword("base"):
                self._expect("IRI")

    def _parse_select_variables(self) -> List[Variable]:
        variables: List[Variable] = []
        token = self._peek()
        if token is not None and token.kind == "STAR":
            self.index += 1
            return variables
        while True:
            token = self._peek()
            if token is None or token.kind != "VAR":
                break
            variables.append(Variable(self._next().value))
        if not variables:
            raise SparqlParseError("SELECT clause must list variables or '*'")
        return variables

    def _parse_group_graph_pattern(self) -> PatternNode:
        self._expect("LBRACE")
        elements: List[PatternNode] = []
        filters: List[Expression] = []
        triple_patterns: List[TriplePattern] = []

        def flush_bgp() -> None:
            if triple_patterns:
                elements.append(BGP(list(triple_patterns)))
                triple_patterns.clear()

        while True:
            token = self._peek()
            if token is None:
                raise SparqlParseError("unterminated group graph pattern")
            if token.kind == "RBRACE":
                self.index += 1
                break
            if token.kind == "KEYWORD" and token.value == "filter":
                self.index += 1
                filters.append(self._parse_bracketted_expression())
                continue
            if token.kind == "KEYWORD" and token.value == "optional":
                self.index += 1
                optional_pattern = self._parse_group_graph_pattern()
                flush_bgp()
                left = self._combine(elements)
                elements = [LeftJoin(left, optional_pattern)]
                continue
            if token.kind == "LBRACE":
                group = self._parse_group_graph_pattern()
                while self._at_keyword("union"):
                    self.index += 1
                    right = self._parse_group_graph_pattern()
                    group = Union(group, right)
                flush_bgp()
                elements.append(group)
                continue
            if token.kind == "DOT":
                self.index += 1
                continue
            # Otherwise this must start a triple pattern.
            triple_patterns.extend(self._parse_triples_same_subject())
            token = self._peek()
            if token is not None and token.kind == "DOT":
                self.index += 1
        flush_bgp()
        pattern = self._combine(elements)
        for expression in filters:
            pattern = Filter(expression, pattern)
        return pattern

    @staticmethod
    def _combine(elements: List[PatternNode]) -> PatternNode:
        if not elements:
            return BGP([])
        result = elements[0]
        for element in elements[1:]:
            if isinstance(result, BGP) and isinstance(element, BGP):
                result = BGP(list(result.patterns) + list(element.patterns))
            else:
                result = Join(result, element)
        return result

    def _parse_triples_same_subject(self) -> List[TriplePattern]:
        subject = self._parse_term(position="subject")
        patterns: List[TriplePattern] = []
        while True:
            predicate = self._parse_verb()
            while True:
                object_ = self._parse_term(position="object")
                patterns.append(TriplePattern(subject, predicate, object_))
                token = self._peek()
                if token is not None and token.kind == "COMMA":
                    self.index += 1
                    continue
                break
            token = self._peek()
            if token is not None and token.kind == "SEMICOLON":
                self.index += 1
                # A trailing semicolon before '.' or '}' is legal.
                token = self._peek()
                if token is not None and token.kind in ("DOT", "RBRACE"):
                    break
                continue
            break
        return patterns

    def _parse_verb(self) -> Term:
        token = self._peek()
        if token is not None and token.kind == "KEYWORD" and token.value == "a":
            self.index += 1
            return RDF_TYPE
        return self._parse_term(position="predicate")

    def _parse_term(self, position: str) -> Term:
        token = self._next()
        if token.kind == "VAR":
            return Variable(token.value)
        if token.kind == "IRI":
            return IRI(token.value[1:-1])
        if token.kind == "PNAME":
            return self._expand_pname(token.value)
        if token.kind == "STRING":
            return self._parse_string_literal(token.value)
        if token.kind == "NUMBER":
            datatype = XSD_INTEGER if "." not in token.value and "e" not in token.value.lower() else XSD_DECIMAL
            return Literal(token.value, datatype=datatype)
        if token.kind == "NAME":
            # Simplified notation (paper running example): bare name as IRI.
            return IRI(token.value)
        raise SparqlParseError(f"unexpected token {token.value!r} in {position} position")

    def _expand_pname(self, pname: str) -> IRI:
        prefix, _, local = pname.partition(":")
        if prefix not in self.prefixes:
            raise SparqlParseError(f"undeclared prefix {prefix!r} in {pname!r}")
        return IRI(self.prefixes[prefix] + local)

    def _parse_string_literal(self, token_value: str) -> Literal:
        if "^^" in token_value and not token_value.endswith(">"):
            lexical, _, datatype = token_value.rpartition("^^")
            expanded = self._expand_pname(datatype)
            return Literal(parse_literal(lexical).lexical, datatype=expanded.value)
        return parse_literal(token_value)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _parse_bracketted_expression(self) -> Expression:
        self._expect("LPAREN")
        expression = self._parse_or_expression()
        self._expect("RPAREN")
        return expression

    def _parse_or_expression(self) -> Expression:
        left = self._parse_and_expression()
        while True:
            token = self._peek()
            if token is not None and token.kind == "OROR":
                self.index += 1
                right = self._parse_and_expression()
                left = Or(left, right)
            else:
                return left

    def _parse_and_expression(self) -> Expression:
        left = self._parse_relational_expression()
        while True:
            token = self._peek()
            if token is not None and token.kind == "ANDAND":
                self.index += 1
                right = self._parse_relational_expression()
                left = And(left, right)
            else:
                return left

    _RELATIONAL = {"EQ": "=", "NEQ": "!=", "LT": "<", "GT": ">", "LE": "<=", "GE": ">="}

    def _parse_relational_expression(self) -> Expression:
        left = self._parse_additive_expression()
        token = self._peek()
        if token is not None and token.kind in self._RELATIONAL:
            self.index += 1
            right = self._parse_additive_expression()
            return Comparison(self._RELATIONAL[token.kind], left, right)
        return left

    def _parse_additive_expression(self) -> Expression:
        left = self._parse_multiplicative_expression()
        while True:
            token = self._peek()
            if token is not None and token.kind in ("PLUS", "MINUS"):
                self.index += 1
                right = self._parse_multiplicative_expression()
                left = Arithmetic("+" if token.kind == "PLUS" else "-", left, right)
            else:
                return left

    def _parse_multiplicative_expression(self) -> Expression:
        left = self._parse_unary_expression()
        while True:
            token = self._peek()
            if token is not None and token.kind in ("STAR", "SLASH"):
                self.index += 1
                right = self._parse_unary_expression()
                left = Arithmetic("*" if token.kind == "STAR" else "/", left, right)
            else:
                return left

    def _parse_unary_expression(self) -> Expression:
        token = self._peek()
        if token is not None and token.kind == "NOT":
            self.index += 1
            return Not(self._parse_unary_expression())
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> Expression:
        token = self._next()
        if token.kind == "LPAREN":
            expression = self._parse_or_expression()
            self._expect("RPAREN")
            return expression
        if token.kind == "VAR":
            return VariableExpression(Variable(token.value))
        if token.kind == "NUMBER":
            datatype = XSD_INTEGER if "." not in token.value and "e" not in token.value.lower() else XSD_DECIMAL
            return TermExpression(Literal(token.value, datatype=datatype))
        if token.kind == "STRING":
            return TermExpression(self._parse_string_literal(token.value))
        if token.kind == "IRI":
            return TermExpression(IRI(token.value[1:-1]))
        if token.kind == "PNAME":
            return TermExpression(self._expand_pname(token.value))
        if token.kind in ("NAME", "KEYWORD"):
            # Function call such as regex(...), bound(...), str(...).
            name = token.value
            next_token = self._peek()
            if next_token is not None and next_token.kind == "LPAREN":
                self.index += 1
                arguments: List[Expression] = []
                if self._peek() is not None and self._peek().kind != "RPAREN":
                    arguments.append(self._parse_or_expression())
                    while self._peek() is not None and self._peek().kind == "COMMA":
                        self.index += 1
                        arguments.append(self._parse_or_expression())
                self._expect("RPAREN")
                if name.lower() == "bound" and arguments and isinstance(arguments[0], VariableExpression):
                    return Bound(arguments[0].variable)
                return FunctionCall(name, tuple(arguments))
            return TermExpression(IRI(name))
        raise SparqlParseError(f"unexpected token {token.value!r} in expression")

    # ------------------------------------------------------------------ #
    # Solution modifiers
    # ------------------------------------------------------------------ #
    def _parse_solution_modifiers(self) -> Tuple[List[OrderCondition], Optional[int], int]:
        order_conditions: List[OrderCondition] = []
        limit: Optional[int] = None
        offset = 0
        while True:
            if self._accept_keyword("order"):
                if not self._accept_keyword("by"):
                    raise SparqlParseError("ORDER must be followed by BY")
                while True:
                    token = self._peek()
                    if token is None:
                        break
                    if token.kind == "KEYWORD" and token.value in ("asc", "desc"):
                        ascending = token.value == "asc"
                        self.index += 1
                        expression = self._parse_bracketted_expression()
                        order_conditions.append(OrderCondition(expression, ascending))
                    elif token.kind == "VAR":
                        self.index += 1
                        order_conditions.append(OrderCondition(VariableExpression(Variable(token.value)), True))
                    else:
                        break
                continue
            if self._accept_keyword("limit"):
                limit = int(self._expect("NUMBER").value)
                continue
            if self._accept_keyword("offset"):
                offset = int(self._expect("NUMBER").value)
                continue
            break
        return order_conditions, limit, offset


def parse_query(text: str) -> Query:
    """Parse a SPARQL SELECT query into its algebra representation."""
    return _Parser(text).parse()
