"""Recursive-descent parser for the SPARQL fragment used by the paper.

Supported syntax: ``PREFIX`` declarations, ``SELECT [DISTINCT] (* | ?vars)``
including aggregate bindings ``(COUNT(DISTINCT ?x) AS ?c)`` with
``COUNT/SUM/AVG/MIN/MAX``, group graph patterns with triple patterns
(including ``;`` predicate lists and ``,`` object lists), ``FILTER``,
``OPTIONAL``, ``UNION``, ``GROUP BY``, ``ORDER BY``, ``LIMIT`` and
``OFFSET``.  This covers every query in the WatDiv Basic, Selectivity and
Incremental Linear workloads.

Parse errors (:class:`SparqlParseError`) carry the 1-based line/column of the
offending token and the token text itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.rdf.namespaces import WATDIV_NAMESPACES
from repro.rdf.ntriples import parse_literal
from repro.rdf.terms import IRI, Literal, Term, Variable, XSD_DECIMAL, XSD_INTEGER
from repro.sparql.algebra import (
    BGP,
    AggregateBinding,
    Filter,
    Join,
    LeftJoin,
    OrderCondition,
    PatternNode,
    Query,
    TriplePattern,
    Union,
)
from repro.sparql.expressions import (
    And,
    Arithmetic,
    Bound,
    Comparison,
    Expression,
    FunctionCall,
    Not,
    Or,
    TermExpression,
    VariableExpression,
)
from repro.sparql.tokenizer import Token, TokenizeError, tokenize

RDF_TYPE = IRI(WATDIV_NAMESPACES["rdf"] + "type")


class SparqlParseError(ValueError):
    """Raised when the query text is not valid (supported) SPARQL.

    Carries the source position of the failure: ``line`` and ``column`` are
    1-based, ``token`` is the offending token's text (``None`` at end of
    input).  The position is appended to the message, so plain ``str(exc)``
    is already actionable.
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
        token: Optional[str] = None,
    ) -> None:
        if line is not None and column is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column
        self.token = token


def _line_column(text: str, position: int) -> Tuple[int, int]:
    """1-based (line, column) of a character offset in ``text``."""
    line = text.count("\n", 0, position) + 1
    column = position - text.rfind("\n", 0, position)
    return line, column


class _Parser:
    #: Aggregate function names; not tokenizer keywords, matched on NAME.
    _AGGREGATES = ("count", "sum", "avg", "min", "max")

    def __init__(self, text: str) -> None:
        self.text = text
        try:
            self.tokens = tokenize(text)
        except TokenizeError as exc:
            line, column = _line_column(text, exc.position)
            raise SparqlParseError(str(exc), line=line, column=column) from exc
        self.index = 0
        self.prefixes: Dict[str, str] = dict(WATDIV_NAMESPACES)

    def _error(self, message: str, token: Optional[Token] = None) -> SparqlParseError:
        """Build a positioned parse error at ``token`` (default: next token)."""
        if token is None:
            token = self._peek()
        position = token.position if token is not None else len(self.text)
        line, column = _line_column(self.text, position)
        return SparqlParseError(
            message, line=line, column=column, token=token.value if token else None
        )

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Optional[Token]:
        position = self.index + offset
        if position < len(self.tokens):
            return self.tokens[position]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of query")
        self.index += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            expected = f"{kind} {value!r}" if value else kind
            raise self._error(
                f"expected {expected} but found {token.kind} {token.value!r}", token
            )
        return token

    def _at_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "KEYWORD" and token.value == keyword

    def _accept_keyword(self, keyword: str) -> bool:
        if self._at_keyword(keyword):
            self.index += 1
            return True
        return False

    # ------------------------------------------------------------------ #
    # Grammar
    # ------------------------------------------------------------------ #
    def parse(self) -> Query:
        self._parse_prologue()
        if not self._accept_keyword("select"):
            raise self._error("only SELECT queries are supported")
        distinct = self._accept_keyword("distinct")
        self._accept_keyword("reduced")
        select_variables, aggregates = self._parse_select_clause()
        self._accept_keyword("where")
        pattern = self._parse_group_graph_pattern()
        order_by, limit, offset, group_by = self._parse_solution_modifiers()
        if self._peek() is not None:
            token = self._peek()
            raise self._error(f"unexpected trailing token {token.value!r}", token)
        self._check_grouping(select_variables, aggregates, group_by)
        return Query(
            pattern=pattern,
            select_variables=tuple(select_variables),
            distinct=distinct,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            prefixes=dict(self.prefixes),
            text=self.text,
            group_by=tuple(group_by),
            aggregates=tuple(aggregates),
        )

    def _check_grouping(
        self,
        select_variables: List[Variable],
        aggregates: List[AggregateBinding],
        group_by: List[Variable],
    ) -> None:
        """Enforce the SPARQL group-by projection rule."""
        if not aggregates and not group_by:
            return
        if not select_variables:
            raise self._error("SELECT * cannot be combined with aggregates or GROUP BY")
        group_names = {v.name for v in group_by}
        alias_names = {binding.alias.name for binding in aggregates}
        for variable in select_variables:
            if variable.name in alias_names or variable.name in group_names:
                continue
            raise self._error(
                f"variable ?{variable.name} must appear in GROUP BY or inside an aggregate"
            )

    def _parse_prologue(self) -> None:
        while self._at_keyword("prefix") or self._at_keyword("base"):
            if self._accept_keyword("prefix"):
                name_token = self._next()
                if name_token.kind not in ("PNAME", "NAME"):
                    raise self._error(
                        f"expected prefix name, found {name_token.value!r}", name_token
                    )
                prefix = name_token.value.rstrip(":")
                iri_token = self._expect("IRI")
                self.prefixes[prefix] = iri_token.value[1:-1]
            elif self._accept_keyword("base"):
                self._expect("IRI")

    def _parse_select_clause(self) -> Tuple[List[Variable], List[AggregateBinding]]:
        """Projection list: variables and ``(AGG(?x) AS ?alias)`` bindings.

        ``select_variables`` keeps every output name (plain variables and
        aggregate aliases) in declaration order; the bindings themselves are
        returned separately for the compiler.
        """
        variables: List[Variable] = []
        aggregates: List[AggregateBinding] = []
        token = self._peek()
        if token is not None and token.kind == "STAR":
            self.index += 1
            return variables, aggregates
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "VAR":
                variables.append(Variable(self._next().value))
                continue
            if token.kind == "LPAREN":
                binding = self._parse_aggregate_binding()
                aggregates.append(binding)
                variables.append(binding.alias)
                continue
            break
        if not variables:
            raise self._error("SELECT clause must list variables or '*'")
        return variables, aggregates

    def _parse_aggregate_binding(self) -> AggregateBinding:
        """``( COUNT(DISTINCT ?x) AS ?c )`` and friends."""
        self._expect("LPAREN")
        name_token = self._next()
        name = name_token.value.lower()
        if name_token.kind != "NAME" or name not in self._AGGREGATES:
            raise self._error(
                f"expected aggregate function, found {name_token.value!r}", name_token
            )
        self._expect("LPAREN")
        distinct = self._accept_keyword("distinct")
        argument = self._next()
        if argument.kind == "VAR":
            variable: Optional[Variable] = Variable(argument.value)
        elif argument.kind == "STAR":
            if name != "count":
                raise self._error("'*' is only valid as a COUNT argument", argument)
            variable = None
        else:
            raise self._error(
                f"expected variable or '*' in aggregate, found {argument.value!r}", argument
            )
        self._expect("RPAREN")
        if not self._accept_keyword("as"):
            raise self._error("aggregate binding requires AS ?alias")
        alias = Variable(self._expect("VAR").value)
        self._expect("RPAREN")
        return AggregateBinding(function=name, variable=variable, alias=alias, distinct=distinct)

    def _parse_group_graph_pattern(self) -> PatternNode:
        self._expect("LBRACE")
        elements: List[PatternNode] = []
        filters: List[Expression] = []
        triple_patterns: List[TriplePattern] = []

        def flush_bgp() -> None:
            if triple_patterns:
                elements.append(BGP(list(triple_patterns)))
                triple_patterns.clear()

        while True:
            token = self._peek()
            if token is None:
                raise self._error("unterminated group graph pattern")
            if token.kind == "RBRACE":
                self.index += 1
                break
            if token.kind == "KEYWORD" and token.value == "filter":
                self.index += 1
                filters.append(self._parse_bracketted_expression())
                continue
            if token.kind == "KEYWORD" and token.value == "optional":
                self.index += 1
                optional_pattern = self._parse_group_graph_pattern()
                flush_bgp()
                left = self._combine(elements)
                elements = [LeftJoin(left, optional_pattern)]
                continue
            if token.kind == "LBRACE":
                group = self._parse_group_graph_pattern()
                while self._at_keyword("union"):
                    self.index += 1
                    right = self._parse_group_graph_pattern()
                    group = Union(group, right)
                flush_bgp()
                elements.append(group)
                continue
            if token.kind == "DOT":
                self.index += 1
                continue
            # Otherwise this must start a triple pattern.
            triple_patterns.extend(self._parse_triples_same_subject())
            token = self._peek()
            if token is not None and token.kind == "DOT":
                self.index += 1
        flush_bgp()
        pattern = self._combine(elements)
        for expression in filters:
            pattern = Filter(expression, pattern)
        return pattern

    @staticmethod
    def _combine(elements: List[PatternNode]) -> PatternNode:
        if not elements:
            return BGP([])
        result = elements[0]
        for element in elements[1:]:
            if isinstance(result, BGP) and isinstance(element, BGP):
                result = BGP(list(result.patterns) + list(element.patterns))
            else:
                result = Join(result, element)
        return result

    def _parse_triples_same_subject(self) -> List[TriplePattern]:
        subject = self._parse_term(position="subject")
        patterns: List[TriplePattern] = []
        while True:
            predicate = self._parse_verb()
            while True:
                object_ = self._parse_term(position="object")
                patterns.append(TriplePattern(subject, predicate, object_))
                token = self._peek()
                if token is not None and token.kind == "COMMA":
                    self.index += 1
                    continue
                break
            token = self._peek()
            if token is not None and token.kind == "SEMICOLON":
                self.index += 1
                # A trailing semicolon before '.' or '}' is legal.
                token = self._peek()
                if token is not None and token.kind in ("DOT", "RBRACE"):
                    break
                continue
            break
        return patterns

    def _parse_verb(self) -> Term:
        token = self._peek()
        if token is not None and token.kind == "KEYWORD" and token.value == "a":
            self.index += 1
            return RDF_TYPE
        return self._parse_term(position="predicate")

    def _parse_term(self, position: str) -> Term:
        token = self._next()
        if token.kind == "VAR":
            return Variable(token.value)
        if token.kind == "IRI":
            return IRI(token.value[1:-1])
        if token.kind == "PNAME":
            return self._expand_pname(token.value)
        if token.kind == "STRING":
            return self._parse_string_literal(token.value)
        if token.kind == "NUMBER":
            datatype = XSD_INTEGER if "." not in token.value and "e" not in token.value.lower() else XSD_DECIMAL
            return Literal(token.value, datatype=datatype)
        if token.kind == "NAME":
            # Simplified notation (paper running example): bare name as IRI.
            return IRI(token.value)
        raise self._error(f"unexpected token {token.value!r} in {position} position", token)

    def _expand_pname(self, pname: str) -> IRI:
        prefix, _, local = pname.partition(":")
        if prefix not in self.prefixes:
            # The pname token was already consumed; point at it, not past it.
            consumed = self.tokens[self.index - 1] if self.index else None
            raise self._error(f"undeclared prefix {prefix!r} in {pname!r}", consumed)
        return IRI(self.prefixes[prefix] + local)

    def _parse_string_literal(self, token_value: str) -> Literal:
        if "^^" in token_value and not token_value.endswith(">"):
            lexical, _, datatype = token_value.rpartition("^^")
            expanded = self._expand_pname(datatype)
            return Literal(parse_literal(lexical).lexical, datatype=expanded.value)
        return parse_literal(token_value)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _parse_bracketted_expression(self) -> Expression:
        self._expect("LPAREN")
        expression = self._parse_or_expression()
        self._expect("RPAREN")
        return expression

    def _parse_or_expression(self) -> Expression:
        left = self._parse_and_expression()
        while True:
            token = self._peek()
            if token is not None and token.kind == "OROR":
                self.index += 1
                right = self._parse_and_expression()
                left = Or(left, right)
            else:
                return left

    def _parse_and_expression(self) -> Expression:
        left = self._parse_relational_expression()
        while True:
            token = self._peek()
            if token is not None and token.kind == "ANDAND":
                self.index += 1
                right = self._parse_relational_expression()
                left = And(left, right)
            else:
                return left

    _RELATIONAL = {"EQ": "=", "NEQ": "!=", "LT": "<", "GT": ">", "LE": "<=", "GE": ">="}

    def _parse_relational_expression(self) -> Expression:
        left = self._parse_additive_expression()
        token = self._peek()
        if token is not None and token.kind in self._RELATIONAL:
            self.index += 1
            right = self._parse_additive_expression()
            return Comparison(self._RELATIONAL[token.kind], left, right)
        return left

    def _parse_additive_expression(self) -> Expression:
        left = self._parse_multiplicative_expression()
        while True:
            token = self._peek()
            if token is not None and token.kind in ("PLUS", "MINUS"):
                self.index += 1
                right = self._parse_multiplicative_expression()
                left = Arithmetic("+" if token.kind == "PLUS" else "-", left, right)
            else:
                return left

    def _parse_multiplicative_expression(self) -> Expression:
        left = self._parse_unary_expression()
        while True:
            token = self._peek()
            if token is not None and token.kind in ("STAR", "SLASH"):
                self.index += 1
                right = self._parse_unary_expression()
                left = Arithmetic("*" if token.kind == "STAR" else "/", left, right)
            else:
                return left

    def _parse_unary_expression(self) -> Expression:
        token = self._peek()
        if token is not None and token.kind == "NOT":
            self.index += 1
            return Not(self._parse_unary_expression())
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> Expression:
        token = self._next()
        if token.kind == "LPAREN":
            expression = self._parse_or_expression()
            self._expect("RPAREN")
            return expression
        if token.kind == "VAR":
            return VariableExpression(Variable(token.value))
        if token.kind == "NUMBER":
            datatype = XSD_INTEGER if "." not in token.value and "e" not in token.value.lower() else XSD_DECIMAL
            return TermExpression(Literal(token.value, datatype=datatype))
        if token.kind == "STRING":
            return TermExpression(self._parse_string_literal(token.value))
        if token.kind == "IRI":
            return TermExpression(IRI(token.value[1:-1]))
        if token.kind == "PNAME":
            return TermExpression(self._expand_pname(token.value))
        if token.kind in ("NAME", "KEYWORD"):
            # Function call such as regex(...), bound(...), str(...).
            name = token.value
            next_token = self._peek()
            if next_token is not None and next_token.kind == "LPAREN":
                self.index += 1
                arguments: List[Expression] = []
                if self._peek() is not None and self._peek().kind != "RPAREN":
                    arguments.append(self._parse_or_expression())
                    while self._peek() is not None and self._peek().kind == "COMMA":
                        self.index += 1
                        arguments.append(self._parse_or_expression())
                self._expect("RPAREN")
                if name.lower() == "bound" and arguments and isinstance(arguments[0], VariableExpression):
                    return Bound(arguments[0].variable)
                return FunctionCall(name, tuple(arguments))
            return TermExpression(IRI(name))
        raise self._error(f"unexpected token {token.value!r} in expression", token)

    # ------------------------------------------------------------------ #
    # Solution modifiers
    # ------------------------------------------------------------------ #
    def _parse_solution_modifiers(
        self,
    ) -> Tuple[List[OrderCondition], Optional[int], int, List[Variable]]:
        order_conditions: List[OrderCondition] = []
        limit: Optional[int] = None
        offset = 0
        group_by: List[Variable] = []
        while True:
            if self._accept_keyword("group"):
                if not self._accept_keyword("by"):
                    raise self._error("GROUP must be followed by BY")
                while self._peek() is not None and self._peek().kind == "VAR":
                    group_by.append(Variable(self._next().value))
                if not group_by:
                    raise self._error("GROUP BY requires at least one variable")
                continue
            if self._accept_keyword("order"):
                if not self._accept_keyword("by"):
                    raise self._error("ORDER must be followed by BY")
                while True:
                    token = self._peek()
                    if token is None:
                        break
                    if token.kind == "KEYWORD" and token.value in ("asc", "desc"):
                        ascending = token.value == "asc"
                        self.index += 1
                        expression = self._parse_bracketted_expression()
                        order_conditions.append(OrderCondition(expression, ascending))
                    elif token.kind == "VAR":
                        self.index += 1
                        order_conditions.append(OrderCondition(VariableExpression(Variable(token.value)), True))
                    else:
                        break
                continue
            if self._accept_keyword("limit"):
                limit = int(self._expect("NUMBER").value)
                continue
            if self._accept_keyword("offset"):
                offset = int(self._expect("NUMBER").value)
                continue
            break
        return order_conditions, limit, offset, group_by


def parse_query(text: str) -> Query:
    """Parse a SPARQL SELECT query into its algebra representation."""
    return _Parser(text).parse()
