"""Tokenizer for the supported SPARQL fragment."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List


class TokenizeError(ValueError):
    """Raised when the query text contains a character we cannot tokenize.

    ``position`` is the character offset of the offending character, so the
    parser can report a line/column position.
    """

    def __init__(self, message: str, position: int = 0) -> None:
        super().__init__(message)
        self.position = position


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Token({self.kind}, {self.value!r})"


_KEYWORDS = {
    "select",
    "distinct",
    "reduced",
    "where",
    "filter",
    "optional",
    "union",
    "order",
    "by",
    "asc",
    "desc",
    "limit",
    "offset",
    "prefix",
    "base",
    "a",
    "group",
    "as",
}

_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("WS", r"\s+"),
    ("IRI", r"<[^<>\"{}|^`\\\s]*>"),
    ("STRING", r'"(?:[^"\\]|\\.)*"(?:@[A-Za-z0-9\-]+|\^\^<[^>]*>|\^\^[A-Za-z_][\w\-]*:[\w\-.]*)?'),
    ("VAR", r"[?$][A-Za-z_][A-Za-z_0-9]*"),
    ("NUMBER", r"[+-]?\d+\.\d*(?:[eE][+-]?\d+)?|[+-]?\.\d+(?:[eE][+-]?\d+)?|[+-]?\d+"),
    ("PNAME", r"[A-Za-z_][\w\-]*:[\w\-.%]*"),
    ("NAME", r"[A-Za-z_][\w\-]*"),
    ("NEQ", r"!="),
    ("LE", r"<="),
    ("GE", r">="),
    ("ANDAND", r"&&"),
    ("OROR", r"\|\|"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("DOT", r"\."),
    ("SEMICOLON", r";"),
    ("COMMA", r","),
    ("STAR", r"\*"),
    ("EQ", r"="),
    ("LT", r"<"),
    ("GT", r">"),
    ("NOT", r"!"),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("SLASH", r"/"),
]

_MASTER_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


def tokenize(text: str) -> List[Token]:
    """Tokenize a SPARQL query string into a list of tokens (EOF excluded)."""
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _MASTER_RE.match(text, position)
        if match is None:
            raise TokenizeError(
                f"unexpected character {text[position]!r} at offset {position}", position
            )
        kind = match.lastgroup or ""
        value = match.group()
        position = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        if kind == "NAME" and value.lower() in _KEYWORDS:
            kind = "KEYWORD"
            tokens.append(Token(kind, value.lower(), match.start()))
            continue
        tokens.append(Token(kind, value, match.start()))
    return tokens


def iter_tokens(text: str) -> Iterator[Token]:
    """Generator variant of :func:`tokenize`."""
    yield from tokenize(text)
