"""SPARQL substrate: parsing, algebra and structural analysis.

The public entry point is :func:`parse_query`, which turns a SPARQL 1.0 query
string into a :class:`~repro.sparql.algebra.Query` algebra tree.  The algebra
mirrors the W3C algebra used by the paper (BGP, Filter, LeftJoin/Optional,
Union, Projection, Distinct, OrderBy, Slice).
"""

from repro.sparql.algebra import (
    BGP,
    Distinct,
    Filter,
    Join,
    LeftJoin,
    OrderBy,
    OrderCondition,
    PatternNode,
    Projection,
    Query,
    Slice,
    TriplePattern,
    Union,
)
from repro.sparql.expressions import (
    And,
    Bound,
    Comparison,
    Expression,
    FunctionCall,
    Not,
    Or,
    TermExpression,
    VariableExpression,
)
from repro.sparql.parser import SparqlParseError, parse_query
from repro.sparql.shapes import QueryShape, analyze_bgp, classify_shape, diameter

__all__ = [
    "BGP",
    "Distinct",
    "Filter",
    "Join",
    "LeftJoin",
    "OrderBy",
    "OrderCondition",
    "PatternNode",
    "Projection",
    "Query",
    "Slice",
    "TriplePattern",
    "Union",
    "And",
    "Bound",
    "Comparison",
    "Expression",
    "FunctionCall",
    "Not",
    "Or",
    "TermExpression",
    "VariableExpression",
    "SparqlParseError",
    "parse_query",
    "QueryShape",
    "analyze_bgp",
    "classify_shape",
    "diameter",
]
