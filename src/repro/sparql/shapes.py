"""Query-shape analysis.

Sec. 2.1 of the paper classifies BGPs by shape (star, linear, snowflake,
complex) and defines the *diameter* as the longest connected sequence of triple
patterns, ignoring edge direction.  The benchmark harness uses this analysis to
group queries the way the paper's figures do, and the baselines use it to
decide which queries they handle well.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from itertools import combinations
from typing import Dict, List, Set, Tuple

from repro.rdf.terms import Variable
from repro.sparql.algebra import BGP, TriplePattern


class QueryShape(str, Enum):
    """The fundamental BGP shapes of Fig. 3."""

    STAR = "star"
    LINEAR = "linear"
    SNOWFLAKE = "snowflake"
    COMPLEX = "complex"
    SINGLE = "single"
    DISCONNECTED = "disconnected"


class CorrelationType(str, Enum):
    """The four join-variable positions of Fig. 9."""

    SUBJECT_SUBJECT = "SS"
    SUBJECT_OBJECT = "SO"
    OBJECT_SUBJECT = "OS"
    OBJECT_OBJECT = "OO"


@dataclass(frozen=True)
class Correlation:
    """A shared variable between two triple patterns."""

    first: int
    second: int
    variable: Variable
    kind: CorrelationType


@dataclass
class BGPAnalysis:
    """Structural summary of a BGP."""

    shape: QueryShape
    diameter: int
    correlations: List[Correlation]
    join_variable_degrees: Dict[Variable, int]

    @property
    def is_connected(self) -> bool:
        return self.shape != QueryShape.DISCONNECTED


def _shared_variables(a: TriplePattern, b: TriplePattern) -> Set[Variable]:
    return a.variables() & b.variables()


def correlations_between(index_a: int, a: TriplePattern, index_b: int, b: TriplePattern) -> List[Correlation]:
    """All correlations (shared-variable positions) between two patterns."""
    found: List[Correlation] = []
    positions_a = (("s", a.subject), ("o", a.object))
    positions_b = (("s", b.subject), ("o", b.object))
    kind_map = {
        ("s", "s"): CorrelationType.SUBJECT_SUBJECT,
        ("s", "o"): CorrelationType.SUBJECT_OBJECT,
        ("o", "s"): CorrelationType.OBJECT_SUBJECT,
        ("o", "o"): CorrelationType.OBJECT_OBJECT,
    }
    for pos_a, term_a in positions_a:
        if not isinstance(term_a, Variable):
            continue
        for pos_b, term_b in positions_b:
            if isinstance(term_b, Variable) and term_a == term_b:
                found.append(Correlation(index_a, index_b, term_a, kind_map[(pos_a, pos_b)]))
    return found


def find_correlations(bgp: BGP) -> List[Correlation]:
    """Enumerate all pairwise correlations of a BGP (both directions)."""
    result: List[Correlation] = []
    patterns = list(bgp.patterns)
    for (i, a), (j, b) in combinations(enumerate(patterns), 2):
        result.extend(correlations_between(i, a, j, b))
        result.extend(correlations_between(j, b, i, a))
    return result


def _adjacency(bgp: BGP) -> Dict[int, Set[int]]:
    """Triple-pattern adjacency graph: patterns are adjacent when they share a variable."""
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(bgp.patterns))}
    for (i, a), (j, b) in combinations(enumerate(bgp.patterns), 2):
        if _shared_variables(a, b):
            adjacency[i].add(j)
            adjacency[j].add(i)
    return adjacency


def _connected_components(adjacency: Dict[int, Set[int]]) -> List[Set[int]]:
    components: List[Set[int]] = []
    remaining = set(adjacency)
    while remaining:
        seed = remaining.pop()
        component = {seed}
        frontier = [seed]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency[node]:
                if neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        remaining -= component
        components.append(component)
    return components


def diameter(bgp: BGP) -> int:
    """Longest shortest path (in triple patterns) of the BGP adjacency graph.

    A single triple pattern has diameter 1, matching the paper's convention
    that a star has diameter 1 and a chain of n patterns has diameter n.
    """
    n = len(bgp.patterns)
    if n == 0:
        return 0
    if n == 1:
        return 1
    adjacency = _adjacency(bgp)
    best = 1

    for start in range(n):
        # BFS from each pattern.
        distances = {start: 0}
        frontier = [start]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbour in adjacency[node]:
                    if neighbour not in distances:
                        distances[neighbour] = distances[node] + 1
                        next_frontier.append(neighbour)
            frontier = next_frontier
        if distances:
            best = max(best, max(distances.values()) + 1)
    return best


def _variable_degrees(bgp: BGP) -> Dict[Variable, int]:
    """Number of triple patterns each variable occurs in."""
    degrees: Dict[Variable, int] = {}
    for pattern in bgp.patterns:
        for variable in pattern.variables():
            degrees[variable] = degrees.get(variable, 0) + 1
    return degrees


def classify_shape(bgp: BGP) -> QueryShape:
    """Classify a BGP as star, linear, snowflake or complex (Fig. 3)."""
    n = len(bgp.patterns)
    if n == 0:
        return QueryShape.DISCONNECTED
    if n == 1:
        return QueryShape.SINGLE
    adjacency = _adjacency(bgp)
    components = _connected_components(adjacency)
    if len(components) > 1:
        return QueryShape.DISCONNECTED

    degrees = _variable_degrees(bgp)
    join_variables = {v: d for v, d in degrees.items() if d >= 2}

    # Star: a single join variable shared by all triple patterns on the
    # subject side (diameter 1 in the paper's terms).
    subject_variables = {p.subject for p in bgp.patterns if isinstance(p.subject, Variable)}
    if len(join_variables) == 1:
        variable, degree = next(iter(join_variables.items()))
        if degree == n and variable in subject_variables:
            return QueryShape.STAR

    # Linear: every join variable connects exactly two patterns through
    # subject-object (or object-subject) correlations and the adjacency graph
    # is a simple path.
    degree_counts = sorted(len(neigh) for neigh in adjacency.values())
    is_path = degree_counts.count(1) == 2 and all(d <= 2 for d in degree_counts)
    correlations = find_correlations(bgp)
    has_ss_hub = any(
        c.kind == CorrelationType.SUBJECT_SUBJECT for c in correlations
    )
    if is_path and not has_ss_hub:
        return QueryShape.LINEAR

    # Snowflake vs complex: build the *variable* multigraph (one edge per
    # pattern whose subject and object are both variables).  A snowflake is a
    # tree of at least two subject-side hubs; any cycle (like the running
    # example Q1) makes the pattern complex.
    hub_variables = {
        v
        for v, d in join_variables.items()
        if d >= 2 and any(p.subject == v for p in bgp.patterns)
    }
    variable_nodes: Set[Variable] = set()
    variable_edges = 0
    for pattern in bgp.patterns:
        variable_nodes |= pattern.variables()
        if isinstance(pattern.subject, Variable) and isinstance(pattern.object, Variable):
            variable_edges += 1
    # Connected components of the variable graph.
    neighbours: Dict[Variable, Set[Variable]] = {v: set() for v in variable_nodes}
    for pattern in bgp.patterns:
        if isinstance(pattern.subject, Variable) and isinstance(pattern.object, Variable):
            neighbours[pattern.subject].add(pattern.object)
            neighbours[pattern.object].add(pattern.subject)
    components = _connected_components({v: neighbours[v] for v in variable_nodes}) if variable_nodes else []
    acyclic = variable_edges <= max(0, len(variable_nodes) - len(components))
    if len(hub_variables) >= 2 and acyclic:
        return QueryShape.SNOWFLAKE
    if is_path:
        return QueryShape.LINEAR
    return QueryShape.COMPLEX


def analyze_bgp(bgp: BGP) -> BGPAnalysis:
    """Full structural analysis of a BGP."""
    return BGPAnalysis(
        shape=classify_shape(bgp),
        diameter=diameter(bgp),
        correlations=find_correlations(bgp),
        join_variable_degrees={v: d for v, d in _variable_degrees(bgp).items() if d >= 2},
    )
