"""SPARQL algebra.

The algebra follows the W3C recommendation the paper references: a query is a
tree of pattern operators whose leaves are basic graph patterns (sets of
triple patterns).  S2RDF's compiler (``repro.core``) traverses this tree
bottom-up to produce relational plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.rdf.terms import Term, Variable
from repro.sparql.expressions import Expression


@dataclass(frozen=True)
class TriplePattern:
    """A triple pattern: each component is either a bound term or a variable."""

    subject: Term
    predicate: Term
    object: Term

    def variables(self) -> Set[Variable]:
        """The set of variables occurring in this pattern (``vars(tp)``)."""
        return {t for t in (self.subject, self.predicate, self.object) if isinstance(t, Variable)}

    def bound_terms(self) -> Set[Term]:
        return {t for t in (self.subject, self.predicate, self.object) if not isinstance(t, Variable)}

    def bound_count(self) -> int:
        """Number of bound (non-variable) components, used for join ordering."""
        return 3 - len(self.variables())

    @property
    def has_bound_predicate(self) -> bool:
        return not isinstance(self.predicate, Variable)

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))


class PatternNode:
    """Base class of all algebra operators."""

    def variables(self) -> Set[Variable]:
        raise NotImplementedError

    def children(self) -> Sequence["PatternNode"]:
        return ()


@dataclass(frozen=True)
class BGP(PatternNode):
    """A basic graph pattern: a conjunction of triple patterns."""

    patterns: Tuple[TriplePattern, ...]

    def __init__(self, patterns: Sequence[TriplePattern]) -> None:
        object.__setattr__(self, "patterns", tuple(patterns))

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)


@dataclass(frozen=True)
class Join(PatternNode):
    """Join of two group graph patterns."""

    left: PatternNode
    right: PatternNode

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.left, self.right)


@dataclass(frozen=True)
class LeftJoin(PatternNode):
    """OPTIONAL: left outer join, optionally guarded by a filter expression."""

    left: PatternNode
    right: PatternNode
    expression: Optional[Expression] = None

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Filter(PatternNode):
    """FILTER: restrict the solutions of a pattern by an expression."""

    expression: Expression
    pattern: PatternNode

    def variables(self) -> Set[Variable]:
        return self.pattern.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.pattern,)


@dataclass(frozen=True)
class Union(PatternNode):
    """UNION of two patterns (bag semantics)."""

    left: PatternNode
    right: PatternNode

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.left, self.right)


@dataclass(frozen=True)
class OrderCondition:
    """One ORDER BY criterion."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Projection(PatternNode):
    """SELECT projection onto a list of variables (empty = ``SELECT *``)."""

    pattern: PatternNode
    variables_list: Tuple[Variable, ...]

    def variables(self) -> Set[Variable]:
        if self.variables_list:
            return set(self.variables_list)
        return self.pattern.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.pattern,)


@dataclass(frozen=True)
class Distinct(PatternNode):
    pattern: PatternNode

    def variables(self) -> Set[Variable]:
        return self.pattern.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.pattern,)


@dataclass(frozen=True)
class OrderBy(PatternNode):
    pattern: PatternNode
    conditions: Tuple[OrderCondition, ...]

    def variables(self) -> Set[Variable]:
        return self.pattern.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.pattern,)


@dataclass(frozen=True)
class Slice(PatternNode):
    """LIMIT / OFFSET."""

    pattern: PatternNode
    offset: int = 0
    limit: Optional[int] = None

    def variables(self) -> Set[Variable]:
        return self.pattern.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.pattern,)


@dataclass
class Query:
    """A complete parsed SPARQL SELECT query."""

    pattern: PatternNode
    select_variables: Tuple[Variable, ...] = ()
    distinct: bool = False
    order_by: Tuple[OrderCondition, ...] = ()
    limit: Optional[int] = None
    offset: int = 0
    prefixes: dict = field(default_factory=dict)
    text: str = ""

    def variables(self) -> Set[Variable]:
        if self.select_variables:
            return set(self.select_variables)
        return self.pattern.variables()

    def projected_names(self) -> List[str]:
        """Names of the projected variables, in declaration order."""
        if self.select_variables:
            return [v.name for v in self.select_variables]
        return sorted(v.name for v in self.pattern.variables())


def collect_bgps(node: PatternNode) -> List[BGP]:
    """Collect every BGP leaf of an algebra tree (pre-order)."""
    if isinstance(node, BGP):
        return [node]
    result: List[BGP] = []
    for child in node.children():
        result.extend(collect_bgps(child))
    return result


def collect_triple_patterns(node: PatternNode) -> List[TriplePattern]:
    """Collect all triple patterns below ``node``."""
    patterns: List[TriplePattern] = []
    for bgp in collect_bgps(node):
        patterns.extend(bgp.patterns)
    return patterns
