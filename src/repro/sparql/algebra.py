"""SPARQL algebra.

The algebra follows the W3C recommendation the paper references: a query is a
tree of pattern operators whose leaves are basic graph patterns (sets of
triple patterns).  S2RDF's compiler (``repro.core``) traverses this tree
bottom-up to produce relational plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.rdf.terms import Term, Variable
from repro.sparql.expressions import Expression


@dataclass(frozen=True)
class TriplePattern:
    """A triple pattern: each component is either a bound term or a variable."""

    subject: Term
    predicate: Term
    object: Term

    def variables(self) -> Set[Variable]:
        """The set of variables occurring in this pattern (``vars(tp)``)."""
        return {t for t in (self.subject, self.predicate, self.object) if isinstance(t, Variable)}

    def bound_terms(self) -> Set[Term]:
        return {t for t in (self.subject, self.predicate, self.object) if not isinstance(t, Variable)}

    def bound_count(self) -> int:
        """Number of bound (non-variable) components, used for join ordering."""
        return 3 - len(self.variables())

    @property
    def has_bound_predicate(self) -> bool:
        return not isinstance(self.predicate, Variable)

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))


class PatternNode:
    """Base class of all algebra operators."""

    def variables(self) -> Set[Variable]:
        raise NotImplementedError

    def children(self) -> Sequence["PatternNode"]:
        return ()

    def accept(self, visitor: "PatternVisitor", *args):
        """Double-dispatch onto ``visitor.visit_<operator>``."""
        raise NotImplementedError

    def walk(self):
        """Pre-order iterator over this subtree (the node itself first)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))


@dataclass(frozen=True)
class BGP(PatternNode):
    """A basic graph pattern: a conjunction of triple patterns."""

    patterns: Tuple[TriplePattern, ...]

    def __init__(self, patterns: Sequence[TriplePattern]) -> None:
        object.__setattr__(self, "patterns", tuple(patterns))

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)

    def accept(self, visitor: "PatternVisitor", *args):
        return visitor.visit_bgp(self, *args)


@dataclass(frozen=True)
class Join(PatternNode):
    """Join of two group graph patterns."""

    left: PatternNode
    right: PatternNode

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.left, self.right)

    def accept(self, visitor: "PatternVisitor", *args):
        return visitor.visit_join(self, *args)


@dataclass(frozen=True)
class LeftJoin(PatternNode):
    """OPTIONAL: left outer join, optionally guarded by a filter expression."""

    left: PatternNode
    right: PatternNode
    expression: Optional[Expression] = None

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.left, self.right)

    def accept(self, visitor: "PatternVisitor", *args):
        return visitor.visit_left_join(self, *args)


@dataclass(frozen=True)
class Filter(PatternNode):
    """FILTER: restrict the solutions of a pattern by an expression."""

    expression: Expression
    pattern: PatternNode

    def variables(self) -> Set[Variable]:
        return self.pattern.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.pattern,)

    def accept(self, visitor: "PatternVisitor", *args):
        return visitor.visit_filter(self, *args)


@dataclass(frozen=True)
class Union(PatternNode):
    """UNION of two patterns (bag semantics)."""

    left: PatternNode
    right: PatternNode

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.left, self.right)

    def accept(self, visitor: "PatternVisitor", *args):
        return visitor.visit_union(self, *args)


@dataclass(frozen=True)
class OrderCondition:
    """One ORDER BY criterion."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Projection(PatternNode):
    """SELECT projection onto a list of variables (empty = ``SELECT *``)."""

    pattern: PatternNode
    variables_list: Tuple[Variable, ...]

    def variables(self) -> Set[Variable]:
        if self.variables_list:
            return set(self.variables_list)
        return self.pattern.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.pattern,)

    def accept(self, visitor: "PatternVisitor", *args):
        return visitor.visit_projection(self, *args)


@dataclass(frozen=True)
class Distinct(PatternNode):
    pattern: PatternNode

    def variables(self) -> Set[Variable]:
        return self.pattern.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.pattern,)

    def accept(self, visitor: "PatternVisitor", *args):
        return visitor.visit_distinct(self, *args)


@dataclass(frozen=True)
class OrderBy(PatternNode):
    pattern: PatternNode
    conditions: Tuple[OrderCondition, ...]

    def variables(self) -> Set[Variable]:
        return self.pattern.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.pattern,)

    def accept(self, visitor: "PatternVisitor", *args):
        return visitor.visit_order_by(self, *args)


@dataclass(frozen=True)
class Slice(PatternNode):
    """LIMIT / OFFSET."""

    pattern: PatternNode
    offset: int = 0
    limit: Optional[int] = None

    def variables(self) -> Set[Variable]:
        return self.pattern.variables()

    def children(self) -> Sequence[PatternNode]:
        return (self.pattern,)

    def accept(self, visitor: "PatternVisitor", *args):
        return visitor.visit_slice(self, *args)


class PatternVisitor:
    """Visitor over algebra trees; unhandled operators hit ``generic_visit``.

    The compiler's plan builder and the journal's template fingerprinter are
    both instances of this protocol, so a new algebra operator fails loudly
    (``generic_visit`` raises) everywhere at once instead of being silently
    skipped by one hand-rolled ``isinstance`` ladder.
    """

    def visit(self, node: PatternNode, *args):
        return node.accept(self, *args)

    def generic_visit(self, node: PatternNode, *args):
        raise TypeError(f"{type(self).__name__} cannot handle {type(node).__name__}")

    def visit_bgp(self, node: BGP, *args):
        return self.generic_visit(node, *args)

    def visit_join(self, node: Join, *args):
        return self.generic_visit(node, *args)

    def visit_left_join(self, node: LeftJoin, *args):
        return self.generic_visit(node, *args)

    def visit_filter(self, node: Filter, *args):
        return self.generic_visit(node, *args)

    def visit_union(self, node: Union, *args):
        return self.generic_visit(node, *args)

    def visit_projection(self, node: Projection, *args):
        return self.generic_visit(node, *args)

    def visit_distinct(self, node: Distinct, *args):
        return self.generic_visit(node, *args)

    def visit_order_by(self, node: OrderBy, *args):
        return self.generic_visit(node, *args)

    def visit_slice(self, node: Slice, *args):
        return self.generic_visit(node, *args)


@dataclass(frozen=True)
class AggregateBinding:
    """One ``(AGG(?var) AS ?alias)`` binding in a SELECT clause.

    ``variable`` is ``None`` for ``COUNT(*)``.
    """

    function: str  # count | sum | avg | min | max
    variable: Optional[Variable]
    alias: Variable
    distinct: bool = False


@dataclass
class Query:
    """A complete parsed SPARQL SELECT query."""

    pattern: PatternNode
    select_variables: Tuple[Variable, ...] = ()
    distinct: bool = False
    order_by: Tuple[OrderCondition, ...] = ()
    limit: Optional[int] = None
    offset: int = 0
    prefixes: dict = field(default_factory=dict)
    text: str = ""
    #: GROUP BY variables, in clause order (empty = no explicit grouping).
    group_by: Tuple[Variable, ...] = ()
    #: Aggregate bindings from the SELECT clause; a non-empty tuple makes
    #: this an aggregate query (implicitly grouped when ``group_by`` is empty).
    aggregates: Tuple[AggregateBinding, ...] = ()

    def variables(self) -> Set[Variable]:
        if self.select_variables:
            return set(self.select_variables)
        return self.pattern.variables()

    def projected_names(self) -> List[str]:
        """Names of the projected variables, in declaration order."""
        if self.select_variables:
            return [v.name for v in self.select_variables]
        return sorted(v.name for v in self.pattern.variables())


def collect_bgps(node: PatternNode) -> List[BGP]:
    """Collect every BGP leaf of an algebra tree (pre-order)."""
    return [n for n in node.walk() if isinstance(n, BGP)]


def collect_triple_patterns(node: PatternNode) -> List[TriplePattern]:
    """Collect all triple patterns below ``node``."""
    patterns: List[TriplePattern] = []
    for bgp in collect_bgps(node):
        patterns.extend(bgp.patterns)
    return patterns
