"""SPARQL filter expressions.

Only the fragment needed by the WatDiv workloads plus common comparison,
boolean and arithmetic operators is supported.  Expressions evaluate against a
solution mapping (a dict from variable name to RDF term) and follow SPARQL's
error semantics loosely: evaluation errors make the filter reject the row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Union as TypingUnion

from repro.rdf.terms import IRI, Literal, Term, Variable

SolutionMapping = Dict[str, Term]


class ExpressionError(Exception):
    """Raised when an expression cannot be evaluated for a given mapping."""


class Expression:
    """Base class for filter expressions."""

    def evaluate(self, mapping: SolutionMapping):
        raise NotImplementedError

    def evaluate_truth(self, mapping: SolutionMapping) -> bool:
        """Effective boolean value; errors count as ``False`` (row rejected)."""
        try:
            return bool(self.evaluate(mapping))
        except ExpressionError:
            return False

    def variables(self) -> Set[Variable]:
        raise NotImplementedError

    def accept(self, visitor: "ExpressionVisitor", *args):
        """Double-dispatch onto ``visitor.visit_<kind>``."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """Render the expression as a SQL-ish condition string."""
        raise NotImplementedError


def _term_value(term: Term):
    """Convert an RDF term to a comparable Python value."""
    if isinstance(term, Literal):
        value = term.to_python()
        if isinstance(value, str):
            # Numeric-looking plain literals compare numerically, which matches
            # how WatDiv encodes numbers without datatypes.
            try:
                return int(value)
            except ValueError:
                try:
                    return float(value)
                except ValueError:
                    return value
        return value
    if isinstance(term, IRI):
        return term.value
    return str(term)


@dataclass(frozen=True)
class VariableExpression(Expression):
    variable: Variable

    def evaluate(self, mapping: SolutionMapping):
        term = mapping.get(self.variable.name)
        if term is None:
            raise ExpressionError(f"unbound variable ?{self.variable.name}")
        return _term_value(term)

    def variables(self) -> Set[Variable]:
        return {self.variable}

    def accept(self, visitor: "ExpressionVisitor", *args):
        return visitor.visit_variable(self, *args)

    def to_sql(self) -> str:
        return self.variable.name


@dataclass(frozen=True)
class TermExpression(Expression):
    """A constant RDF term used inside an expression."""

    term: Term

    def evaluate(self, mapping: SolutionMapping):
        return _term_value(self.term)

    def variables(self) -> Set[Variable]:
        return set()

    def accept(self, visitor: "ExpressionVisitor", *args):
        return visitor.visit_term(self, *args)

    def to_sql(self) -> str:
        value = _term_value(self.term)
        if isinstance(value, (int, float)):
            return str(value)
        return "'" + str(value).replace("'", "''") + "'"


_COMPARISON_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.operator!r}")

    def evaluate(self, mapping: SolutionMapping) -> bool:
        left = self.left.evaluate(mapping)
        right = self.right.evaluate(mapping)
        try:
            return _COMPARISON_OPS[self.operator](left, right)
        except TypeError as exc:
            raise ExpressionError(str(exc)) from exc

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def accept(self, visitor: "ExpressionVisitor", *args):
        return visitor.visit_comparison(self, *args)

    def to_sql(self) -> str:
        op = "<>" if self.operator == "!=" else self.operator
        return f"{self.left.to_sql()} {op} {self.right.to_sql()}"


@dataclass(frozen=True)
class Arithmetic(Expression):
    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _ARITHMETIC_OPS:
            raise ValueError(f"unknown arithmetic operator {self.operator!r}")

    def evaluate(self, mapping: SolutionMapping):
        left = self.left.evaluate(mapping)
        right = self.right.evaluate(mapping)
        try:
            return _ARITHMETIC_OPS[self.operator](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise ExpressionError(str(exc)) from exc

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def accept(self, visitor: "ExpressionVisitor", *args):
        return visitor.visit_arithmetic(self, *args)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.operator} {self.right.to_sql()})"


@dataclass(frozen=True)
class And(Expression):
    left: Expression
    right: Expression

    def evaluate(self, mapping: SolutionMapping) -> bool:
        return self.left.evaluate_truth(mapping) and self.right.evaluate_truth(mapping)

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def accept(self, visitor: "ExpressionVisitor", *args):
        return visitor.visit_and(self, *args)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} AND {self.right.to_sql()})"


@dataclass(frozen=True)
class Or(Expression):
    left: Expression
    right: Expression

    def evaluate(self, mapping: SolutionMapping) -> bool:
        return self.left.evaluate_truth(mapping) or self.right.evaluate_truth(mapping)

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def accept(self, visitor: "ExpressionVisitor", *args):
        return visitor.visit_or(self, *args)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} OR {self.right.to_sql()})"


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def evaluate(self, mapping: SolutionMapping) -> bool:
        return not self.operand.evaluate_truth(mapping)

    def variables(self) -> Set[Variable]:
        return self.operand.variables()

    def accept(self, visitor: "ExpressionVisitor", *args):
        return visitor.visit_not(self, *args)

    def to_sql(self) -> str:
        return f"NOT ({self.operand.to_sql()})"


@dataclass(frozen=True)
class Bound(Expression):
    """``BOUND(?x)`` — true when the variable has a binding."""

    variable: Variable

    def evaluate(self, mapping: SolutionMapping) -> bool:
        return mapping.get(self.variable.name) is not None

    def variables(self) -> Set[Variable]:
        return {self.variable}

    def accept(self, visitor: "ExpressionVisitor", *args):
        return visitor.visit_bound(self, *args)

    def to_sql(self) -> str:
        return f"{self.variable.name} IS NOT NULL"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A small set of SPARQL built-in functions (regex, str, lang, datatype)."""

    name: str
    arguments: Sequence[Expression]

    def evaluate(self, mapping: SolutionMapping):
        name = self.name.lower()
        if name == "regex":
            import re

            if len(self.arguments) < 2:
                raise ExpressionError("regex() needs at least two arguments")
            text = str(self.arguments[0].evaluate(mapping))
            pattern = str(self.arguments[1].evaluate(mapping))
            flags = 0
            if len(self.arguments) > 2 and "i" in str(self.arguments[2].evaluate(mapping)):
                flags = re.IGNORECASE
            return re.search(pattern, text, flags) is not None
        if name == "str":
            return str(self.arguments[0].evaluate(mapping))
        if name == "bound":
            argument = self.arguments[0]
            if isinstance(argument, VariableExpression):
                return Bound(argument.variable).evaluate(mapping)
            raise ExpressionError("bound() needs a variable argument")
        raise ExpressionError(f"unsupported function {self.name!r}")

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for argument in self.arguments:
            result |= argument.variables()
        return result

    def accept(self, visitor: "ExpressionVisitor", *args):
        return visitor.visit_function_call(self, *args)

    def to_sql(self) -> str:
        rendered = ", ".join(argument.to_sql() for argument in self.arguments)
        return f"{self.name.upper()}({rendered})"


class ExpressionVisitor:
    """Visitor over filter-expression trees (dialect renderers, analyzers).

    Unhandled expression kinds raise via ``generic_visit``, so a renderer
    that claims full coverage fails loudly on a new expression type.
    """

    def visit(self, expression: Expression, *args):
        return expression.accept(self, *args)

    def generic_visit(self, expression: Expression, *args):
        raise TypeError(f"{type(self).__name__} cannot handle {type(expression).__name__}")

    def visit_variable(self, expression: VariableExpression, *args):
        return self.generic_visit(expression, *args)

    def visit_term(self, expression: TermExpression, *args):
        return self.generic_visit(expression, *args)

    def visit_comparison(self, expression: Comparison, *args):
        return self.generic_visit(expression, *args)

    def visit_arithmetic(self, expression: Arithmetic, *args):
        return self.generic_visit(expression, *args)

    def visit_and(self, expression: And, *args):
        return self.generic_visit(expression, *args)

    def visit_or(self, expression: Or, *args):
        return self.generic_visit(expression, *args)

    def visit_not(self, expression: Not, *args):
        return self.generic_visit(expression, *args)

    def visit_bound(self, expression: Bound, *args):
        return self.generic_visit(expression, *args)

    def visit_function_call(self, expression: FunctionCall, *args):
        return self.generic_visit(expression, *args)
