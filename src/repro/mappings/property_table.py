"""Unified property table layout (Sec. 4.3, the Sempala layout).

All predicates become columns of a single wide table keyed by subject.
Multi-valued predicates are handled by row duplication as in Table 1 of the
paper: every extra value of a predicate adds one more row for the subject.
This keeps the table size in the order of the number of subjects (times the
maximum multiplicity), but it means that a single property-table row cannot
enumerate all *combinations* of two multi-valued predicates — consumers such
as the Sempala baseline therefore evaluate at most one multi-valued predicate
per table scan and join additional ones back in (the paper's Fig. 7 uses the
same pattern: one ``SELECT DISTINCT`` block per triple group).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.catalog import Catalog
from repro.engine.relation import Relation
from repro.engine.storage import HdfsSimulator
from repro.mappings.naming import PROPERTY_TABLE, build_unique_keys, triples_table_name
from repro.mappings.triples_table import LayoutBuildReport
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import IRI, Term


class PropertyTableLayout:
    """Builds a single unified property table plus the triples-table fallback."""

    name = "property_table"

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        hdfs: Optional[HdfsSimulator] = None,
        namespaces: Optional[NamespaceManager] = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else Catalog()
        self.hdfs = hdfs if hdfs is not None else HdfsSimulator()
        self.namespaces = namespaces or NamespaceManager()
        self.report: Optional[LayoutBuildReport] = None
        self.columns: Tuple[str, ...] = ()
        #: predicate -> column name
        self.predicate_columns: Dict[IRI, str] = {}
        #: predicates with more than one value for at least one subject
        self.multi_valued_predicates: Set[IRI] = set()

    def build(self, graph: Graph) -> LayoutBuildReport:
        start = time.perf_counter()
        predicates = graph.predicates()
        keys = build_unique_keys(predicates, self.namespaces)
        self.predicate_columns = dict(keys)
        self.columns = ("s",) + tuple(keys[p] for p in predicates)

        # Group values per subject and predicate.
        per_subject: Dict[Term, Dict[IRI, List[Term]]] = {}
        for triple in graph:
            per_subject.setdefault(triple.subject, {}).setdefault(triple.predicate, []).append(triple.object)

        self.multi_valued_predicates = set()
        rows: List[Tuple[Term, ...]] = []
        for subject in sorted(per_subject, key=lambda s: s.n3()):
            values = per_subject[subject]
            value_lists = [sorted(values.get(p, [None]), key=_value_sort_key) for p in predicates]
            row_count = max(len(value_list) for value_list in value_lists)
            for predicate, value_list in zip(predicates, value_lists):
                if len(value_list) > 1:
                    self.multi_valued_predicates.add(predicate)
            for row_index in range(row_count):
                # Shorter value lists wrap around (Table 1 repeats the single
                # follows value next to each likes value), so every value of
                # every predicate co-occurs with the subject's single-valued
                # attributes in at least one row.
                row = tuple(value_list[row_index % len(value_list)] for value_list in value_lists)
                rows.append((subject,) + row)

        relation = Relation(self.columns, rows)
        self.catalog.register(PROPERTY_TABLE, relation)
        self.hdfs.write(f"{self.name}/{PROPERTY_TABLE}.parquet", relation)
        triples_relation = Relation(("s", "p", "o"), ((t.subject, t.predicate, t.object) for t in graph))
        self.catalog.register(triples_table_name(), triples_relation)
        elapsed = time.perf_counter() - start
        self.report = LayoutBuildReport(
            layout=self.name,
            table_count=1,
            tuple_count=len(relation),
            hdfs_bytes=self.hdfs.total_bytes(f"{self.name}/"),
            build_seconds=elapsed,
        )
        return self.report

    def table(self) -> Relation:
        return self.catalog.table(PROPERTY_TABLE)

    def column_for(self, predicate: IRI) -> Optional[str]:
        return self.predicate_columns.get(predicate)

    def is_multi_valued(self, predicate: IRI) -> bool:
        """Whether any subject has more than one value for ``predicate``."""
        return predicate in self.multi_valued_predicates


def _value_sort_key(value: Optional[Term]) -> str:
    """Deterministic ordering of the values packed into one subject's rows."""
    if value is None:
        return ""
    return value.n3()
