"""Extended Vertical Partitioning — the paper's core contribution (Sec. 5).

For every ordered pair of predicates ``(p1, p2)`` and every correlation kind
the query compiler can encounter (SS, OS, SO — OO is skipped by design,
Sec. 5.2), ExtVP materialises the semi-join reduction of the VP table of
``p1`` against the VP table of ``p2``::

    ExtVP_SS[p1|p2] = VP_p1 ⋉(s=s) VP_p2
    ExtVP_OS[p1|p2] = VP_p1 ⋉(o=s) VP_p2
    ExtVP_SO[p1|p2] = VP_p1 ⋉(s=o) VP_p2

Tables that are empty or equal to the VP table (selectivity factor SF = 0 or
SF = 1) are not stored, and an optional SF threshold drops tables whose
reduction is too small to pay for their storage (Sec. 5.3).  Statistics about
*all* tables — including the ones that were not materialised — are kept so the
compiler can pick the most selective candidate and short-circuit queries whose
correlations do not exist in the data (Sec. 6.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.engine.catalog import Catalog
from repro.engine.relation import Relation
from repro.engine.storage import HdfsSimulator
from repro.mappings.naming import build_unique_keys
from repro.mappings.triples_table import LayoutBuildReport
from repro.mappings.vertical import VerticalPartitioningLayout
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import IRI


class CorrelationKind(str, Enum):
    """The correlation kinds ExtVP precomputes (Fig. 9)."""

    SS = "ss"
    OS = "os"
    SO = "so"
    OO = "oo"  # only built when explicitly requested (ablation study)


@dataclass
class ExtVPTableInfo:
    """Statistics about one ExtVP table (materialised or not)."""

    name: str
    kind: CorrelationKind
    first: IRI
    second: IRI
    row_count: int
    vp_row_count: int
    materialized: bool

    @property
    def selectivity(self) -> float:
        """SF(ExtVP_p1|p2) = |ExtVP_p1|p2| / |VP_p1| (Sec. 5.3)."""
        if self.vp_row_count == 0:
            return 0.0
        return self.row_count / self.vp_row_count

    @property
    def is_empty(self) -> bool:
        return self.row_count == 0


@dataclass
class ExtVPStatistics:
    """All ExtVP table statistics, indexed by (kind, p1, p2)."""

    tables: Dict[Tuple[CorrelationKind, IRI, IRI], ExtVPTableInfo] = field(default_factory=dict)

    def add(self, info: ExtVPTableInfo) -> None:
        self.tables[(info.kind, info.first, info.second)] = info

    def lookup(self, kind: CorrelationKind, first: IRI, second: IRI) -> Optional[ExtVPTableInfo]:
        return self.tables.get((kind, first, second))

    def __len__(self) -> int:
        return len(self.tables)

    def materialized(self) -> List[ExtVPTableInfo]:
        return [info for info in self.tables.values() if info.materialized]

    def empty_tables(self) -> List[ExtVPTableInfo]:
        return [info for info in self.tables.values() if info.is_empty]

    def equal_to_vp(self) -> List[ExtVPTableInfo]:
        return [info for info in self.tables.values() if not info.is_empty and info.selectivity >= 1.0]

    def total_materialized_tuples(self) -> int:
        return sum(info.row_count for info in self.tables.values() if info.materialized)


# The join column of the *reduced* table and of the *other* table per kind.
KIND_JOIN_COLUMNS: Dict[CorrelationKind, Tuple[str, str]] = {
    CorrelationKind.SS: ("s", "s"),
    CorrelationKind.OS: ("o", "s"),
    CorrelationKind.SO: ("s", "o"),
    CorrelationKind.OO: ("o", "o"),
}
_KIND_COLUMNS = KIND_JOIN_COLUMNS  # backwards-compatible private alias


def correlation_kinds(include_oo: bool = False) -> List[CorrelationKind]:
    """The correlation kinds a layout maintains (OO only for the ablation)."""
    kinds = [CorrelationKind.SS, CorrelationKind.OS, CorrelationKind.SO]
    if include_oo:
        kinds.append(CorrelationKind.OO)
    return kinds


def materialization_rule(
    row_count: int, vp_row_count: int, selectivity_threshold: float
) -> Tuple[float, bool]:
    """The paper's materialisation decision, shared by build and append.

    Returns ``(selectivity, materialize)``: tables that are empty, equal to
    their VP table (SF >= 1) or above the SF threshold are kept as statistics
    only (Sec. 5.3).
    """
    selectivity = 0.0 if vp_row_count == 0 else row_count / vp_row_count
    materialize = (
        row_count > 0
        and selectivity < 1.0
        and (selectivity_threshold >= 1.0 or selectivity < selectivity_threshold)
        and selectivity_threshold > 0.0
    )
    return selectivity, materialize


class MappingVPSource:
    """Adapter giving in-memory VP rows the lazy VP-source interface.

    :func:`compute_incremental_extvp` reads its pre-append VP state through a
    *source* object so callers can defer materialising full rows: value sets
    (``subjects``/``objects``) answer the cheap membership questions, while
    :meth:`rows` is only invoked once an intersection proves old rows can
    actually qualify.  This adapter wraps a plain ``{predicate: rows}``
    mapping for callers (and tests) that already hold everything in memory;
    the dataset store supplies its own source that serves value sets from the
    manifest and reads segments lazily.
    """

    def __init__(self, rows_by_predicate: Mapping[IRI, Sequence[Tuple]]) -> None:
        self._rows = rows_by_predicate
        self._subjects: Dict[IRI, Set] = {}
        self._objects: Dict[IRI, Set] = {}

    def predicates(self) -> Iterable[IRI]:
        return self._rows.keys()

    def row_count(self, predicate: IRI) -> int:
        return len(self._rows.get(predicate, ()))

    def rows(self, predicate: IRI) -> Sequence[Tuple]:
        return self._rows.get(predicate, ())

    def subjects(self, predicate: IRI) -> Set:
        cached = self._subjects.get(predicate)
        if cached is None:
            cached = {row[0] for row in self.rows(predicate)}
            self._subjects[predicate] = cached
        return cached

    def objects(self, predicate: IRI) -> Set:
        cached = self._objects.get(predicate)
        if cached is None:
            cached = {row[1] for row in self.rows(predicate)}
            self._objects[predicate] = cached
        return cached


@dataclass
class ExtVPDelta:
    """Incremental-maintenance outcome for one affected ExtVP table.

    ``rows`` are the *newly qualifying* semi-join rows — rows of ``VP_first``
    (old or appended) that now satisfy the correlation but did not before the
    append.  ``info`` carries the post-append statistics.  For tables that are
    not materialised, ``rows`` still drives the statistics update but nothing
    is written.

    ``distinct_subjects`` / ``distinct_objects`` are the *exact* post-append
    distinct counts of the full table (old qualifying rows plus the delta),
    computed from the in-memory VP rows — the store never has to re-read a
    delta'd ExtVP table to keep its zone statistics exact.  ``None`` means
    "unchanged": the delta carried no new rows (a denominator-only
    selectivity update), so the stored counts are still exact.
    """

    info: ExtVPTableInfo
    rows: List[Tuple]
    distinct_subjects: Optional[int] = None
    distinct_objects: Optional[int] = None


def compute_incremental_extvp(
    statistics: ExtVPStatistics,
    old_vp_rows,
    additions: Mapping[IRI, Sequence[Tuple]],
    name_for: Callable[[CorrelationKind, IRI, IRI], str],
    selectivity_threshold: float,
    include_oo: bool = False,
) -> List[ExtVPDelta]:
    """Incrementally maintain ExtVP for an append, touching affected pairs only.

    ``old_vp_rows`` is either a plain ``{predicate: (s, o) rows}`` mapping
    (wrapped in :class:`MappingVPSource`) or a lazy VP source exposing
    ``predicates()``, ``row_count()``, ``subjects()``, ``objects()`` and
    ``rows()``.  Pair evaluation runs on the value sets alone; ``rows()`` is
    called only when a non-empty intersection proves old ``VP_first`` rows
    can actually appear in a delta — so a source backed by persisted value
    sets never touches stored segments for an append of fresh terms.
    ``additions`` maps predicates to the *new* rows of this append.  The
    caller must pre-deduplicate: ``additions[p]`` contains no row already in
    the old ``VP_p`` and no within-batch duplicates (VP tables are derived
    from a triple *set*).

    The maintenance identity: after appending, the delta of
    ``ExtVP_kind[p1|p2]`` is exactly

    * new ``VP_p1`` rows whose join value occurs in ``VP_p2``'s post-append
      join column, plus
    * old ``VP_p1`` rows whose join value is *new to* ``VP_p2``'s join column
      (a value absent before the append cannot have matched before, so these
      rows are provably not in the old ExtVP table — no dedup needed).

    Only ordered pairs where at least one side received new triples are
    visited, so the cost is O(|changed| * |predicates|) pairs instead of the
    full O(|predicates|^2) rebuild.  Statistics entries for previously
    unseen pairs (new predicates) are created with the build-time
    materialisation rule; existing entries keep their materialisation flag —
    re-deciding it would require rewriting history (a previously dropped
    table has no stored rows to extend), which is compaction/rebuild
    territory, not append territory.  Correctness never depends on the flag:
    a non-materialised non-empty table is simply skipped by table selection
    in favour of the VP table.
    """
    source = old_vp_rows if hasattr(old_vp_rows, "subjects") else MappingVPSource(old_vp_rows)
    changed = {p for p, rows in additions.items() if rows}
    if not changed:
        return []
    predicates = sorted(set(source.predicates()) | changed, key=lambda p: p.value)

    subjects_old: Dict[IRI, Set] = {}
    objects_old: Dict[IRI, Set] = {}
    subjects_added: Dict[IRI, Set] = {}
    objects_added: Dict[IRI, Set] = {}
    for predicate in predicates:
        subjects_old[predicate] = source.subjects(predicate)
        objects_old[predicate] = source.objects(predicate)
        new_rows = additions.get(predicate, ())
        subjects_added[predicate] = {row[0] for row in new_rows} - subjects_old[predicate]
        objects_added[predicate] = {row[1] for row in new_rows} - objects_old[predicate]

    # Inverted index: (first, column) -> {join value: rows}.  Finding the old
    # rows that newly qualify then costs O(|values new to p2's column|)
    # lookups instead of a full scan of VP_first per affected pair.  Built
    # from ``source.rows`` — the one expensive call — and only behind an
    # intersection guard proving the index will be consulted with hits.
    indexes: Dict[Tuple[IRI, int], Dict] = {}

    def old_rows_by_value(first: IRI, value_index: int) -> Dict:
        index = indexes.get((first, value_index))
        if index is None:
            index = {}
            for row in source.rows(first):
                index.setdefault(row[value_index], []).append(row)
            indexes[(first, value_index)] = index
        return index

    kinds = correlation_kinds(include_oo)
    deltas: List[ExtVPDelta] = []
    for first in predicates:
        first_changed = first in changed
        new_first_rows = additions.get(first, ())
        vp_after = source.row_count(first) + len(new_first_rows)
        for second in predicates:
            if not first_changed and second not in changed:
                continue
            for kind in kinds:
                if kind == CorrelationKind.SS and first == second:
                    continue
                first_column, second_column = KIND_JOIN_COLUMNS[kind]
                value_index = 0 if first_column == "s" else 1
                first_values_old = (
                    subjects_old[first] if first_column == "s" else objects_old[first]
                )
                second_values_old = (
                    subjects_old[second] if second_column == "s" else objects_old[second]
                )
                second_values_added = (
                    subjects_added[second] if second_column == "s" else objects_added[second]
                )
                rows = [
                    row
                    for row in new_first_rows
                    if row[value_index] in second_values_old
                    or row[value_index] in second_values_added
                ]
                if second_values_added & first_values_old:
                    # Old VP_first rows revived by values new to VP_second's
                    # join column.  The guard is what keeps a fresh-term
                    # append O(batch): no overlap, no segment read.
                    index = old_rows_by_value(first, value_index)
                    for value in second_values_added:
                        rows.extend(index.get(value, ()))
                info = statistics.lookup(kind, first, second)
                if info is None:
                    row_count = len(rows)
                    _, materialized = materialization_rule(
                        row_count, vp_after, selectivity_threshold
                    )
                    name = name_for(kind, first, second)
                elif rows or vp_after != info.vp_row_count:
                    row_count = info.row_count + len(rows)
                    materialized = info.materialized
                    name = info.name
                else:
                    continue  # provably untouched: no new rows, same denominator
                distinct_subjects: Optional[int] = None
                distinct_objects: Optional[int] = None
                if rows or info is None:
                    # The post-append table is fully determined by the VP
                    # rows: old VP_first rows whose join value matched before
                    # the append, plus the delta rows (which already cover
                    # both newly-added VP_first rows and old rows revived by
                    # values new to VP_second).  Folding the old qualifying
                    # rows in here keeps the stored distinct counts exact
                    # without re-reading the stored ExtVP table — and the
                    # intersection guard skips the VP_first read entirely
                    # when the value sets prove no old row ever matched.
                    subjects = {row[0] for row in rows}
                    objects = {row[1] for row in rows}
                    matched_old = second_values_old & first_values_old
                    if matched_old:
                        index = old_rows_by_value(first, value_index)
                        for value in matched_old:
                            for row in index.get(value, ()):
                                subjects.add(row[0])
                                objects.add(row[1])
                    distinct_subjects = len(subjects)
                    distinct_objects = len(objects)
                deltas.append(
                    ExtVPDelta(
                        info=ExtVPTableInfo(
                            name=name,
                            kind=kind,
                            first=first,
                            second=second,
                            row_count=row_count,
                            vp_row_count=vp_after,
                            materialized=materialized,
                        ),
                        rows=rows,
                        distinct_subjects=distinct_subjects,
                        distinct_objects=distinct_objects,
                    )
                )
    return deltas


class ExtVPLayout:
    """Builds VP plus the ExtVP semi-join reduction tables.

    Parameters
    ----------
    selectivity_threshold:
        Only ExtVP tables with ``SF < selectivity_threshold`` are materialised
        (1.0 keeps every non-trivial table, 0.0 disables ExtVP entirely and
        leaves a plain VP layout, 0.25 is the paper's sweet spot).
    include_oo:
        Materialise OO correlation tables as well.  The paper skips them; the
        flag exists for the ablation study.
    """

    name = "extvp"

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        hdfs: Optional[HdfsSimulator] = None,
        namespaces: Optional[NamespaceManager] = None,
        selectivity_threshold: float = 1.0,
        include_oo: bool = False,
    ) -> None:
        if not 0.0 <= selectivity_threshold <= 1.0:
            raise ValueError("selectivity_threshold must be between 0 and 1")
        self.catalog = catalog if catalog is not None else Catalog()
        self.hdfs = hdfs if hdfs is not None else HdfsSimulator()
        self.namespaces = namespaces or NamespaceManager()
        self.selectivity_threshold = selectivity_threshold
        self.include_oo = include_oo
        self.vp = VerticalPartitioningLayout(self.catalog, self.hdfs, self.namespaces)
        self.statistics = ExtVPStatistics()
        self.report: Optional[LayoutBuildReport] = None
        self._predicate_keys: Dict[IRI, str] = {}
        #: Times :meth:`build` ran on this layout — stays 0 for layouts
        #: restored from the dataset store (observed by its load report).
        self.build_count = 0

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #
    def build(self, graph: Graph) -> LayoutBuildReport:
        """Build VP plus all qualifying ExtVP tables.

        ``self.report`` is populated unconditionally — even when the build
        fails partway — so consumers like the Table 2 benchmark and
        :meth:`S2RDFSession.storage_summary` never silently read zeros from a
        missing report.
        """
        start = time.perf_counter()
        self.build_count += 1
        try:
            self._build_tables(graph)
        finally:
            elapsed = time.perf_counter() - start
            vp_report = self.vp.report
            self.report = LayoutBuildReport(
                layout=self.name,
                table_count=len(self.statistics.materialized())
                + (vp_report.table_count if vp_report else 0),
                tuple_count=self.statistics.total_materialized_tuples()
                + (vp_report.tuple_count if vp_report else 0),
                hdfs_bytes=self.hdfs.total_bytes(),
                build_seconds=elapsed,
            )
        return self.report

    def _build_tables(self, graph: Graph) -> None:
        self.vp.build(graph)
        predicates = self.vp.predicates()
        self._predicate_keys = build_unique_keys(predicates, self.namespaces)

        # Correlation discovery: which predicate pairs can join at all?  This
        # avoids computing semi-joins that are guaranteed to be empty
        # (Sec. 5.2 uses a LEFT SEMI JOIN against the triples table for this).
        subjects_of: Dict[IRI, Set] = {}
        objects_of: Dict[IRI, Set] = {}
        for predicate in predicates:
            vp_relation = self.vp.table(predicate)
            subjects_of[predicate] = set(vp_relation.column_values("s"))
            objects_of[predicate] = set(vp_relation.column_values("o"))

        kinds = correlation_kinds(self.include_oo)

        for first in predicates:
            vp_first = self.vp.table(first)
            vp_size = len(vp_first)
            for second in predicates:
                for kind in kinds:
                    if kind == CorrelationKind.SS and first == second:
                        # A table semi-joined with itself on s=s is the table
                        # itself; the paper only builds SS for p1 != p2.
                        continue
                    first_values, second_values = self._correlation_value_sets(
                        kind, first, second, subjects_of, objects_of
                    )
                    if not (first_values & second_values):
                        # Provably empty: record statistics only.
                        self._record(kind, first, second, row_count=0, vp_size=vp_size, relation=None)
                        continue
                    reduced = self._semi_join(vp_first, kind, second_values)
                    self._record(kind, first, second, len(reduced), vp_size, reduced)

    def restore(
        self,
        vp_tables: Dict[IRI, str],
        vp_sizes: Dict[IRI, int],
        statistics: ExtVPStatistics,
        load_seconds: float = 0.0,
    ) -> LayoutBuildReport:
        """Repopulate the layout from persisted metadata (no semi-joins).

        The dataset store calls this after registering every stored table in
        the catalog: VP predicate maps, ExtVP correlation statistics and the
        build report are reconstructed from the manifest, so the layout
        answers the compiler exactly as a freshly built one would — without
        the build ever running.
        """
        self.statistics = statistics
        vp_report = self.vp.restore(vp_tables, vp_sizes, build_seconds=load_seconds)
        self._predicate_keys = build_unique_keys(self.vp.predicates(), self.namespaces)
        self.report = LayoutBuildReport(
            layout=self.name,
            table_count=len(self.statistics.materialized()) + vp_report.table_count,
            tuple_count=self.statistics.total_materialized_tuples() + vp_report.tuple_count,
            hdfs_bytes=self.hdfs.total_bytes(),
            build_seconds=load_seconds,
        )
        return self.report

    def _correlation_value_sets(
        self,
        kind: CorrelationKind,
        first: IRI,
        second: IRI,
        subjects_of: Dict[IRI, Set],
        objects_of: Dict[IRI, Set],
    ) -> Tuple[Set, Set]:
        first_column, second_column = _KIND_COLUMNS[kind]
        first_values = subjects_of[first] if first_column == "s" else objects_of[first]
        second_values = subjects_of[second] if second_column == "s" else objects_of[second]
        return first_values, second_values

    @staticmethod
    def _semi_join(vp_first: Relation, kind: CorrelationKind, second_values: Set) -> Relation:
        first_column, _ = _KIND_COLUMNS[kind]
        index = vp_first.column_index(first_column)
        kept = [row for row in vp_first.rows if row[index] in second_values]
        return Relation(vp_first.columns, kept)

    def _record(
        self,
        kind: CorrelationKind,
        first: IRI,
        second: IRI,
        row_count: int,
        vp_size: int,
        relation: Optional[Relation],
    ) -> None:
        """Register statistics and materialise the table when it qualifies."""
        name = self._table_name(kind, first, second)
        selectivity, materialize = materialization_rule(row_count, vp_size, self.selectivity_threshold)
        materialize = materialize and relation is not None
        info = ExtVPTableInfo(
            name=name,
            kind=kind,
            first=first,
            second=second,
            row_count=row_count,
            vp_row_count=vp_size,
            materialized=materialize,
        )
        self.statistics.add(info)
        if materialize:
            assert relation is not None
            self.catalog.register(name, relation, selectivity=selectivity)
            self.hdfs.write(f"{self.name}/{name}.parquet", relation)
        else:
            # Keep statistics for non-materialised tables so the compiler can
            # detect empty correlations without touching data.
            self.catalog.register_statistics_only(name, row_count, selectivity)

    def _table_name(self, kind: CorrelationKind, first: IRI, second: IRI) -> str:
        first_key = self._predicate_keys.get(first) or first.local_name()
        second_key = self._predicate_keys.get(second) or second.local_name()
        return f"extvp_{kind.value}_{first_key}__{second_key}"

    # ------------------------------------------------------------------ #
    # Lookup helpers used by the compiler
    # ------------------------------------------------------------------ #
    def vp_table_name(self, predicate: IRI) -> Optional[str]:
        return self.vp.table_name(predicate)

    def vp_size(self, predicate: IRI) -> int:
        return self.vp.size(predicate)

    def extvp_info(self, kind: CorrelationKind, first: IRI, second: IRI) -> Optional[ExtVPTableInfo]:
        return self.statistics.lookup(kind, first, second)

    def table_counts(self) -> Dict[str, int]:
        """Counts used by Table 2: VP tables, materialised ExtVP tables, total."""
        vp_count = self.vp.report.table_count if self.vp.report else 0
        extvp_count = len(self.statistics.materialized())
        return {"vp": vp_count, "extvp": extvp_count, "total": vp_count + extvp_count}

    def size_summary(self) -> Dict[str, int]:
        """Tuple counts used by Table 2 / Table 6."""
        return {
            "vp_tuples": self.vp.total_tuples(),
            "extvp_tuples": self.statistics.total_materialized_tuples(),
            "total_tuples": self.vp.total_tuples() + self.statistics.total_materialized_tuples(),
            "hdfs_bytes": self.hdfs.total_bytes(),
        }
