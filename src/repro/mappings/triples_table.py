"""Triples table layout (Sec. 4.1).

A single three-column table ``TT(s, p, o)`` containing one row per RDF
statement.  Every layout keeps the triples table around as a fallback for
triple patterns with an unbound predicate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.engine.catalog import Catalog
from repro.engine.relation import Relation
from repro.engine.storage import HdfsSimulator
from repro.mappings.naming import triples_table_name
from repro.rdf.graph import Graph


@dataclass
class LayoutBuildReport:
    """Summary of a layout build (feeds the Table 2 reproduction)."""

    layout: str
    table_count: int
    tuple_count: int
    hdfs_bytes: int
    build_seconds: float


class TriplesTableLayout:
    """Materialises the triples table in a catalog and the simulated HDFS."""

    name = "triples_table"

    def __init__(self, catalog: Optional[Catalog] = None, hdfs: Optional[HdfsSimulator] = None) -> None:
        self.catalog = catalog if catalog is not None else Catalog()
        self.hdfs = hdfs if hdfs is not None else HdfsSimulator()
        self.report: Optional[LayoutBuildReport] = None

    def build(self, graph: Graph) -> LayoutBuildReport:
        start = time.perf_counter()
        relation = Relation(
            ("s", "p", "o"),
            ((t.subject, t.predicate, t.object) for t in graph),
        )
        table_name = triples_table_name()
        self.catalog.register(table_name, relation)
        self.hdfs.write(f"{self.name}/{table_name}.parquet", relation)
        elapsed = time.perf_counter() - start
        self.report = LayoutBuildReport(
            layout=self.name,
            table_count=1,
            tuple_count=len(relation),
            hdfs_bytes=self.hdfs.total_bytes(f"{self.name}/"),
            build_seconds=elapsed,
        )
        return self.report

    def table(self) -> Relation:
        return self.catalog.table(triples_table_name())
