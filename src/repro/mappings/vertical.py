"""Vertical Partitioning layout (Sec. 4.2, Abadi et al.).

One two-column table ``VP_p(s, o)`` per predicate ``p``.  The triples table is
kept as well so that triple patterns with an unbound predicate can still be
answered (Sec. 5.2).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.engine.catalog import Catalog
from repro.engine.relation import Relation
from repro.engine.storage import HdfsSimulator
from repro.mappings.naming import build_unique_keys, triples_table_name
from repro.mappings.triples_table import LayoutBuildReport
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import IRI


class VerticalPartitioningLayout:
    """Builds and registers the VP tables of an RDF graph."""

    name = "vp"

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        hdfs: Optional[HdfsSimulator] = None,
        namespaces: Optional[NamespaceManager] = None,
        include_triples_table: bool = True,
    ) -> None:
        self.catalog = catalog if catalog is not None else Catalog()
        self.hdfs = hdfs if hdfs is not None else HdfsSimulator()
        self.namespaces = namespaces or NamespaceManager()
        self.include_triples_table = include_triples_table
        self.report: Optional[LayoutBuildReport] = None
        #: predicate -> VP table name
        self.vp_tables: Dict[IRI, str] = {}
        #: predicate -> number of tuples in its VP table
        self.vp_sizes: Dict[IRI, int] = {}

    # ------------------------------------------------------------------ #
    def build(self, graph: Graph) -> LayoutBuildReport:
        start = time.perf_counter()
        predicates = graph.predicates()
        keys = build_unique_keys(predicates, self.namespaces)
        tuple_count = 0
        for predicate in predicates:
            rows = list(graph.subject_object_pairs(predicate))
            relation = Relation(("s", "o"), rows)
            table_name = f"vp_{keys[predicate]}"
            self.catalog.register(table_name, relation, selectivity=1.0)
            self.hdfs.write(f"{self.name}/{table_name}.parquet", relation)
            self.vp_tables[predicate] = table_name
            self.vp_sizes[predicate] = len(relation)
            tuple_count += len(relation)
        if self.include_triples_table:
            triples_relation = Relation(
                ("s", "p", "o"), ((t.subject, t.predicate, t.object) for t in graph)
            )
            self.catalog.register(triples_table_name(), triples_relation)
        elapsed = time.perf_counter() - start
        self.report = LayoutBuildReport(
            layout=self.name,
            table_count=len(self.vp_tables),
            tuple_count=tuple_count,
            hdfs_bytes=self.hdfs.total_bytes(f"{self.name}/"),
            build_seconds=elapsed,
        )
        return self.report

    def restore(
        self,
        vp_tables: Dict[IRI, str],
        vp_sizes: Dict[IRI, int],
        build_seconds: float = 0.0,
    ) -> LayoutBuildReport:
        """Repopulate the layout's lookup state from persisted metadata.

        Used by the dataset store when a session is opened cold: the tables
        themselves are already registered in the catalog (as lazily-decoded
        stored tables), so only the predicate maps and the report need
        reconstructing — no graph is scanned.
        """
        self.vp_tables = dict(vp_tables)
        self.vp_sizes = dict(vp_sizes)
        self.report = LayoutBuildReport(
            layout=self.name,
            table_count=len(self.vp_tables),
            tuple_count=sum(self.vp_sizes.values()),
            hdfs_bytes=self.hdfs.total_bytes(f"{self.name}/"),
            build_seconds=build_seconds,
        )
        return self.report

    # ------------------------------------------------------------------ #
    def predicates(self) -> List[IRI]:
        return sorted(self.vp_tables, key=lambda p: p.value)

    def table_name(self, predicate: IRI) -> Optional[str]:
        """VP table name for ``predicate`` (``None`` when the predicate is absent)."""
        return self.vp_tables.get(predicate)

    def table(self, predicate: IRI) -> Relation:
        name = self.vp_tables.get(predicate)
        if name is None:
            return Relation.empty(("s", "o"))
        return self.catalog.table(name)

    def size(self, predicate: IRI) -> int:
        return self.vp_sizes.get(predicate, 0)

    def total_tuples(self) -> int:
        return sum(self.vp_sizes.values())
