"""Table naming conventions.

All layouts register their tables in a shared catalog, so names must be
deterministic, collision-free and readable in generated SQL.  Predicates are
compacted to their prefixed name (``wsdbm:follows``) and sanitised to a SQL
identifier (``wsdbm_follows``).
"""

from __future__ import annotations

import re
from typing import Dict

from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import IRI

_SANITIZE_RE = re.compile(r"[^A-Za-z0-9_]")

_DEFAULT_MANAGER = NamespaceManager()

TRIPLES_TABLE = "triples"
PROPERTY_TABLE = "property_table"


def predicate_key(predicate: IRI, namespaces: NamespaceManager = _DEFAULT_MANAGER) -> str:
    """A SQL-safe, human-readable key for a predicate IRI."""
    compact = namespaces.compact(predicate)
    if compact.startswith("<") and compact.endswith(">"):
        compact = predicate.local_name() or predicate.value
    return _SANITIZE_RE.sub("_", compact).strip("_") or "p"


def triples_table_name() -> str:
    return TRIPLES_TABLE


def vp_table_name(predicate: IRI, namespaces: NamespaceManager = _DEFAULT_MANAGER) -> str:
    """Name of the VP table for ``predicate`` (``vp_wsdbm_follows``)."""
    return f"vp_{predicate_key(predicate, namespaces)}"


def extvp_table_name(
    kind: str,
    first: IRI,
    second: IRI,
    namespaces: NamespaceManager = _DEFAULT_MANAGER,
) -> str:
    """Name of an ExtVP table (``extvp_os_wsdbm_follows__wsdbm_likes``).

    ``kind`` is one of ``ss``, ``os``, ``so`` (``oo`` exists only for the
    ablation study).  The first predicate is the one whose VP table is being
    reduced; the second is the correlated predicate.
    """
    kind = kind.lower()
    if kind not in ("ss", "os", "so", "oo"):
        raise ValueError(f"unknown correlation kind {kind!r}")
    return f"extvp_{kind}_{predicate_key(first, namespaces)}__{predicate_key(second, namespaces)}"


def property_table_column(predicate: IRI, namespaces: NamespaceManager = _DEFAULT_MANAGER) -> str:
    """Column name of a predicate inside the unified property table."""
    return predicate_key(predicate, namespaces)


def unique_predicate_key(
    predicate: IRI,
    taken: set,
    namespaces: NamespaceManager = _DEFAULT_MANAGER,
) -> str:
    """A key for ``predicate`` avoiding every key in ``taken``.

    Used by incremental appends: keys of predicates already persisted are
    frozen (they are baked into on-disk table names), so a newly appearing
    predicate must pick a key that collides with none of them — unlike
    :func:`build_unique_keys`, which may reassign suffixes when the whole
    predicate set is renamed at once.
    """
    base = predicate_key(predicate, namespaces)
    if base not in taken:
        return base
    suffix = 1
    while f"{base}_{suffix}" in taken:
        suffix += 1
    return f"{base}_{suffix}"


def build_unique_keys(predicates, namespaces: NamespaceManager = _DEFAULT_MANAGER) -> Dict[IRI, str]:
    """Map predicates to unique keys, disambiguating collisions with suffixes."""
    keys: Dict[IRI, str] = {}
    used: Dict[str, int] = {}
    for predicate in sorted(predicates, key=lambda p: p.value):
        key = predicate_key(predicate, namespaces)
        if key in used:
            used[key] += 1
            key = f"{key}_{used[key]}"
        else:
            used[key] = 0
        keys[predicate] = key
    return keys
