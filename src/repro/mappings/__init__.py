"""Relational mappings for RDF (Sec. 4 and Sec. 5 of the paper).

Four layouts are implemented:

* :class:`~repro.mappings.triples_table.TriplesTableLayout` — one giant
  three-column table (Sec. 4.1).
* :class:`~repro.mappings.vertical.VerticalPartitioningLayout` — one
  two-column table per predicate (Sec. 4.2, Abadi et al.).
* :class:`~repro.mappings.property_table.PropertyTableLayout` — a unified
  property table with row duplication for multi-valued predicates
  (Sec. 4.3, the Sempala layout).
* :class:`~repro.mappings.extvp.ExtVPLayout` — the paper's contribution:
  semi-join reductions of the VP tables for SS/OS/SO correlations with an
  optional selectivity-factor threshold (Sec. 5).
"""

from repro.mappings.naming import (
    extvp_table_name,
    predicate_key,
    triples_table_name,
    vp_table_name,
)
from repro.mappings.triples_table import TriplesTableLayout
from repro.mappings.vertical import VerticalPartitioningLayout
from repro.mappings.property_table import PropertyTableLayout
from repro.mappings.extvp import CorrelationKind, ExtVPLayout, ExtVPStatistics, ExtVPTableInfo

__all__ = [
    "extvp_table_name",
    "predicate_key",
    "triples_table_name",
    "vp_table_name",
    "TriplesTableLayout",
    "VerticalPartitioningLayout",
    "PropertyTableLayout",
    "CorrelationKind",
    "ExtVPLayout",
    "ExtVPStatistics",
    "ExtVPTableInfo",
]
