"""The async query scheduler: admission control over a live session.

:class:`QueryScheduler` fronts one :class:`~repro.core.session.S2RDFSession`
with submit/await semantics:

* **bounded admission queue** — at most ``admission_queue_limit`` admitted
  queries wait at a time; a full queue either blocks the submitter
  (``admission_policy="queue"``) or raises :class:`AdmissionError`
  (``"reject"``) — closed-loop clients get backpressure instead of unbounded
  memory growth;
* **fair dispatch** — ``max_concurrent_queries`` dispatcher threads pop the
  highest ``priority`` first and FIFO within a priority (a monotonic sequence
  number breaks ties), so a stream of urgent queries cannot reorder equals
  and equal-priority clients share the session fairly;
* **per-query handles** — :meth:`submit` returns a :class:`QueryHandle` with
  ``.result(timeout)`` / ``.done()`` / ``.exception()``;
* **cross-query sharing** — identical query text submitted while the same
  text is already in flight *on the same manifest epoch* attaches to the
  running execution instead of re-executing (``share_results``); observed
  cardinalities flow back into the session catalog keyed on the epoch they
  were observed at, so every later query plans from truth; and
  :meth:`prewarm` decodes broadcast-sized stored tables once per epoch so
  concurrent queries share the warm build sides instead of racing to decode.

Thread mode executes queries on the shared session (its per-thread executors
make that safe); process mode ships whole queries to the dataset's
:class:`~repro.serve.workers.PartitionWorkerPool` — true multi-core execution
— and journals each record in the parent so the dataset keeps one workload
journal.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ServingConfig
from repro.core.session import _QUEUE_WAIT_MS, S2RDFSession
from repro.core.results import QueryResult
from repro.engine.runtime.partitioned import BYTES_PER_VALUE
from repro.obs.journal import JournalRecord


class AdmissionError(RuntimeError):
    """Raised by :meth:`QueryScheduler.submit` under the ``reject`` policy."""


class QueryHandle:
    """Future-style handle to one submitted query."""

    def __init__(self, query_text: str, priority: int, epoch: Optional[int]) -> None:
        self.query_text = query_text
        self.priority = priority
        #: Manifest epoch of the session when the query was *admitted* (the
        #: executed epoch is on ``result().epoch``).
        self.submitted_epoch = epoch
        #: Milliseconds spent waiting in the admission queue; set when
        #: execution starts (followers inherit their leader's value).
        self.queue_ms: Optional[float] = None
        #: True when this handle attached to an identical in-flight query
        #: instead of executing its own copy.
        self.shared = False
        self._done = threading.Event()
        self._result: Optional[QueryResult] = None
        self._exception: Optional[BaseException] = None
        self._followers: List["QueryHandle"] = []

    # ------------------------------------------------------------------ #
    def done(self) -> bool:
        """True once the query finished (successfully or not)."""
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block until the query finishes and return its result.

        Raises the query's exception if it failed, or :class:`TimeoutError`
        if ``timeout`` (seconds) elapses first.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query did not finish within {timeout} s: {self.query_text[:80]!r}"
            )
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The exception the query raised, or ``None`` (blocks like result)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query did not finish within {timeout} s: {self.query_text[:80]!r}"
            )
        return self._exception

    # ------------------------------------------------------------------ #
    def _complete(self, result: Optional[QueryResult], error: Optional[BaseException]) -> None:
        self._result = result
        self._exception = error
        self._done.set()
        for follower in self._followers:
            follower.queue_ms = self.queue_ms
            follower._complete(result, error)
        self._followers = []


class QueryScheduler:
    """Admission-controlled concurrent query execution over one session."""

    def __init__(
        self,
        session: S2RDFSession,
        serving: Optional[ServingConfig] = None,
    ) -> None:
        self.session = session
        self.serving = serving if serving is not None else session.config.serving
        self._lock = threading.Lock()
        self._queue_changed = threading.Condition(self._lock)
        #: Min-heap of ``(-priority, sequence, handle)``: highest priority
        #: first, FIFO (by admission sequence) within a priority.
        self._heap: List[Tuple[int, int, QueryHandle]] = []
        self._sequence = 0
        #: Leader handle per (query text, epoch) currently admitted or
        #: running — the attach point for result sharing.
        self._inflight: Dict[Tuple[str, Optional[int]], QueryHandle] = {}
        self._dispatchers: List[threading.Thread] = []
        self._closed = False
        self._latencies_ms: List[float] = []
        self._prewarmed_epoch: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, query_text: str, priority: int = 0) -> QueryHandle:
        """Admit one query; returns immediately with its handle.

        ``priority`` orders dispatch (higher first, FIFO within equals).
        When the admission queue is full, the configured policy applies:
        ``"queue"`` blocks this caller until a slot frees, ``"reject"``
        raises :class:`AdmissionError`.
        """
        metrics = self.session.metrics
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            epoch = self.session._journal_epoch
            key = (query_text, epoch)
            leader = self._inflight.get(key) if self.serving.share_results else None
            if leader is not None:
                follower = QueryHandle(query_text, priority, epoch)
                follower.shared = True
                leader._followers.append(follower)
                metrics.inc(
                    "s2rdf_scheduler_shared_results_total",
                    help="Queries that attached to an identical in-flight execution",
                )
                return follower
            while len(self._heap) >= self.serving.admission_queue_limit:
                if self.serving.admission_policy == "reject":
                    metrics.inc(
                        "s2rdf_scheduler_rejected_total",
                        help="Submissions rejected by the full admission queue",
                    )
                    raise AdmissionError(
                        f"admission queue is full "
                        f"({self.serving.admission_queue_limit} queries waiting)"
                    )
                self._queue_changed.wait()
                if self._closed:
                    raise RuntimeError("scheduler is closed")
            handle = QueryHandle(query_text, priority, epoch)
            handle._admitted_at = time.perf_counter()
            self._sequence += 1
            heapq.heappush(self._heap, (-priority, self._sequence, handle))
            self._inflight[key] = handle
            metrics.inc("s2rdf_scheduler_admitted_total", help="Queries admitted to the queue")
            metrics.observe(
                "s2rdf_scheduler_queue_depth",
                float(len(self._heap)),
                help="Admission queue depth at each admission",
            )
            self._ensure_dispatchers()
            self._queue_changed.notify_all()
            return handle

    def submit_all(self, queries: Sequence[str], priority: int = 0) -> List[QueryHandle]:
        """Admit a batch of queries in order; returns all handles."""
        return [self.submit(query, priority=priority) for query in queries]

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _ensure_dispatchers(self) -> None:
        # Called with the lock held.  Dispatchers are daemon threads, started
        # lazily so an unused scheduler costs nothing.
        while len(self._dispatchers) < self.serving.max_concurrent_queries:
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"s2rdf-dispatch-{len(self._dispatchers)}",
                daemon=True,
            )
            self._dispatchers.append(thread)
            thread.start()

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._heap and not self._closed:
                    self._queue_changed.wait()
                if self._closed and not self._heap:
                    return
                _, _, handle = heapq.heappop(self._heap)
                self._queue_changed.notify_all()  # a queue slot freed
            handle.queue_ms = (time.perf_counter() - handle._admitted_at) * 1000.0
            self.session.metrics.observe(
                "s2rdf_scheduler_queue_ms",
                handle.queue_ms,
                help="Milliseconds queries waited in the admission queue",
            )
            self._prewarm_if_stale()
            start = time.perf_counter()
            try:
                result = self._execute(handle)
                error: Optional[BaseException] = None
            except BaseException as exc:  # noqa: BLE001 - delivered via handle
                result, error = None, exc
                self.session.metrics.inc(
                    "s2rdf_scheduler_failed_total", help="Scheduled queries that raised"
                )
            finally:
                with self._lock:
                    self._inflight.pop((handle.query_text, handle.submitted_epoch), None)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            with self._lock:
                self._latencies_ms.append(elapsed_ms)
            self.session.metrics.inc(
                "s2rdf_scheduler_completed_total", help="Queries completed by the scheduler"
            )
            handle._complete(result, error)

    def _execute(self, handle: QueryHandle) -> QueryResult:
        pool = self.session._process_pool()
        if pool is None:
            # Thread mode: run on the shared session; the contextvar carries
            # the queue wait into the session's journal record.
            token = _QUEUE_WAIT_MS.set(handle.queue_ms)
            try:
                return self.session.query(handle.query_text)
            finally:
                _QUEUE_WAIT_MS.reset(token)
        return self._execute_remote(pool, handle)

    def _execute_remote(self, pool, handle: QueryHandle) -> QueryResult:
        """Process mode: ship the whole query to a worker, share what it saw."""
        session = self.session
        epoch = session._journal_epoch
        observed = dict(session.layout.catalog._observed)
        outcome = pool.run_query(handle.query_text, epoch=epoch, observed=observed)
        result: QueryResult = outcome["result"]
        # Cardinality feedback is only valid for the epoch it was observed
        # at — a concurrent append makes it describe data that no longer
        # matches the manifest.
        if outcome["epoch"] == session._journal_epoch:
            for name, rows in outcome["observed"].items():
                session.layout.catalog.record_observed(name, rows)
        if session.journal is not None:
            metrics = result.metrics
            session.journal.append(
                JournalRecord(
                    fingerprint=outcome["fingerprint"],
                    template=outcome["template"],
                    epoch=result.epoch,
                    rows=len(result.relation),
                    wall_ms=result.wall_clock_ms,
                    phase_ms=dict(result.phase_ms),
                    scanned_tables=dict(metrics.scanned_tables),
                    aqe_replans=metrics.aqe_replans,
                    aqe_skew_splits=metrics.aqe_skew_splits,
                    broadcast_guard_trips=metrics.broadcast_guard_trips,
                    segments_scanned=metrics.store_segments_scanned,
                    segments_pruned=metrics.store_segments_pruned,
                    shuffled_bytes=metrics.shuffled_bytes,
                    broadcast_bytes=metrics.broadcast_bytes,
                    statically_empty=result.statically_empty,
                    engine=result.engine,
                    queue_ms=handle.queue_ms,
                )
            )
        return result

    # ------------------------------------------------------------------ #
    # Broadcast prewarm
    # ------------------------------------------------------------------ #
    def _prewarm_if_stale(self) -> None:
        epoch = self.session._journal_epoch
        with self._lock:
            if self._prewarmed_epoch == epoch:
                return
            self._prewarmed_epoch = epoch
        self.prewarm(epoch=epoch)

    def prewarm(
        self, tables: Optional[Sequence[str]] = None, epoch: Optional[int] = None
    ) -> int:
        """Decode broadcast-sized stored tables once, ahead of the queries.

        Without an explicit list, every stored table whose manifest row count
        estimates below the session's broadcast threshold qualifies — the
        build sides broadcast joins will ship.  Thread mode warms the shared
        catalog's decode cache; process mode additionally asks the worker
        pool to warm its per-process segment caches.  Best effort: failures
        warm nothing but never fail a query.
        """
        catalog = self.session.layout.catalog
        if tables is None:
            threshold_rows = self.session.config.broadcast_threshold // (2 * BYTES_PER_VALUE)
            tables = [
                name
                for name, statistics in catalog._statistics.items()
                if catalog.is_stored(name) and 0 < statistics.row_count <= threshold_rows
            ]
        warmed = 0
        for name in tables:
            try:
                catalog.table(name)  # decodes once; later queries hit the cache
                warmed += 1
            except Exception:  # pragma: no cover - best effort
                continue
        pool = self.session._process_pool()
        if pool is not None and tables:
            try:
                pool.warm_tables(tables, epoch=epoch)
            except Exception:  # pragma: no cover - best effort
                pass
        if warmed:
            self.session.metrics.inc(
                "s2rdf_scheduler_prewarmed_tables_total",
                warmed,
                help="Broadcast-sized tables decoded ahead of scheduled queries",
            )
        return warmed

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Latency summary of completed dispatches (milliseconds)."""
        with self._lock:
            latencies = sorted(self._latencies_ms)
        if not latencies:
            return {"completed": 0, "p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}

        def percentile(q: float) -> float:
            index = min(len(latencies) - 1, int(q * (len(latencies) - 1) + 0.5))
            return latencies[index]

        return {
            "completed": len(latencies),
            "p50_ms": percentile(0.50),
            "p99_ms": percentile(0.99),
            "mean_ms": sum(latencies) / len(latencies),
        }

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every admitted query has finished."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                idle = not self._heap and not self._inflight
            if idle:
                return
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("scheduler did not drain in time")
            time.sleep(0.002)

    def close(self, drain: bool = True) -> None:
        """Stop accepting queries; optionally wait for admitted ones."""
        if drain:
            self.drain()
        with self._lock:
            self._closed = True
            self._queue_changed.notify_all()
        for thread in self._dispatchers:
            thread.join(timeout=5.0)

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
