"""Concurrent serving: process partition workers + the async query scheduler.

``repro.serve`` turns a single-query session into a small query server:

.. code-block:: python

    import repro

    with repro.connect("dataset/", execution_mode="process") as session:
        with session.serve() as scheduler:
            handles = [scheduler.submit(q) for q in queries]
            rows = [h.result(timeout=30).bindings for h in handles]
            print(scheduler.stats())  # p50/p99 latency, completions

See :mod:`repro.serve.scheduler` for admission control and
:mod:`repro.serve.workers` for the process worker pool.
"""

from repro.serve.scheduler import AdmissionError, QueryHandle, QueryScheduler
from repro.serve.workers import PartitionWorkerPool

__all__ = [
    "AdmissionError",
    "QueryHandle",
    "QueryScheduler",
    "PartitionWorkerPool",
]
