"""Process-based partition workers.

The thread-pool runtime keeps every join task under the GIL; this module
provides the process-parallel alternative: a persistent
:class:`PartitionWorkerPool` (a thin policy layer over
``concurrent.futures.ProcessPoolExecutor``) whose workers execute three task
kinds:

* **join tasks** — one co-partitioned pair per task, shipped as serialized
  row relations or id :class:`~repro.engine.vectorized.ColumnBatch` columns
  (8 bytes/value — the PR 9 kernel is what makes cross-process shipping
  cheap).  Used by :class:`~repro.engine.runtime.executor.ParallelExecutor`
  when ``execution_mode="process"`` (intra-query parallelism).
* **scan tasks** — decode one table (projection + equality pushdown) inside
  the worker, warming its segment caches.  The scheduler uses these to
  pre-warm broadcast-sized tables across the pool.
* **query tasks** — parse/compile/execute one whole SPARQL query on the
  worker's own read-only session (inter-query parallelism: this is what
  scales QPS with concurrent clients).

Each worker process opens the stored dataset **read-only, once**, and keeps
its decoded segment caches keyed by the manifest's append epoch: a task
carrying a newer epoch than the worker's session makes the worker re-read the
manifest (the store's atomic-rename commit point makes that safe against a
concurrent append in the parent).  Workers never write — appends and
compactions stay in the owning session's process.

Join tasks are self-contained (they never touch the dataset), so the pool
also works as a pure compute pool; only scan/query tasks require the dataset.

Everything that crosses the process boundary is a plain picklable structure:
``ColumnBatch`` objects are stripped of their (unpicklable, dictionary-bound)
``decode`` callable on the way out and re-attached on the way back in.
"""

from __future__ import annotations

import os
from array import array
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import multiprocessing
import time

from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation
from repro.engine.vectorized import ColumnBatch

#: Default worker count: enough to matter, small enough for CI machines.
DEFAULT_WORKER_PROCESSES = max(1, min(8, (os.cpu_count() or 2)))

#: Preferred multiprocessing start methods, best first.  ``fork`` gives
#: near-free worker startup on Linux (the dataset the parent already opened
#: is inherited copy-on-write); ``spawn`` is the portable fallback.
_START_METHODS = ("fork", "spawn")


def _mp_context():
    available = multiprocessing.get_all_start_methods()
    for method in _START_METHODS:
        if method in available:
            return multiprocessing.get_context(method)
    return multiprocessing.get_context()


# --------------------------------------------------------------------- #
# Wire format: pack/unpack relations and id batches
# --------------------------------------------------------------------- #
def _poison_decode(id_: int) -> Any:  # pragma: no cover - guard
    raise RuntimeError(
        "this ColumnBatch crossed a process boundary without a decoder; "
        "join kernels must not decode ids"
    )


def pack_input(value: Any) -> Tuple[str, Any]:
    """Serialize one join input (``Relation`` or ``ColumnBatch``) for the wire."""
    if isinstance(value, ColumnBatch):
        selection = value.selection
        return ("batch", (value.columns, value.ids, selection))
    if isinstance(value, Relation):
        return ("relation", (value.columns, value.rows))
    raise TypeError(f"cannot ship {type(value).__name__} to a partition worker")


def unpack_input(packed: Tuple[str, Any], decode: Optional[Callable[[int], Any]] = None) -> Any:
    """Rebuild a shipped join input; ``decode`` re-attaches the dictionary."""
    kind, payload = packed
    if kind == "batch":
        columns, ids, selection = payload
        return ColumnBatch(
            columns,
            [array("q", column) if not isinstance(column, array) else column for column in ids],
            decode if decode is not None else _poison_decode,
            selection=selection,
        )
    columns, rows = payload
    return Relation(columns, rows)


# --------------------------------------------------------------------- #
# Worker-side state and task entry points (must stay module-level picklable)
# --------------------------------------------------------------------- #
_WORKER_DATASET_PATH: Optional[str] = None
_WORKER_SESSION_KNOBS: Dict[str, Any] = {}
_WORKER_SESSION = None


def _worker_init(dataset_path: Optional[str], session_knobs: Dict[str, Any]) -> None:
    global _WORKER_DATASET_PATH, _WORKER_SESSION_KNOBS, _WORKER_SESSION
    _WORKER_DATASET_PATH = dataset_path
    _WORKER_SESSION_KNOBS = dict(session_knobs)
    _WORKER_SESSION = None  # opened lazily by the first scan/query task


def _worker_session(epoch: Optional[int] = None):
    """The worker's read-only session, opened once and refreshed by epoch.

    The session caches decoded segments inside its stored-table providers;
    re-reading the manifest on an epoch change drops exactly the caches the
    mutation invalidated (re-registration per table), so the cache key is in
    effect ``(table, segment, epoch)``.
    """
    global _WORKER_SESSION
    if _WORKER_DATASET_PATH is None:
        raise RuntimeError("this worker pool was created without a dataset path")
    if _WORKER_SESSION is None:
        from repro.core.session import S2RDFSession

        _WORKER_SESSION = S2RDFSession.open_dataset(
            _WORKER_DATASET_PATH,
            # Workers are single-query serial executors: process-level
            # parallelism comes from running many workers, not from nested
            # pools.  Journaling/tracing happen in the owning session.
            journal_enabled=False,
            tracing_enabled=False,
            **_WORKER_SESSION_KNOBS,
        )
    if epoch is not None and _WORKER_SESSION._journal_epoch != epoch:
        # The parent committed a mutation this worker has not seen (or the
        # task was scheduled against an older snapshot than the disk now
        # holds — refresh reads whatever manifest is committed, which is
        # always a consistent snapshot thanks to the atomic rename).
        _WORKER_SESSION._refresh_from_store()
    return _WORKER_SESSION


def _run_join_task(task: Dict[str, Any]) -> Tuple[Tuple[str, Any], int, float]:
    """Execute one shipped partition join: returns (packed result, comparisons, ms)."""
    left = unpack_input(task["left"])
    right = unpack_input(task["right"])
    scratch = ExecutionMetrics()
    start = time.perf_counter()
    if task["outer"]:
        joined = left.left_outer_join(right, scratch)
    else:
        joined = left.natural_join(right, scratch)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return pack_input(joined), scratch.join_comparisons, elapsed_ms


def _run_scan_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Scan (and thereby cache) one stored table inside the worker."""
    session = _worker_session(task.get("epoch"))
    scan = session.layout.catalog.scan(
        task["table"], columns=task.get("columns"), conditions=task.get("conditions")
    )
    out: Dict[str, Any] = {
        "rows_scanned": scan.rows_scanned,
        "segments_scanned": scan.segments_scanned,
        "segments_pruned": scan.segments_pruned,
        "epoch": session._journal_epoch,
    }
    if task.get("return_rows", True):
        out["relation"] = pack_input(scan.relation)
    return out


def _run_query_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one whole SPARQL query on the worker's read-only session."""
    session = _worker_session(task.get("epoch"))
    observed = task.get("observed") or {}
    if observed and session._journal_epoch == task.get("epoch"):
        # Cross-query cardinality sharing: observations the parent scheduler
        # collected (from any worker or the parent itself) seed this worker's
        # planner, keyed on the epoch they were observed at.
        for name, rows in observed.items():
            session.layout.catalog.record_observed(name, rows)
    result = session.query(task["query"])
    from repro.obs.journal import fingerprint_text, template_text

    parsed = session.parse(task["query"])
    template = template_text(parsed)
    return {
        "result": result,
        "template": template,
        "fingerprint": fingerprint_text(template),
        "epoch": session._journal_epoch,
        "observed": dict(session.layout.catalog._observed),
        "pid": os.getpid(),
    }


# --------------------------------------------------------------------- #
# The pool
# --------------------------------------------------------------------- #
class PartitionWorkerPool:
    """A persistent pool of partition worker processes.

    ``dataset_path`` may be ``None`` for a pure join-task compute pool;
    scan and query tasks then raise.  The pool is safe to share between the
    session's per-thread executors and the scheduler — submission is
    thread-safe and workers are stateless between tasks apart from their
    epoch-keyed caches.
    """

    def __init__(
        self,
        dataset_path: Optional[str] = None,
        num_workers: Optional[int] = None,
        session_knobs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.dataset_path = dataset_path
        self.num_workers = num_workers or DEFAULT_WORKER_PROCESSES
        self.session_knobs = dict(session_knobs or {})
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ #
    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.num_workers,
                mp_context=_mp_context(),
                initializer=_worker_init,
                initargs=(self.dataset_path, self.session_knobs),
            )
        return self._executor

    @property
    def started(self) -> bool:
        return self._executor is not None

    def start(self) -> None:
        """Spawn every worker now instead of on first task.

        With the ``fork`` start method, worker processes should be created
        before the session's query threads exist — forking a multi-threaded
        parent risks inheriting held locks.  ``ProcessPoolExecutor`` forks one
        process per submission until ``max_workers`` exist, so submitting that
        many no-op tasks forces the whole pool up front.
        """
        pool = self._pool()
        for future in [pool.submit(os.getpid) for _ in range(self.num_workers)]:
            future.result()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "PartitionWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Task APIs
    # ------------------------------------------------------------------ #
    def run_join_tasks(
        self, tasks: Sequence[Dict[str, Any]], decode: Optional[Callable[[int], Any]] = None
    ) -> List[Tuple[Any, int, float]]:
        """Run shipped join tasks; results come back in task order.

        ``decode`` re-attaches the dataset dictionary to id-batch results
        (join kernels compare raw ids, so workers never need it).
        """
        out = []
        for packed, comparisons, elapsed_ms in self._pool().map(_run_join_task, tasks):
            out.append((unpack_input(packed, decode), comparisons, elapsed_ms))
        return out

    def scan_table(
        self,
        table: str,
        columns: Optional[Sequence[str]] = None,
        conditions: Optional[Dict[str, Any]] = None,
        epoch: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Scan one stored table in a worker, returning rows + scan counters."""
        result = self._pool().submit(
            _run_scan_task,
            {
                "table": table,
                "columns": list(columns) if columns is not None else None,
                "conditions": dict(conditions) if conditions else None,
                "epoch": epoch,
            },
        ).result()
        if "relation" in result:
            result["relation"] = unpack_input(result["relation"])
        return result

    def warm_tables(self, tables: Sequence[str], epoch: Optional[int] = None) -> int:
        """Best-effort cache warming: ask the pool to decode ``tables``.

        One scan task per (table, worker-slot) is submitted without returning
        rows, so idle workers populate their segment caches for the tables
        the scheduler expects to be broadcast.  Returns the number of scan
        tasks that completed (workers that were busy may be warmed by fewer
        tasks — this is an optimisation, never a correctness hook).
        """
        futures = []
        for _ in range(self.num_workers):
            for table in tables:
                futures.append(
                    self._pool().submit(
                        _run_scan_task,
                        {"table": table, "epoch": epoch, "return_rows": False},
                    )
                )
        done = 0
        for future in futures:
            future.result()
            done += 1
        return done

    def run_query(
        self,
        query_text: str,
        epoch: Optional[int] = None,
        observed: Optional[Dict[str, int]] = None,
    ) -> Dict[str, Any]:
        """Execute one whole query on a worker; returns the full QueryResult
        plus sharing metadata (template/fingerprint/epoch/observed rows)."""
        return self._pool().submit(
            _run_query_task,
            {"query": query_text, "epoch": epoch, "observed": dict(observed or {})},
        ).result()

    def submit_query(
        self,
        query_text: str,
        epoch: Optional[int] = None,
        observed: Optional[Dict[str, int]] = None,
    ):
        """Like :meth:`run_query` but returns the future (scheduler hot path)."""
        return self._pool().submit(
            _run_query_task,
            {"query": query_text, "epoch": epoch, "observed": dict(observed or {})},
        )
