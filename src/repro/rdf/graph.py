"""In-memory RDF graph with lookup indexes.

The :class:`Graph` is the substrate every relational mapping is derived from.
It keeps three hash indexes (by subject, by predicate, by object) so that the
mapping builders and the centralised baseline engines can enumerate triples
by any bound component without scanning the whole graph.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.terms import IRI, Term
from repro.rdf.triple import Triple


class Graph:
    """A set of RDF triples forming a directed labelled graph."""

    def __init__(self, triples: Optional[Iterable[Triple]] = None, name: str = "default") -> None:
        self.name = name
        self._triples: Set[Triple] = set()
        self._by_subject: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_predicate: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_object: Dict[Term, Set[Triple]] = defaultdict(set)
        if triples is not None:
            for triple in triples:
                self.add(triple)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        """Add a triple; return ``True`` when it was not yet present."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_subject[triple.subject].add(triple)
        self._by_predicate[triple.predicate].add(triple)
        self._by_object[triple.object].add(triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples, returning the number of new ones."""
        return sum(1 for triple in triples if self.add(triple))

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present; return ``True`` when it was removed."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._by_subject[triple.subject].discard(triple)
        self._by_predicate[triple.predicate].discard(triple)
        self._by_object[triple.object].discard(triple)
        return True

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def predicates(self) -> List[IRI]:
        """Return the distinct predicates, sorted for deterministic output."""
        return sorted((p for p in self._by_predicate if self._by_predicate[p]), key=lambda p: p.value)

    def subjects(self) -> Set[Term]:
        return {s for s, triples in self._by_subject.items() if triples}

    def objects(self) -> Set[Term]:
        return {o for o, triples in self._by_object.items() if triples}

    def predicate_count(self, predicate: Term) -> int:
        """Number of triples using ``predicate`` (the size of its VP table)."""
        return len(self._by_predicate.get(predicate, ()))

    def predicate_histogram(self) -> Dict[IRI, int]:
        """Map each predicate to its triple count."""
        return {p: len(ts) for p, ts in self._by_predicate.items() if ts}

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #
    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching the given bound components.

        ``None`` acts as a wildcard.  The most selective available index is
        used to seed the scan.
        """
        candidates: Iterable[Triple]
        if subject is not None and subject in self._by_subject:
            candidates = self._by_subject[subject]
        elif object is not None and object in self._by_object:
            candidates = self._by_object[object]
        elif predicate is not None and predicate in self._by_predicate:
            candidates = self._by_predicate[predicate]
        elif subject is not None or predicate is not None or object is not None:
            # A bound component that does not occur in the graph matches nothing.
            if (
                (subject is not None and subject not in self._by_subject)
                or (predicate is not None and predicate not in self._by_predicate)
                or (object is not None and object not in self._by_object)
            ):
                return
            candidates = self._triples
        else:
            candidates = self._triples
        for triple in candidates:
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if object is not None and triple.object != object:
                continue
            yield triple

    def subject_object_pairs(self, predicate: Term) -> Iterator[Tuple[Term, Term]]:
        """Iterate over the (subject, object) pairs of one predicate.

        This is exactly the content of the predicate's VP table.
        """
        for triple in self._by_predicate.get(predicate, ()):
            yield triple.subject, triple.object

    # ------------------------------------------------------------------ #
    # Set operations
    # ------------------------------------------------------------------ #
    def union(self, other: "Graph") -> "Graph":
        result = Graph(self._triples, name=f"{self.name}+{other.name}")
        result.add_all(other)
        return result

    def copy(self) -> "Graph":
        return Graph(self._triples, name=self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._triples == other._triples

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Graph(name={self.name!r}, triples={len(self)})"
