"""N-Triples parsing and serialisation.

The WatDiv generator emits N-Triples and the paper reports dataset sizes "in
N-triples format", so the reproduction round-trips graphs through the same
line-oriented format.  The parser is tolerant of the simplified notation used
in the paper's running example (bare identifiers are treated as IRIs).
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from repro.rdf.graph import Graph
from repro.rdf.terms import BlankNode, IRI, Literal, Term
from repro.rdf.triple import Triple


class NTriplesParseError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""

    def __init__(self, message: str, line_number: Optional[int] = None, line: Optional[str] = None) -> None:
        location = f" at line {line_number}" if line_number is not None else ""
        super().__init__(f"{message}{location}: {line!r}" if line is not None else f"{message}{location}")
        self.line_number = line_number
        self.line = line


_LITERAL_RE = re.compile(
    r'^"(?P<lexical>(?:[^"\\]|\\.)*)"'
    r"(?:@(?P<lang>[A-Za-z0-9\-]+)|\^\^<(?P<datatype>[^>]+)>)?$"
)

_UNESCAPE_MAP = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}


def _unescape(text: str) -> str:
    result = []
    index = 0
    while index < len(text):
        if text[index] == "\\" and index + 1 < len(text):
            pair = text[index : index + 2]
            if pair in _UNESCAPE_MAP:
                result.append(_UNESCAPE_MAP[pair])
                index += 2
                continue
        result.append(text[index])
        index += 1
    return "".join(result)


def parse_literal(token: str) -> Literal:
    """Parse a literal token (``"abc"``, ``"5"^^<xsd:int>``, ``"x"@en``)."""
    match = _LITERAL_RE.match(token)
    if match is None:
        raise NTriplesParseError(f"malformed literal {token!r}")
    lexical = _unescape(match.group("lexical"))
    return Literal(lexical, datatype=match.group("datatype"), language=match.group("lang"))


def _parse_term(token: str) -> Term:
    if token.startswith("<") and token.endswith(">"):
        return IRI(token[1:-1])
    if token.startswith("_:"):
        return BlankNode(token[2:])
    if token.startswith('"'):
        return parse_literal(token)
    # Simplified notation used in the paper examples: treat as IRI.
    return IRI(token)


def _tokenize_line(line: str) -> List[str]:
    """Split a statement into subject, predicate and object tokens."""
    tokens: List[str] = []
    index = 0
    length = len(line)
    while index < length and len(tokens) < 3:
        while index < length and line[index].isspace():
            index += 1
        if index >= length:
            break
        char = line[index]
        if char == "<":
            end = line.find(">", index)
            if end == -1:
                raise NTriplesParseError("unterminated IRI", line=line)
            tokens.append(line[index : end + 1])
            index = end + 1
        elif char == '"':
            end = index + 1
            while end < length:
                if line[end] == "\\":
                    end += 2
                    continue
                if line[end] == '"':
                    break
                end += 1
            if end >= length:
                raise NTriplesParseError("unterminated literal", line=line)
            # Consume optional datatype / language suffix.
            end += 1
            while end < length and not line[end].isspace() and line[end] != ".":
                if line[end] == "<":
                    close = line.find(">", end)
                    if close == -1:
                        raise NTriplesParseError("unterminated datatype IRI", line=line)
                    end = close + 1
                else:
                    end += 1
            tokens.append(line[index:end])
            index = end
        else:
            end = index
            while end < length and not line[end].isspace():
                end += 1
            token = line[index:end]
            if token.endswith(".") and len(tokens) == 2:
                token = token[:-1]
            tokens.append(token)
            index = end
    return tokens


def parse_ntriples_line(line: str, line_number: Optional[int] = None) -> Optional[Triple]:
    """Parse a single N-Triples line; return ``None`` for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    if stripped.endswith("."):
        stripped = stripped[:-1].rstrip()
    tokens = _tokenize_line(stripped)
    if len(tokens) != 3:
        raise NTriplesParseError("expected exactly three terms", line_number, line)
    try:
        subject = _parse_term(tokens[0])
        predicate = _parse_term(tokens[1])
        object_ = _parse_term(tokens[2])
        return Triple(subject, predicate, object_)
    except (TypeError, ValueError) as exc:
        raise NTriplesParseError(str(exc), line_number, line) from exc


#: Count of documents parsed by :func:`parse_ntriples` in this process.
#: Instrumentation reads it to *observe* that a code path (e.g. the dataset
#: store's cold open) did not parse anything, instead of asserting a constant.
_documents_parsed = 0


def documents_parsed() -> int:
    """Number of :func:`parse_ntriples` invocations so far in this process."""
    return _documents_parsed


def parse_ntriples(source: Union[str, Iterable[str], TextIO], name: str = "default") -> Graph:
    """Parse an N-Triples document into a :class:`Graph`.

    ``source`` may be a string containing the whole document, an iterable of
    lines, or an open text file.
    """
    global _documents_parsed
    _documents_parsed += 1
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    else:
        lines = source
    graph = Graph(name=name)
    for line_number, line in enumerate(lines, start=1):
        triple = parse_ntriples_line(line, line_number)
        if triple is not None:
            graph.add(triple)
    return graph


def serialize_term(term: Term) -> str:
    """Serialise a term in N-Triples syntax."""
    return term.n3()


def serialize_ntriples(graph: Graph) -> str:
    """Serialise a graph as an N-Triples document (deterministic order)."""
    lines = sorted(triple.n3() for triple in graph)
    return "\n".join(lines) + ("\n" if lines else "")


def serialize_ntriples_iter(graph: Graph) -> Iterator[str]:
    """Yield N-Triples lines one at a time (for streaming writes)."""
    for triple in sorted(graph, key=lambda t: t.n3()):
        yield triple.n3()
