"""Namespace / prefix handling.

WatDiv (and the paper's queries) use a fixed set of vocabularies; the
:class:`NamespaceManager` expands prefixed names such as ``wsdbm:User0`` to
full IRIs and shrinks IRIs back to prefixed names for display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.rdf.terms import IRI


@dataclass(frozen=True)
class Namespace:
    """A namespace is a prefix bound to a base IRI."""

    prefix: str
    base: str

    def term(self, local_name: str) -> IRI:
        return IRI(self.base + local_name)

    def __getitem__(self, local_name: str) -> IRI:
        return self.term(local_name)


#: The vocabularies used by the WatDiv benchmark and the paper's queries.
WATDIV_NAMESPACES: Dict[str, str] = {
    "wsdbm": "http://db.uwaterloo.ca/~galuc/wsdbm/",
    "sorg": "http://schema.org/",
    "gr": "http://purl.org/goodrelations/",
    "rev": "http://purl.org/stuff/rev#",
    "foaf": "http://xmlns.com/foaf/",
    "og": "http://ogp.me/ns#",
    "mo": "http://purl.org/ontology/mo/",
    "gn": "http://www.geonames.org/ontology#",
    "dc": "http://purl.org/dc/terms/",
    "rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
    "rdfs": "http://www.w3.org/2000/01/rdf-schema#",
    "xsd": "http://www.w3.org/2001/XMLSchema#",
}


class NamespaceManager:
    """Expands and compacts prefixed names."""

    def __init__(self, namespaces: Optional[Dict[str, str]] = None) -> None:
        self._prefix_to_base: Dict[str, str] = dict(namespaces or WATDIV_NAMESPACES)
        self._base_to_prefix: Dict[str, str] = {base: prefix for prefix, base in self._prefix_to_base.items()}

    def bind(self, prefix: str, base: str) -> None:
        """Register (or overwrite) a prefix binding."""
        self._prefix_to_base[prefix] = base
        self._base_to_prefix[base] = prefix

    def namespaces(self) -> Dict[str, str]:
        return dict(self._prefix_to_base)

    def namespace(self, prefix: str) -> Namespace:
        if prefix not in self._prefix_to_base:
            raise KeyError(f"unknown prefix: {prefix!r}")
        return Namespace(prefix, self._prefix_to_base[prefix])

    def expand(self, prefixed_name: str) -> IRI:
        """Expand ``prefix:local`` to a full IRI."""
        if ":" not in prefixed_name:
            raise ValueError(f"not a prefixed name: {prefixed_name!r}")
        prefix, local = prefixed_name.split(":", 1)
        if prefix not in self._prefix_to_base:
            raise KeyError(f"unknown prefix: {prefix!r} in {prefixed_name!r}")
        return IRI(self._prefix_to_base[prefix] + local)

    def try_expand(self, prefixed_name: str) -> Optional[IRI]:
        """Like :meth:`expand` but returns ``None`` on unknown prefixes."""
        try:
            return self.expand(prefixed_name)
        except (KeyError, ValueError):
            return None

    def compact(self, iri: IRI) -> str:
        """Compact a full IRI back to a prefixed name when a binding matches."""
        value = iri.value
        best: Optional[Tuple[str, str]] = None
        for base, prefix in self._base_to_prefix.items():
            if value.startswith(base) and (best is None or len(base) > len(best[1])):
                best = (prefix, base)
        if best is None:
            return iri.n3()
        prefix, base = best
        return f"{prefix}:{value[len(base):]}"


#: A shared default manager used throughout the code base.
DEFAULT_NAMESPACES = NamespaceManager()

WSDBM = Namespace("wsdbm", WATDIV_NAMESPACES["wsdbm"])
SORG = Namespace("sorg", WATDIV_NAMESPACES["sorg"])
GR = Namespace("gr", WATDIV_NAMESPACES["gr"])
REV = Namespace("rev", WATDIV_NAMESPACES["rev"])
FOAF = Namespace("foaf", WATDIV_NAMESPACES["foaf"])
OG = Namespace("og", WATDIV_NAMESPACES["og"])
MO = Namespace("mo", WATDIV_NAMESPACES["mo"])
GN = Namespace("gn", WATDIV_NAMESPACES["gn"])
DC = Namespace("dc", WATDIV_NAMESPACES["dc"])
RDF = Namespace("rdf", WATDIV_NAMESPACES["rdf"])
