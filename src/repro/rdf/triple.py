"""RDF triples.

A triple ``(s, p, o)`` models the statement "s has property p with value o"
and is interpreted as a labelled directed edge of the RDF graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.rdf.terms import BlankNode, IRI, Literal, Term, Variable


@dataclass(frozen=True)
class Triple:
    """A concrete RDF triple (no variables allowed)."""

    subject: Term
    predicate: Term
    object: Term

    def __post_init__(self) -> None:
        for position, term in (("subject", self.subject), ("predicate", self.predicate), ("object", self.object)):
            if isinstance(term, Variable):
                raise TypeError(f"triple {position} must be a concrete term, got variable {term}")
        if isinstance(self.subject, Literal):
            raise TypeError("triple subject must not be a literal")
        if not isinstance(self.predicate, IRI):
            raise TypeError("triple predicate must be an IRI")

    def __iter__(self) -> Iterator[Term]:
        return iter((self.subject, self.predicate, self.object))

    def as_tuple(self) -> Tuple[Term, Term, Term]:
        return (self.subject, self.predicate, self.object)

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    @classmethod
    def of(cls, subject: str, predicate: str, object_: str) -> "Triple":
        """Build a triple from simplified string notation (paper shorthand).

        Strings are interpreted as IRIs unless they carry explicit N-Triples
        markers; this mirrors the paper's ``(A, follows, B)`` notation.
        """
        from repro.rdf.terms import term_from_string

        subject_term = term_from_string(subject)
        predicate_term = term_from_string(predicate)
        object_term = term_from_string(object_)
        if isinstance(object_term, BlankNode) and object_.startswith('"'):
            raise ValueError("object literal failed to parse")
        return cls(subject_term, predicate_term, object_term)
