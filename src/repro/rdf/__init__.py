"""RDF data model substrate.

This package provides the minimal but complete RDF machinery that the rest of
the reproduction builds on: term types (:class:`IRI`, :class:`Literal`,
:class:`BlankNode`, :class:`Variable`), triples, an in-memory :class:`Graph`
with predicate/subject/object indexes, N-Triples parsing and serialisation,
namespace handling for the WatDiv vocabulary and a dictionary encoder that
maps terms to dense integer identifiers.
"""

from repro.rdf.terms import IRI, BlankNode, Literal, Term, Variable, term_from_string
from repro.rdf.triple import Triple
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace, NamespaceManager, WATDIV_NAMESPACES
from repro.rdf.ntriples import (
    NTriplesParseError,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
    serialize_term,
)
from repro.rdf.dictionary import TermDictionary

__all__ = [
    "IRI",
    "BlankNode",
    "Literal",
    "Term",
    "Variable",
    "term_from_string",
    "Triple",
    "Graph",
    "Namespace",
    "NamespaceManager",
    "WATDIV_NAMESPACES",
    "NTriplesParseError",
    "parse_ntriples",
    "parse_ntriples_line",
    "serialize_ntriples",
    "serialize_term",
    "TermDictionary",
]
