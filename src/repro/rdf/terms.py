"""RDF term types.

The paper uses a simplified RDF notation (``A follows B``) but the system has
to handle real IRIs, literals and blank nodes, so the term model distinguishes
the four kinds of nodes that can occur in data and queries:

* :class:`IRI` — a global identifier (``<http://example.org/x>`` or a prefixed
  name such as ``wsdbm:User0`` that has already been expanded).
* :class:`Literal` — a lexical value with an optional datatype or language tag.
* :class:`BlankNode` — an anonymous node with a document-scoped label.
* :class:`Variable` — a query variable (``?x``); only valid inside queries.

All terms are immutable and hashable so they can be used as dictionary keys,
set members and columns of relational tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XSD_DECIMAL = "http://www.w3.org/2001/XMLSchema#decimal"
XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"
XSD_BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean"
XSD_DATE = "http://www.w3.org/2001/XMLSchema#date"

_NUMERIC_DATATYPES = frozenset({XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE})


class Term:
    """Abstract base class for all RDF terms."""

    __slots__ = ()

    def n3(self) -> str:
        """Return the N-Triples / SPARQL surface syntax of the term."""
        raise NotImplementedError

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    @property
    def is_bound(self) -> bool:
        """A term is bound when it is a concrete RDF term, not a variable."""
        return not self.is_variable


@dataclass(frozen=True)
class IRI(Term):
    """An IRI reference identifying a resource."""

    value: str

    def n3(self) -> str:
        return f"<{self.value}>"

    def local_name(self) -> str:
        """Return the fragment / last path segment, useful for display."""
        value = self.value
        for separator in ("#", "/", ":"):
            if separator in value:
                value = value.rsplit(separator, 1)[1]
                break
        return value

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.value


@dataclass(frozen=True)
class Literal(Term):
    """A literal value with optional datatype IRI or language tag."""

    lexical: str
    datatype: Optional[str] = None
    language: Optional[str] = None

    def __post_init__(self) -> None:
        if self.datatype is not None and self.language is not None:
            raise ValueError("a literal cannot have both a datatype and a language tag")

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    @property
    def is_numeric(self) -> bool:
        return self.datatype in _NUMERIC_DATATYPES

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert the literal to the closest Python value."""
        if self.datatype == XSD_INTEGER:
            return int(self.lexical)
        if self.datatype in (XSD_DECIMAL, XSD_DOUBLE):
            return float(self.lexical)
        if self.datatype == XSD_BOOLEAN:
            return self.lexical in ("true", "1")
        return self.lexical

    @classmethod
    def from_python(cls, value: Union[str, int, float, bool]) -> "Literal":
        """Build a typed literal from a native Python value."""
        if isinstance(value, bool):
            return cls("true" if value else "false", datatype=XSD_BOOLEAN)
        if isinstance(value, int):
            return cls(str(value), datatype=XSD_INTEGER)
        if isinstance(value, float):
            return cls(repr(value), datatype=XSD_DOUBLE)
        return cls(str(value))

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.lexical


@dataclass(frozen=True)
class BlankNode(Term):
    """An anonymous node, identified by a document-scoped label."""

    label: str

    def n3(self) -> str:
        return f"_:{self.label}"

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return f"_:{self.label}"


@dataclass(frozen=True)
class Variable(Term):
    """A SPARQL query variable such as ``?x``."""

    name: str = field()

    def __post_init__(self) -> None:
        if self.name.startswith("?") or self.name.startswith("$"):
            object.__setattr__(self, "name", self.name[1:])
        if not self.name:
            raise ValueError("variable name must not be empty")

    def n3(self) -> str:
        return f"?{self.name}"

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return f"?{self.name}"


def term_from_string(text: str) -> Term:
    """Parse a single term from its N-Triples / SPARQL surface form.

    This is a convenience used by tests and examples; the full N-Triples parser
    lives in :mod:`repro.rdf.ntriples`.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty term")
    if text.startswith("?") or text.startswith("$"):
        return Variable(text[1:])
    if text.startswith("<") and text.endswith(">"):
        return IRI(text[1:-1])
    if text.startswith("_:"):
        return BlankNode(text[2:])
    if text.startswith('"'):
        from repro.rdf.ntriples import parse_literal

        return parse_literal(text)
    # Fall back to treating the token as an IRI in simplified notation,
    # matching the paper's shorthand (e.g. "follows" or "wsdbm:User0").
    return IRI(text)
