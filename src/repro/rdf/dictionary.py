"""Dictionary encoding of RDF terms.

Columnar RDF stores (and Parquet's dictionary encoding) replace repeated term
strings with dense integer identifiers.  The reproduction uses the dictionary
both to speed up the relational engine (integers hash and compare faster than
IRIs) and to model storage sizes realistically.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.rdf.graph import Graph
from repro.rdf.terms import Term
from repro.rdf.triple import Triple


class TermDictionary:
    """A bidirectional mapping between RDF terms and dense integer ids."""

    def __init__(self) -> None:
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: List[Term] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def encode(self, term: Term) -> int:
        """Return the id of ``term``, assigning a new one if necessary."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def lookup(self, term: Term) -> Optional[int]:
        """Return the id of ``term`` or ``None`` when it is unknown."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Term:
        # An explicit range check: plain list indexing would let a negative id
        # silently alias a term from the end of the dictionary.
        if not 0 <= term_id < len(self._id_to_term):
            raise KeyError(f"unknown term id {term_id}")
        return self._id_to_term[term_id]

    def encode_triple(self, triple: Triple) -> Tuple[int, int, int]:
        return (
            self.encode(triple.subject),
            self.encode(triple.predicate),
            self.encode(triple.object),
        )

    def decode_triple(self, encoded: Tuple[int, int, int]) -> Triple:
        subject, predicate, object_ = encoded
        return Triple(self.decode(subject), self.decode(predicate), self.decode(object_))

    def encode_graph(self, graph: Graph) -> List[Tuple[int, int, int]]:
        """Encode a whole graph, returning a list of id triples."""
        return [self.encode_triple(triple) for triple in graph]

    def terms(self) -> Iterator[Term]:
        return iter(self._id_to_term)

    def average_term_length(self) -> float:
        """Average N-Triples length of all terms (used by the storage model)."""
        if not self._id_to_term:
            return 0.0
        return sum(len(term.n3()) for term in self._id_to_term) / len(self._id_to_term)

    @classmethod
    def from_graph(cls, graph: Graph) -> "TermDictionary":
        dictionary = cls()
        dictionary.encode_graph(graph)
        return dictionary

    @classmethod
    def from_terms(cls, terms: Iterable[Term]) -> "TermDictionary":
        dictionary = cls()
        for term in terms:
            dictionary.encode(term)
        return dictionary
